//! `prophunt check` — re-parse any emitted file, auto-detecting its format.
//!
//! Used by CI (and humans) to confirm that every artifact the tool wrote can be
//! read back. Detection is by content: the `prophunt-code v1` /
//! `prophunt-schedule v1` headers, a leading `{"traceEvents"` for Chrome
//! trace-event JSON, any other leading `{` for JSON-lines reports, and the
//! Stim DEM instruction set otherwise.

use crate::args::CliError;
use crate::common::read_file;
use prophunt_formats::{
    code::CODE_SPEC_HEADER, json::Json, parse_code_spec, parse_dem, parse_report, parse_schedule,
    schedule::SCHEDULE_HEADER,
};

pub const USAGE: &str = "\
prophunt check <file>...

  Re-parses each file (code spec, schedule, .dem, JSON-lines report, or Chrome
  trace-event JSON written by --trace, auto-detected by content) and prints a
  one-line summary. Exits non-zero on the first file that fails to parse.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::usage("check needs at least one file"));
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(CliError::usage(format!(
            "check takes file paths only, got {flag:?}"
        )));
    }
    for path in args {
        let content = read_file(path)?;
        let summary = check_one(&content).map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
        println!("{path}: {summary}");
    }
    Ok(())
}

fn check_one(content: &str) -> Result<String, String> {
    let first_line = content
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .unwrap_or("");
    if first_line == CODE_SPEC_HEADER {
        let spec = parse_code_spec(content).map_err(|e| e.to_string())?;
        let code = spec.to_code().map_err(|e| e.to_string())?;
        Ok(format!("code spec, {code}"))
    } else if first_line == SCHEDULE_HEADER {
        let schedule = parse_schedule(content).map_err(|e| e.to_string())?;
        Ok(format!(
            "schedule, {} stabilizers, CNOT depth {}",
            schedule.num_stabilizers(),
            schedule
                .depth()
                .map_err(|e| format!("schedule does not lay out: {e}"))?
        ))
    } else if first_line.starts_with("{\"traceEvents\"") {
        // The `<path>.chrome.json` sibling of --trace: one JSON document in the
        // Chrome trace-event "object" form, not a JSON-lines stream.
        let doc = Json::parse(content).map_err(|e| e.to_string())?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("traceEvents must be an array")?;
        if let Some(bad) = events.iter().find(|e| e.get("ph").is_none()) {
            return Err(format!(
                "trace event without a \"ph\" phase field: {}",
                bad.to_json()
            ));
        }
        Ok(format!("chrome trace, {} events", events.len()))
    } else if first_line.starts_with('{') {
        let records = parse_report(content).map_err(|e| e.to_string())?;
        Ok(format!("report, {} records", records.len()))
    } else {
        let dem = parse_dem(content).map_err(|e| e.to_string())?;
        Ok(format!(
            "detector error model, {} detectors, {} observables, {} error mechanisms",
            dem.num_detectors(),
            dem.num_observables(),
            dem.num_errors()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_formats::ReportRecord;

    fn incumbent_line(round: u64) -> String {
        ReportRecord::Incumbent {
            round,
            strategy: "beam".into(),
            instance: 1,
            depth: 5,
            improved: true,
            schedule: "prophunt-schedule v1\n".into(),
        }
        .to_json_line()
    }

    #[test]
    fn search_reports_validate_like_any_other_report() {
        let text = format!("{}\n{}\n", incumbent_line(0), incumbent_line(1));
        assert_eq!(
            check_one(&text).expect("two well-formed incumbent records validate"),
            "report, 2 records"
        );
    }

    #[test]
    fn truncated_search_record_mid_stream_is_a_failure_naming_the_line() {
        // A report cut off mid-write (e.g. a killed `prophunt search`): the
        // trailing half-record must fail the check — which `run` maps to
        // `CliError::Failure`, i.e. exit code 1, not a panic (2 stays reserved
        // for usage errors).
        let good = incumbent_line(0);
        let truncated = &good[..good.len() / 2];
        let err = check_one(&format!("{good}\n{truncated}\n")).unwrap_err();
        assert!(err.contains("line 2"), "error must name the line: {err}");
    }

    #[test]
    fn chrome_trace_documents_are_detected_and_validated() {
        let good = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0.0,"dur":1.5,"pid":0,"tid":1}]}"#;
        assert_eq!(
            check_one(good).expect("well-formed chrome trace validates"),
            "chrome trace, 1 events"
        );
        let no_phase = r#"{"traceEvents":[{"name":"a","ts":0.0}]}"#;
        let err = check_one(no_phase).unwrap_err();
        assert!(
            err.contains("ph"),
            "error must name the missing field: {err}"
        );
        let not_array = r#"{"traceEvents":0}"#;
        assert!(check_one(not_array).is_err());
    }
}
