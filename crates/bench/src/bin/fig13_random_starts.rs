//! Figure 13: PropHunt's robustness to the choice of (random) coloration circuit used as
//! the optimization starting point.

use prophunt::{PropHunt, PropHuntConfig};
use prophunt_bench::{
    benchmark_suite, combined_logical_error_rate, runtime_config_from_env, stage_seed,
};
use prophunt_circuit::schedule::ScheduleSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let shots = if full { 10_000 } else { 1_000 };
    let starts = if full { 3 } else { 2 };
    let p = 2e-3;
    println!("Figure 13: start/end LER over {starts} random coloration circuits (p = {p})");
    println!(
        "{:<14} {:>5} {:>14} {:>14}",
        "code", "start#", "LER(start)", "LER(end)"
    );
    let runtime = runtime_config_from_env();
    let mut rng = StdRng::seed_from_u64(99);
    for bench in benchmark_suite(false) {
        let code = &bench.code;
        let rounds = bench.rounds.min(3);
        for s in 0..starts {
            let baseline = ScheduleSpec::coloration_random(code, &mut rng);
            let mut config = PropHuntConfig::quick(rounds)
                .with_runtime(runtime.with_seed(stage_seed(&runtime, 1000 + s as u64)));
            config.iterations = 3;
            config.samples_per_iteration = 30;
            let prophunt = PropHunt::new(code.clone(), config);
            let result = prophunt
                .try_optimize(baseline.clone())
                .expect("random coloration baseline is valid");
            let before =
                combined_logical_error_rate(code, &baseline, rounds, p, shots, 3, &runtime).rate();
            let after = combined_logical_error_rate(
                code,
                &result.final_schedule,
                rounds,
                p,
                shots,
                3,
                &runtime,
            )
            .rate();
            println!("{:<14} {s:>5} {before:>14.5} {after:>14.5}", code.name());
        }
    }
}
