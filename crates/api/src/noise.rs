//! The noise-model registry: a parsed, canonical description of every noise model
//! the suite can simulate, constructible from a spec string.
//!
//! Grammar (`<p>`, `<idle>` and `<eta>` are decimal floats):
//!
//! ```text
//! depolarizing:<p>             uniform circuit-level depolarizing (the paper's model)
//! depolarizing:<p>:<idle>      ... with idle errors of strength <idle> per moment
//! si1000:<p>                   superconducting-inspired profile (2q at p, 1q/idle at
//!                              p/10, measurement flips at 2p)
//! biased:<p>:<eta>             Z-biased depolarizing, eta = p_Z / (p_X + p_Y)
//! biased:<p>:<eta>:<idle>      ... with idle errors
//! ```
//!
//! [`NoiseSpec`]'s [`std::fmt::Display`] emits the canonical form of the same
//! grammar, so specs round-trip through report records and CLI flags.

use crate::error::ApiError;
use prophunt_circuit::NoiseModel;
use std::fmt;
use std::str::FromStr;

/// A parsed noise specification: the serializable identity of a [`NoiseModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSpec {
    /// Uniform circuit-level depolarizing at rate `p`, with optional idle errors.
    Depolarizing {
        /// Physical error rate.
        p: f64,
        /// Idle error strength per qubit per moment (0 disables idle errors).
        idle: f64,
    },
    /// The superconducting-inspired SI1000-style profile at base rate `p`.
    Si1000 {
        /// Base error rate (two-qubit gates depolarize at this rate).
        p: f64,
    },
    /// Z-biased depolarizing at rate `p` with bias ratio `eta = p_Z / (p_X + p_Y)`.
    Biased {
        /// Physical error rate.
        p: f64,
        /// Bias ratio; `0.5` is unbiased.
        eta: f64,
        /// Idle error strength (0 disables idle errors).
        idle: f64,
    },
}

impl NoiseSpec {
    /// Uniform depolarizing at rate `p` without idle errors (the paper's default).
    pub fn uniform(p: f64) -> NoiseSpec {
        NoiseSpec::Depolarizing { p, idle: 0.0 }
    }

    /// Returns the physical error rate parameter.
    pub fn p(&self) -> f64 {
        match *self {
            NoiseSpec::Depolarizing { p, .. }
            | NoiseSpec::Si1000 { p }
            | NoiseSpec::Biased { p, .. } => p,
        }
    }

    /// Returns the idle error strength (0 for families without an idle knob).
    pub fn idle(&self) -> f64 {
        match *self {
            NoiseSpec::Depolarizing { idle, .. } | NoiseSpec::Biased { idle, .. } => idle,
            NoiseSpec::Si1000 { p } => p / 10.0,
        }
    }

    /// Constructs the concrete [`NoiseModel`].
    pub fn build(&self) -> NoiseModel {
        match *self {
            NoiseSpec::Depolarizing { p, idle } => {
                NoiseModel::uniform_depolarizing(p).with_idle(idle)
            }
            NoiseSpec::Si1000 { p } => NoiseModel::si1000(p),
            NoiseSpec::Biased { p, eta, idle } => NoiseModel::biased(p, eta).with_idle(idle),
        }
    }

    /// Validates the parameters (probabilities in `[0, 1]`, finite, `eta >= 0`).
    fn validate(self, spec: &str) -> Result<NoiseSpec, ApiError> {
        let probability = |name: &str, v: f64| -> Result<(), ApiError> {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ApiError::InvalidNoise(format!(
                    "{name} must be in [0, 1], got {v} in {spec:?}"
                )));
            }
            Ok(())
        };
        match self {
            NoiseSpec::Depolarizing { p, idle } => {
                probability("p", p)?;
                probability("idle", idle)?;
            }
            NoiseSpec::Si1000 { p } => probability("p", p)?,
            NoiseSpec::Biased { p, eta, idle } => {
                probability("p", p)?;
                probability("idle", idle)?;
                if !eta.is_finite() || eta < 0.0 {
                    return Err(ApiError::InvalidNoise(format!(
                        "eta must be a finite ratio >= 0, got {eta} in {spec:?}"
                    )));
                }
            }
        }
        Ok(self)
    }

    /// Parses a noise spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidNoise`] for unknown families, wrong arity or
    /// out-of-range parameters.
    pub fn parse(spec: &str) -> Result<NoiseSpec, ApiError> {
        let mut parts = spec.split(':');
        let family = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let num = |text: &str| -> Result<f64, ApiError> {
            text.parse::<f64>().map_err(|_| {
                ApiError::InvalidNoise(format!("{text:?} is not a number in {spec:?}"))
            })
        };
        let parsed = match (family, args.as_slice()) {
            ("depolarizing", [p]) => NoiseSpec::Depolarizing {
                p: num(p)?,
                idle: 0.0,
            },
            ("depolarizing", [p, idle]) => NoiseSpec::Depolarizing {
                p: num(p)?,
                idle: num(idle)?,
            },
            ("si1000", [p]) => NoiseSpec::Si1000 { p: num(p)? },
            ("biased", [p, eta]) => NoiseSpec::Biased {
                p: num(p)?,
                eta: num(eta)?,
                idle: 0.0,
            },
            ("biased", [p, eta, idle]) => NoiseSpec::Biased {
                p: num(p)?,
                eta: num(eta)?,
                idle: num(idle)?,
            },
            ("depolarizing" | "si1000" | "biased", _) => {
                return Err(ApiError::InvalidNoise(format!(
                    "wrong number of parameters in {spec:?} (expected \
                     depolarizing:<p>[:<idle>], si1000:<p>, or biased:<p>:<eta>[:<idle>])"
                )))
            }
            _ => {
                return Err(ApiError::InvalidNoise(format!(
                    "unknown noise family {family:?} (expected depolarizing, si1000 or biased)"
                )))
            }
        };
        parsed.validate(spec)
    }
}

impl fmt::Display for NoiseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NoiseSpec::Depolarizing { p, idle } => {
                if idle == 0.0 {
                    write!(f, "depolarizing:{p}")
                } else {
                    write!(f, "depolarizing:{p}:{idle}")
                }
            }
            NoiseSpec::Si1000 { p } => write!(f, "si1000:{p}"),
            NoiseSpec::Biased { p, eta, idle } => {
                if idle == 0.0 {
                    write!(f, "biased:{p}:{eta}")
                } else {
                    write!(f, "biased:{p}:{eta}:{idle}")
                }
            }
        }
    }
}

impl FromStr for NoiseSpec {
    type Err = ApiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NoiseSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_round_trip_through_display() {
        let cases = [
            "depolarizing:0.001",
            "depolarizing:0.001:0.0001",
            "si1000:0.002",
            "biased:0.001:10",
            "biased:0.001:10:0.0002",
        ];
        for case in cases {
            let spec = NoiseSpec::parse(case).unwrap();
            let reparsed = NoiseSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(spec, reparsed, "{case}");
        }
    }

    #[test]
    fn canonical_form_drops_a_zero_idle() {
        assert_eq!(NoiseSpec::uniform(1e-3).to_string(), "depolarizing:0.001");
        assert_eq!(
            NoiseSpec::parse("depolarizing:0.001:0")
                .unwrap()
                .to_string(),
            "depolarizing:0.001"
        );
    }

    #[test]
    fn built_models_match_the_noise_model_constructors() {
        assert_eq!(
            NoiseSpec::uniform(1e-3).build(),
            NoiseModel::uniform_depolarizing(1e-3)
        );
        assert_eq!(
            NoiseSpec::parse("si1000:0.002").unwrap().build(),
            NoiseModel::si1000(2e-3)
        );
        assert_eq!(
            NoiseSpec::parse("biased:0.001:10:0.0001").unwrap().build(),
            NoiseModel::biased(1e-3, 10.0).with_idle(1e-4)
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_invalid_noise_errors() {
        for bad in [
            "",
            "depolarizing",
            "depolarizing:x",
            "depolarizing:1.5",
            "depolarizing:-0.1",
            "si1000",
            "si1000:0.1:0.1",
            "biased:0.001",
            "biased:0.001:-1",
            "unknown:0.001",
            "depolarizing:0.001:0.1:0.1",
        ] {
            assert!(
                matches!(NoiseSpec::parse(bad), Err(ApiError::InvalidNoise(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn accessors_expose_p_and_idle() {
        assert_eq!(NoiseSpec::parse("biased:0.002:4:0.0001").unwrap().p(), 2e-3);
        assert_eq!(
            NoiseSpec::parse("depolarizing:0.001:0.0002")
                .unwrap()
                .idle(),
            2e-4
        );
        // si1000 bakes its idle strength in at p/10.
        assert_eq!(NoiseSpec::parse("si1000:0.01").unwrap().idle(), 1e-3);
    }
}
