//! Enabled-vs-disabled registry overhead of the `prophunt-obs` layer on the
//! Table 1 frames-engine LER workload.
//!
//! This is the bench behind the observability layer's acceptance claim: an
//! *enabled* registry (counters incremented per chunk, span histograms around
//! every sample/transpose/decode stage) must cost at most a few percent of
//! frames-engine throughput, and a *disabled* handle must be effectively free.
//! For every benchmark code it runs the same fixed shot budget through
//! [`estimate_with_budget_engine`] with [`Engine::Frames`] at the Table 1
//! operating point (p = 1e-3, production decoder per family), alternating
//! between a runtime built on [`Obs::disabled`] and one built on
//! [`Obs::enabled`], and reports the per-code and suite-aggregate overhead of
//! the enabled registry (minimum wall over the repetitions, so one scheduler
//! stall cannot bias either side).
//!
//! Two deterministic gates always run, smoke profile included:
//!
//! * instrumentation must not perturb results — the failure counts of the
//!   disabled and enabled runs must be identical (the registry is out-of-band
//!   of the splitmix64 seed streams);
//! * the enabled registry must actually observe the run — `ler.shots` must
//!   equal the exact shot budget across the repetitions and the per-stage
//!   frame-pipeline histograms must be populated.
//!
//! The timing gate (suite-aggregate overhead <= 3%) only runs at the full
//! profile: the smoke budget's windows are short enough that timer noise, not
//! the registry, would dominate the comparison. The committed `BENCH_obs.json`
//! records the full-profile run; `PROPHUNT_SMOKE=1` trims the budget and skips
//! the file write.

use prophunt_bench::{benchmark_suite, runtime_config_from_env, stage_seed};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{
    estimate_with_budget_engine, BpOsdDecoder, Decoder, Engine, ShotBudget, UnionFindDecoder,
};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{write_report, Json};
use prophunt_obs::Obs;
use prophunt_runtime::Runtime;
use std::time::{Duration, Instant};

struct ObsRow {
    code: String,
    shots: usize,
    disabled: Duration,
    enabled: Duration,
}

impl ObsRow {
    fn disabled_sps(&self) -> f64 {
        self.shots as f64 / self.disabled.as_secs_f64().max(1e-12)
    }

    fn enabled_sps(&self) -> f64 {
        self.shots as f64 / self.enabled.as_secs_f64().max(1e-12)
    }

    fn overhead_pct(&self) -> f64 {
        100.0 * (self.enabled.as_secs_f64() / self.disabled.as_secs_f64().max(1e-12) - 1.0)
    }

    fn to_record(&self) -> ReportRecord {
        ReportRecord::Table {
            name: "obs_bench".into(),
            fields: vec![
                ("code".into(), Json::Str(self.code.clone())),
                ("shots".into(), Json::UInt(self.shots as u64)),
                (
                    "disabled_shots_per_sec".into(),
                    Json::Float(self.disabled_sps()),
                ),
                (
                    "enabled_shots_per_sec".into(),
                    Json::Float(self.enabled_sps()),
                ),
                ("overhead_pct".into(), Json::Float(self.overhead_pct())),
            ],
        }
    }
}

fn main() {
    let smoke = std::env::var("PROPHUNT_SMOKE").is_ok();
    let runtime = runtime_config_from_env();
    let shots = if smoke { 512 } else { 4096 };
    let reps = if smoke { 2 } else { 5 };
    println!("prophunt-obs registry overhead: frames-engine LER, enabled vs disabled registry");
    println!(
        "  {shots} shots per code and configuration, best of {reps} alternating reps, \
         {} threads, chunk {}, seed {} (PROPHUNT_SMOKE=1 trims the budget)",
        runtime.threads, runtime.chunk_size, runtime.seed
    );
    println!(
        "{:<14} {:>6} {:>14} {:>14} {:>9}",
        "code", "shots", "disabled sh/s", "enabled sh/s", "overhead"
    );
    let mut records = Vec::new();
    let mut disabled_total = Duration::ZERO;
    let mut enabled_total = Duration::ZERO;
    for (stage, bench) in benchmark_suite(true).into_iter().enumerate() {
        // The frame_bench workload: Table 1 operating point, production
        // decoder per family, frames engine. The registry rides along out of
        // band, so both configurations consume identical RNG streams.
        let p = 1e-3;
        let schedule = bench
            .hand_designed
            .clone()
            .unwrap_or_else(|| ScheduleSpec::coloration(&bench.code));
        let exp = MemoryExperiment::build(&bench.code, &schedule, bench.rounds, MemoryBasis::Z)
            .expect("benchmark schedule must be valid for its code");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder: Box<dyn Decoder> = if bench.code.name().starts_with("surface") {
            Box::new(UnionFindDecoder::new(&dem))
        } else {
            Box::new(BpOsdDecoder::new(&dem))
        };
        let decoder = &*decoder;
        let seed = stage_seed(&runtime, 100 + stage as u64);

        let run = |obs: &Obs| {
            let rt = Runtime::with_obs(runtime, obs.clone());
            let t = Instant::now();
            let (estimate, _) = estimate_with_budget_engine(
                &dem,
                decoder,
                ShotBudget::fixed(shots),
                seed,
                Engine::Frames,
                &rt,
                &mut |_| {},
            );
            (estimate.failures, t.elapsed())
        };

        // One shared enabled registry across this code's reps, so the counter
        // totals below are an exact function of (shots, reps).
        let enabled_obs = Obs::enabled();
        let disabled_obs = Obs::disabled();
        let mut disabled = Duration::MAX;
        let mut enabled = Duration::MAX;
        for _ in 0..reps {
            let (disabled_failures, wall) = run(&disabled_obs);
            disabled = disabled.min(wall);
            let (enabled_failures, wall) = run(&enabled_obs);
            enabled = enabled.min(wall);
            // Deterministic gate, always on: instrumentation is out-of-band of
            // the seed streams, so it must not change a single failure count.
            assert_eq!(
                disabled_failures,
                enabled_failures,
                "{}: enabling the obs registry changed the failure count",
                bench.code.name()
            );
        }
        // Deterministic gate, always on: the enabled registry must have
        // observed exactly the shot budget, and the per-stage frame-pipeline
        // histograms must be populated.
        let snap = enabled_obs.snapshot().expect("enabled registry snapshots");
        assert_eq!(
            snap.counter("ler.shots"),
            (shots * reps) as u64,
            "{}: ler.shots must equal the exact shot budget",
            bench.code.name()
        );
        assert!(snap.counter("ler.chunks") > 0);
        for hist in ["ler.frames.sample.ns", "ler.frames.decode.ns"] {
            let h = snap
                .histogram(hist)
                .unwrap_or_else(|| panic!("{}: missing histogram {hist}", bench.code.name()));
            assert!(h.count > 0, "{}: empty histogram {hist}", bench.code.name());
        }

        let row = ObsRow {
            code: bench.code.name().to_string(),
            shots,
            disabled,
            enabled,
        };
        println!(
            "{:<14} {:>6} {:>14.0} {:>14.0} {:>8.2}%",
            row.code,
            row.shots,
            row.disabled_sps(),
            row.enabled_sps(),
            row.overhead_pct()
        );
        disabled_total += disabled;
        enabled_total += enabled;
        records.push(row.to_record());
    }
    let overhead =
        100.0 * (enabled_total.as_secs_f64() / disabled_total.as_secs_f64().max(1e-12) - 1.0);
    println!(
        "{:<14} {:>6} {:>14} {:>14} {:>8.2}%",
        "suite", "", "", "", overhead
    );
    // The timing gate only runs at the full budget: the smoke profile's
    // windows are short enough that timer noise would dominate. (The
    // failure-count and counter-exactness asserts above are the deterministic
    // gates and always run.)
    if !smoke {
        assert!(
            overhead <= 3.0,
            "enabled obs registry must cost <= 3% of frames-engine throughput \
             on the suite aggregate (got {overhead:.2}%)"
        );
    }
    records.push(ReportRecord::Table {
        name: "obs_bench".into(),
        fields: vec![
            ("code".into(), Json::Str("suite".into())),
            ("overhead_pct".into(), Json::Float(overhead)),
        ],
    });
    if smoke {
        // Never clobber the committed full-profile baseline with trimmed
        // smoke numbers.
        println!("smoke mode: skipping BENCH_obs.json (baseline is the full profile)");
    } else {
        std::fs::write("BENCH_obs.json", write_report(&records))
            .expect("cannot write BENCH_obs.json");
        println!("wrote BENCH_obs.json ({} rows)", records.len());
    }
}
