//! Property tests of the incremental schedule-evaluation engine: after every
//! step of a random move sequence, the incrementally maintained validity and
//! depth must equal `check_commutation` + `cnot_layers` evaluated from
//! scratch, and fingerprints must separate mutated schedules while matching
//! on equal ones.
//!
//! Uses the vendored offline proptest shim (deterministic cases, no
//! shrinking); the strategies draw a `u64` seed and expand it with `StdRng`
//! so each random walk stays reproducible.

use prophunt_circuit::schedule::eval::{EvalOp, Move, ScheduleEval};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::CircuitError;
use prophunt_qec::product::bivariate_bicycle;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one random typed move against the current schedule, mirroring the
/// move universe of `prophunt-search` without depending on that crate.
fn random_move(schedule: &ScheduleSpec, rng: &mut StdRng) -> Option<Move> {
    let mut same_kind = Vec::new();
    let mut cross: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for (q, a, b, _) in schedule.relative_entries() {
        if schedule.kind_of(a) == schedule.kind_of(b) {
            same_kind.push((q, a, b));
        } else {
            match cross.iter_mut().find(|(x, z, _)| *x == a && *z == b) {
                Some((_, _, shared)) => shared.push(q),
                None => cross.push((a, b, vec![q])),
            }
        }
    }
    let cross_pairs: Vec<_> = cross
        .into_iter()
        .filter(|(_, _, shared)| shared.len() >= 2)
        .collect();
    let reorderable: Vec<usize> = (0..schedule.num_stabilizers())
        .filter(|&s| schedule.order(s).len() >= 2)
        .collect();
    match rng.gen_range(0..4) {
        0 if !reorderable.is_empty() => {
            let s = reorderable[rng.gen_range(0..reorderable.len())];
            let order = schedule.order(s);
            let from = rng.gen_range(0..order.len());
            let mut to = rng.gen_range(0..order.len() - 1);
            if to >= from {
                to += 1;
            }
            Some(Move::Reorder {
                stabilizer: s,
                move_qubit: order[from],
                anchor_qubit: order[to],
            })
        }
        1 if !same_kind.is_empty() => {
            let (q, a, b) = same_kind[rng.gen_range(0..same_kind.len())];
            Some(Move::SameKindSwap { qubit: q, a, b })
        }
        2 if !cross_pairs.is_empty() => {
            let (x, z, shared) = &cross_pairs[rng.gen_range(0..cross_pairs.len())];
            let i = rng.gen_range(0..shared.len());
            let mut j = rng.gen_range(0..shared.len() - 1);
            if j >= i {
                j += 1;
            }
            Some(Move::PairedCrossSwap {
                x: *x,
                z: *z,
                qubit_a: shared[i],
                qubit_b: shared[j],
            })
        }
        3 if !cross_pairs.is_empty() => {
            let (x, z, _) = cross_pairs[rng.gen_range(0..cross_pairs.len())];
            Some(Move::Promote {
                stabilizer: if rng.gen_range(0..2) == 0 { x } else { z },
            })
        }
        _ => None,
    }
}

/// From-scratch evaluation of the ops: clone, apply, full commutation check,
/// full relayering — the reference the incremental engine must match.
fn scratch_eval(spec: &ScheduleSpec, code: &CssCode, ops: &[EvalOp]) -> Option<usize> {
    let mut scratch = spec.clone();
    for op in ops {
        op.apply(&mut scratch);
    }
    if scratch.check_commutation(code).is_err() {
        return None;
    }
    match scratch.cnot_layers() {
        Ok(layers) => Some(layers.len()),
        Err(CircuitError::Unschedulable) => None,
        Err(other) => panic!("unexpected layering error: {other:?}"),
    }
}

/// Replays `steps` random moves through the incremental engine and the
/// from-scratch path, comparing validity, depth, spec equality and
/// fingerprints after **every** move (with occasional revert round-trips).
fn walk_matches_scratch(code: &CssCode, initial: ScheduleSpec, seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eval = ScheduleEval::new(initial.clone()).unwrap();
    let mut current = initial;
    for step in 0..steps {
        let Some(mv) = random_move(&current, &mut rng) else {
            continue;
        };
        let ops = eval.resolve(&mv);
        let expected = scratch_eval(&current, code, &ops);
        let got = eval.try_ops(&ops);
        assert_eq!(
            got, expected,
            "incremental vs from-scratch disagree at step {step} on {mv:?}"
        );
        match got {
            Some(depth) => {
                // Exercise the revert path on a third of the accepted moves;
                // the state must round-trip exactly.
                if rng.gen_range(0..3) == 0 {
                    eval.revert();
                    assert_eq!(eval.spec(), &current, "revert must restore the spec");
                    assert_eq!(eval.fingerprint(), current.fingerprint());
                    assert_eq!(eval.depth(), current.depth().unwrap());
                } else {
                    eval.commit();
                    let next = eval.spec().clone();
                    // A move that actually changed the schedule must change
                    // the fingerprint (a reorder can be an identity, e.g.
                    // moving a qubit before its direct successor).
                    if next != current {
                        assert_ne!(
                            next.fingerprint(),
                            current.fingerprint(),
                            "a mutating move must change the fingerprint"
                        );
                    } else {
                        assert_eq!(next.fingerprint(), current.fingerprint());
                    }
                    current = next;
                    assert_eq!(eval.depth(), depth);
                    assert_eq!(current.depth().unwrap(), depth);
                    current.check_commutation(code).unwrap();
                }
            }
            None => {
                // Rejection must leave the engine exactly where it was.
                assert_eq!(eval.spec(), &current, "rejection must restore the spec");
                assert_eq!(eval.depth(), current.depth().unwrap());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn surface_d3_walks_match_from_scratch(seed in any::<u64>()) {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        walk_matches_scratch(&code, initial, seed, 60);
    }

    #[test]
    fn surface_d5_walks_match_from_scratch(seed in any::<u64>()) {
        let (code, _) = rotated_surface_code_with_layout(5);
        let initial = ScheduleSpec::coloration(&code);
        walk_matches_scratch(&code, initial, seed, 40);
    }

    #[test]
    fn fingerprints_of_equal_schedules_match(seed in any::<u64>()) {
        let (code, _) = rotated_surface_code_with_layout(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ScheduleSpec::coloration_random(&code, &mut rng);
        let b = a.clone();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        // An independently drawn coloration differs with overwhelming
        // probability — and so must its fingerprint whenever it does.
        let c = ScheduleSpec::coloration_random(&code, &mut rng);
        if c != a {
            prop_assert_ne!(c.fingerprint(), a.fingerprint());
        }
    }
}

#[test]
fn bivariate_bicycle_walk_matches_from_scratch() {
    // One deterministic long walk on the largest benchmark code (weight-6
    // checks, 72 data qubits): the proptest cases above cover the surface
    // codes; this pins the engine on an LDPC Tanner graph where stabilizer
    // pairs share up to three qubits.
    let code = bivariate_bicycle(
        6,
        6,
        &[(3, 0), (0, 1), (0, 2)],
        &[(0, 3), (1, 0), (2, 0)],
        "bb_72_12",
    );
    let initial = ScheduleSpec::coloration(&code);
    walk_matches_scratch(&code, initial, 0xbb72, 60);
}

#[test]
fn surface_hand_designed_walk_matches_from_scratch() {
    // Walks starting from the depth-4 hand-designed schedule exercise the
    // cone relayering around an already-optimal layering.
    let (code, layout) = rotated_surface_code_with_layout(3);
    let initial = ScheduleSpec::surface_hand_designed(&code, &layout);
    walk_matches_scratch(&code, initial, 7, 80);
}
