//! The trace-event layer: hierarchical span/instant events behind [`Tracer`].
//!
//! Where the registry half of this crate answers *how much* (counters,
//! histogram quantiles), the tracer answers *where time goes*: every
//! instrumented layer records begin/end span events (name, category, worker
//! lane, parent span, monotonic nanoseconds, small `u64` args) that export to
//! report-v3 `trace` records and Chrome trace-event JSON.
//!
//! # Buffering
//!
//! Recording appends to a per-thread buffer (a `thread_local!` ring of at most
//! [`LOCAL_FLUSH`] events) and only takes the central lock when the ring
//! fills, when the thread exits, or on [`Tracer::drain`]. The deterministic
//! worker pool spawns fresh scoped threads per parallel call, so worker
//! buffers flush before the call returns. A central cap ([`MAX_EVENTS`])
//! bounds memory on runaway runs; events past the cap are counted in
//! [`TraceLog::dropped`], never silently lost.
//!
//! # Determinism
//!
//! Like the registry, the tracer is strictly out-of-band of the seed streams:
//! attaching one cannot change results. Timeline events carry wall-clock
//! timestamps and are *not* thread-count reproducible; **diagnostic** events
//! ([`Tracer::diag`]) carry `ts = dur = 0`, no span ids and only
//! deterministic args, so the `cat == "diag"` subset of a drained log is
//! bit-identical at any thread count for a fixed `(seed, chunk_size)`.
//! [`Tracer::drain`] sorts events by timestamp with a *stable* sort: the
//! diag subset (all from the single-threaded control path) keeps its emission
//! order and sorts ahead of every timeline event.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Per-thread buffer capacity: the ring flushes to the central sink when it
/// holds this many events.
pub const LOCAL_FLUSH: usize = 1024;

/// Central event cap per tracer; events recorded past it are dropped (and
/// counted in [`TraceLog::dropped`]).
pub const MAX_EVENTS: usize = 1 << 22;

/// Category of the deterministic diagnostic events emitted by
/// [`Tracer::diag`].
pub const DIAG_CATEGORY: &str = "diag";

/// Whether an event is a duration span or a point-in-time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A begin/end pair, recorded as one complete event with a duration.
    Span,
    /// A point event with no duration.
    Instant,
}

impl TraceKind {
    /// A stable machine-readable name (`"span"` / `"instant"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Instant => "instant",
        }
    }

    /// Parses the name produced by [`TraceKind::as_str`].
    #[must_use]
    pub fn parse(name: &str) -> Option<TraceKind> {
        match name {
            "span" => Some(TraceKind::Span),
            "instant" => Some(TraceKind::Instant),
            _ => None,
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (e.g. `runtime.task`, `ler.chunk`, `search.round`).
    pub name: String,
    /// Category, used to group lanes on export ([`DIAG_CATEGORY`] marks the
    /// deterministic diagnostic subset).
    pub cat: String,
    /// Span or instant.
    pub kind: TraceKind,
    /// Lane id: worker index under the runtime pool (0 = the control thread),
    /// or the instance slot for search diagnostics.
    pub tid: u64,
    /// Span id (unique per tracer, 0 for instants and diagnostics).
    pub id: u64,
    /// Enclosing span's id (0 = none).
    pub parent: u64,
    /// Start time in nanoseconds since the tracer's epoch (0 for diagnostics).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Small named `u64` payload, in insertion order.
    pub args: Vec<(String, u64)>,
}

/// A drained trace: every event recorded since the last drain, plus the count
/// of events dropped at the buffer caps.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Events, stably sorted by start timestamp (diagnostics first).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the central cap was reached.
    pub dropped: u64,
}

/// The shared sink a tracer's threads flush into.
#[derive(Debug)]
struct Sink {
    epoch: Instant,
    next_id: AtomicU64,
    len: AtomicUsize,
    dropped: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

/// The cloneable trace-event recorder. All clones share one sink; see the
/// module-level docs above for buffering and determinism.
#[derive(Debug, Clone)]
pub struct Tracer {
    tracer_id: u64,
    sink: Arc<Sink>,
}

/// Per-(thread, tracer) state: the event ring, the open-span stack used for
/// parent attribution, and the thread's lane id.
struct ThreadEntry {
    tracer_id: u64,
    sink: Weak<Sink>,
    buf: Vec<TraceEvent>,
    stack: Vec<u64>,
    tid: u64,
}

impl ThreadEntry {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let Some(sink) = self.sink.upgrade() else {
            self.buf.clear();
            return;
        };
        let mut events = sink.events.lock().expect("trace sink lock poisoned");
        let room = MAX_EVENTS.saturating_sub(events.len());
        if self.buf.len() > room {
            sink.dropped
                .fetch_add((self.buf.len() - room) as u64, Ordering::Relaxed);
            self.buf.truncate(room);
        }
        events.extend(self.buf.drain(..));
        sink.len.store(events.len(), Ordering::Relaxed);
    }
}

impl Drop for ThreadEntry {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    /// Entries for every tracer this thread has recorded into (usually one).
    static TLS: RefCell<Vec<ThreadEntry>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a tracer with a fresh epoch and an empty sink.
    #[must_use]
    pub fn new() -> Tracer {
        Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            sink: Arc::new(Sink {
                epoch: Instant::now(),
                next_id: AtomicU64::new(0),
                len: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The tracer's epoch: every `ts_ns` is measured from this instant.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.sink.epoch
    }

    /// Nanoseconds from the epoch to `at` (0 when `at` precedes the epoch).
    #[must_use]
    pub fn ts_of(&self, at: Instant) -> u64 {
        crate::duration_ns(at.saturating_duration_since(self.sink.epoch))
    }

    fn with_entry<R>(&self, f: impl FnOnce(&mut ThreadEntry) -> R) -> R {
        TLS.with(|cell| {
            let mut entries = cell.borrow_mut();
            let index = match entries.iter().position(|e| e.tracer_id == self.tracer_id) {
                Some(i) => i,
                None => {
                    entries.push(ThreadEntry {
                        tracer_id: self.tracer_id,
                        sink: Arc::downgrade(&self.sink),
                        buf: Vec::new(),
                        stack: Vec::new(),
                        tid: 0,
                    });
                    entries.len() - 1
                }
            };
            f(&mut entries[index])
        })
    }

    fn push_event(&self, event: TraceEvent) {
        self.with_entry(|entry| {
            if self.sink.len.load(Ordering::Relaxed) + entry.buf.len() >= MAX_EVENTS {
                self.sink.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                entry.buf.push(event);
            }
            if entry.buf.len() >= LOCAL_FLUSH {
                entry.flush();
            }
        });
    }

    /// Sets the current thread's lane id for this tracer, returning a guard
    /// that restores the previous lane — and flushes the thread's buffer — on
    /// drop. The runtime worker pool scopes each worker to lane `worker + 1`;
    /// lane 0 is the control thread. The flush-on-drop matters for scoped
    /// workers: a `std::thread::scope` can return before its threads' TLS
    /// destructors run, so the guard (dropping inside the worker closure) is
    /// what guarantees worker events are centrally visible when the parallel
    /// call returns.
    #[must_use]
    pub fn worker_scope(&self, tid: u64) -> WorkerScope {
        let previous = self.with_entry(|entry| std::mem::replace(&mut entry.tid, tid));
        WorkerScope {
            tracer: self.clone(),
            previous,
        }
    }

    /// Opens a span parented to the current thread's innermost open span.
    /// The span records one complete event when dropped or
    /// [`TraceSpan::finish`]ed.
    #[must_use]
    pub fn span(&self, name: &str, cat: &str) -> TraceSpan {
        let parent = self.with_entry(|entry| entry.stack.last().copied().unwrap_or(0));
        self.span_child_of(name, cat, parent)
    }

    /// Opens a span with an explicit parent id (0 = none) — the cross-thread
    /// form used to parent worker-side task spans under the pool-call span.
    #[must_use]
    pub fn span_child_of(&self, name: &str, cat: &str, parent: u64) -> TraceSpan {
        let id = self.sink.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let tid = self.with_entry(|entry| {
            entry.stack.push(id);
            entry.tid
        });
        TraceSpan {
            tracer: self.clone(),
            name: name.to_string(),
            cat: cat.to_string(),
            tid,
            id,
            parent,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Records an instant event at the current time on the current lane,
    /// parented to the innermost open span.
    pub fn instant(&self, name: &str, cat: &str, args: &[(&str, u64)]) {
        let (tid, parent) =
            self.with_entry(|entry| (entry.tid, entry.stack.last().copied().unwrap_or(0)));
        let ts_ns = self.ts_of(Instant::now());
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            kind: TraceKind::Instant,
            tid,
            id: 0,
            parent,
            ts_ns,
            dur_ns: 0,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Records a complete event for the half-open interval beginning at
    /// `start` and lasting `dur_ns`, on the current lane under the innermost
    /// open span. This is the retro-timestamped form used by kernels that
    /// already hold stage stamps.
    pub fn complete(
        &self,
        name: &str,
        cat: &str,
        start: Instant,
        dur_ns: u64,
        args: &[(&str, u64)],
    ) {
        let (tid, parent) =
            self.with_entry(|entry| (entry.tid, entry.stack.last().copied().unwrap_or(0)));
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            kind: TraceKind::Span,
            tid,
            id: 0,
            parent,
            ts_ns: self.ts_of(start),
            dur_ns,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Records a deterministic diagnostic event: `ts = dur = 0`, no span ids,
    /// category [`DIAG_CATEGORY`], with `tid` carrying a deterministic lane
    /// (e.g. a portfolio instance slot). Only call with thread-count-invariant
    /// `args` — the `cat == "diag"` subset of a drained log is byte-compared
    /// across thread counts.
    pub fn diag(&self, name: &str, tid: u64, args: &[(&str, u64)]) {
        self.push_event(TraceEvent {
            name: name.to_string(),
            cat: DIAG_CATEGORY.to_string(),
            kind: TraceKind::Instant,
            tid,
            id: 0,
            parent: 0,
            ts_ns: 0,
            dur_ns: 0,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Takes every event recorded since the last drain, stably sorted by
    /// start timestamp (so the `ts = 0` diagnostic subset leads, in emission
    /// order). Flushes the calling thread's buffer first; worker threads flush
    /// when their [`Tracer::worker_scope`] guard drops (before the parallel
    /// call returns) and again, as a backstop, on thread exit.
    #[must_use]
    pub fn drain(&self) -> TraceLog {
        self.with_entry(ThreadEntry::flush);
        let mut events = {
            let mut guard = self.sink.events.lock().expect("trace sink lock poisoned");
            self.sink.len.store(0, Ordering::Relaxed);
            std::mem::take(&mut *guard)
        };
        events.sort_by_key(|e| e.ts_ns);
        TraceLog {
            events,
            dropped: self.sink.dropped.swap(0, Ordering::Relaxed),
        }
    }
}

/// Guard from [`Tracer::worker_scope`]: restores the previous lane id on drop.
#[derive(Debug)]
pub struct WorkerScope {
    tracer: Tracer,
    previous: u64,
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        let previous = self.previous;
        self.tracer.with_entry(|entry| {
            entry.tid = previous;
            entry.flush();
        });
    }
}

/// An open span from [`Tracer::span`] / [`Tracer::span_child_of`]: records one
/// complete event exactly once, on [`TraceSpan::finish`] or on drop.
#[derive(Debug)]
pub struct TraceSpan {
    tracer: Tracer,
    name: String,
    cat: String,
    tid: u64,
    id: u64,
    parent: u64,
    start: Instant,
    args: Vec<(String, u64)>,
}

impl TraceSpan {
    /// The span's id, for parenting children on other threads.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches (or appends) a named `u64` argument.
    pub fn arg(&mut self, key: &str, value: u64) {
        self.args.push((key.to_string(), value));
    }

    /// Elapsed wall time since the span opened.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span and records it.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let dur_ns = crate::duration_ns(self.start.elapsed());
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            kind: TraceKind::Span,
            tid: self.tid,
            id: self.id,
            parent: self.parent,
            ts_ns: self.tracer.ts_of(self.start),
            dur_ns,
            args: std::mem::take(&mut self.args),
        };
        let id = self.id;
        self.tracer.with_entry(|entry| {
            // Spans almost always drop in LIFO order; tolerate out-of-order
            // drops (e.g. a moved guard) by removing the id wherever it sits.
            match entry.stack.last() {
                Some(&top) if top == id => {
                    entry.stack.pop();
                }
                _ => entry.stack.retain(|&open| open != id),
            }
        });
        self.tracer.push_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parent_links() {
        let tracer = Tracer::new();
        {
            let outer = tracer.span("outer", "test");
            let outer_id = outer.id();
            {
                let mut inner = tracer.span("inner", "test");
                inner.arg("k", 7);
                assert_eq!(inner.id(), outer_id + 1);
            }
            tracer.instant("mark", "test", &[("x", 1)]);
            drop(outer);
        }
        let log = tracer.drain();
        assert_eq!(log.dropped, 0);
        let inner = log.events.iter().find(|e| e.name == "inner").unwrap();
        let outer = log.events.iter().find(|e| e.name == "outer").unwrap();
        let mark = log.events.iter().find(|e| e.name == "mark").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(mark.parent, outer.id);
        assert_eq!(mark.kind, TraceKind::Instant);
        assert_eq!(inner.kind, TraceKind::Span);
        assert_eq!(inner.args, vec![("k".to_string(), 7)]);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(outer.ts_ns <= inner.ts_ns);
    }

    #[test]
    fn worker_scope_sets_and_restores_the_lane() {
        let tracer = Tracer::new();
        {
            let _scope = tracer.worker_scope(3);
            tracer.instant("in", "test", &[]);
        }
        tracer.instant("out", "test", &[]);
        let log = tracer.drain();
        assert_eq!(log.events.iter().find(|e| e.name == "in").unwrap().tid, 3);
        assert_eq!(log.events.iter().find(|e| e.name == "out").unwrap().tid, 0);
    }

    #[test]
    fn diag_events_are_timeless_and_sort_first() {
        let tracer = Tracer::new();
        tracer.span("work", "test").finish();
        tracer.diag("d.one", 0, &[("round", 0)]);
        tracer.diag("d.two", 1, &[("round", 0)]);
        let log = tracer.drain();
        assert_eq!(log.events[0].name, "d.one");
        assert_eq!(log.events[1].name, "d.two");
        for diag in &log.events[..2] {
            assert_eq!(diag.cat, DIAG_CATEGORY);
            assert_eq!(
                (diag.ts_ns, diag.dur_ns, diag.id, diag.parent),
                (0, 0, 0, 0)
            );
        }
        assert_eq!(log.events[2].name, "work");
    }

    #[test]
    fn cross_thread_events_flush_when_scoped_workers_exit() {
        let tracer = Tracer::new();
        let call = tracer.span("call", "test");
        let call_id = call.id();
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let _lane = tracer.worker_scope(w + 1);
                    let mut span = tracer.span_child_of("task", "test", call_id);
                    span.arg("worker", w + 1);
                });
            }
        });
        drop(call);
        let log = tracer.drain();
        let tasks: Vec<_> = log.events.iter().filter(|e| e.name == "task").collect();
        assert_eq!(tasks.len(), 3);
        let mut lanes: Vec<u64> = tasks.iter().map(|e| e.tid).collect();
        lanes.sort_unstable();
        assert_eq!(lanes, vec![1, 2, 3]);
        assert!(tasks.iter().all(|e| e.parent == call_id));
    }

    #[test]
    fn complete_records_retro_timestamped_stages() {
        let tracer = Tracer::new();
        let start = Instant::now();
        tracer.complete("stage", "test", start, 123, &[("shots", 64)]);
        let log = tracer.drain();
        assert_eq!(log.events.len(), 1);
        let e = &log.events[0];
        assert_eq!(e.dur_ns, 123);
        assert_eq!(e.kind, TraceKind::Span);
        assert_eq!(e.ts_ns, tracer.ts_of(start));
        assert_eq!(e.args, vec![("shots".to_string(), 64)]);
    }

    #[test]
    fn central_cap_counts_dropped_events() {
        let tracer = Tracer::new();
        // Fill the sink to the cap directly, then record one more.
        {
            let mut events = tracer.sink.events.lock().unwrap();
            events.resize(
                MAX_EVENTS,
                TraceEvent {
                    name: String::new(),
                    cat: String::new(),
                    kind: TraceKind::Instant,
                    tid: 0,
                    id: 0,
                    parent: 0,
                    ts_ns: 0,
                    dur_ns: 0,
                    args: Vec::new(),
                },
            );
            tracer.sink.len.store(MAX_EVENTS, Ordering::Relaxed);
        }
        tracer.instant("over", "test", &[]);
        let log = tracer.drain();
        assert_eq!(log.events.len(), MAX_EVENTS);
        assert_eq!(log.dropped, 1);
        // The cap resets with the drain.
        tracer.instant("after", "test", &[]);
        let log = tracer.drain();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix_events() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.instant("a", "test", &[]);
        b.instant("b", "test", &[]);
        let la = a.drain();
        let lb = b.drain();
        assert_eq!(la.events.len(), 1);
        assert_eq!(la.events[0].name, "a");
        assert_eq!(lb.events.len(), 1);
        assert_eq!(lb.events[0].name, "b");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [TraceKind::Span, TraceKind::Instant] {
            assert_eq!(TraceKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TraceKind::parse("nope"), None);
    }
}
