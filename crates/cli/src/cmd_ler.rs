//! `prophunt ler` — Monte-Carlo logical-error-rate estimation from a `.dem` file or
//! from a code + schedule, honoring the deterministic `(seed, chunk_size)` contract.

use crate::args::{CliError, Flags};
use crate::cmd_dem::parse_basis;
use crate::common::{load_code, load_schedule, probability_flag, read_file, runtime_from_flags};
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{estimate_logical_error_rate, BpOsdDecoder, LogicalErrorEstimate};
use prophunt_formats::parse_dem;
use prophunt_formats::report::ReportRecord;
use prophunt_runtime::{Runtime, RuntimeConfig};

pub const USAGE: &str = "\
prophunt ler --dem <file> [options]
prophunt ler --code <family-or-spec-file> [--schedule <s>] [options]

  --dem         estimate from an exported .dem file
  --code        estimate from a code (family string or spec file) ...
  --schedule    ... with this schedule: coloration (default), hand, or a file
  --basis       memory basis for --code: z (default), x, or both
  --rounds      rounds for --code (default 3)
  --p           physical error rate for --code (default 0.001)
  --idle        idle error strength for --code (default 0)
  --shots       Monte-Carlo shots (default 2000)
  --seed        base RNG seed (default 0); with --chunk-size it fixes the
                failure count bit-for-bit at any thread count
  --threads     worker threads (default 4; wall-clock only)
  --chunk-size  shots per deterministic chunk (default 64)
  --label       label stored in the emitted record (default dem/schedule source)
  -o, --out     append the JSON-lines record(s) to a file as well as stdout";

fn estimate(
    dem: &DetectorErrorModel,
    shots: usize,
    runtime: &RuntimeConfig,
) -> LogicalErrorEstimate {
    let decoder = BpOsdDecoder::new(dem);
    estimate_logical_error_rate(dem, &decoder, shots, runtime.seed, &Runtime::new(*runtime))
}

fn ler_record(
    label: &str,
    p: f64,
    idle: f64,
    est: &LogicalErrorEstimate,
    runtime: &RuntimeConfig,
) -> ReportRecord {
    // The CLI estimates directly with runtime.seed (no stage derivation), so the
    // recorded pair is exactly what reproduces the count.
    ReportRecord::ler(
        label,
        p,
        idle,
        est.shots as u64,
        est.failures as u64,
        runtime.seed,
        runtime.chunk_size as u64,
    )
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "dem",
            "code",
            "schedule",
            "basis",
            "rounds",
            "p",
            "idle",
            "shots",
            "seed",
            "threads",
            "chunk-size",
            "label",
            "out",
        ],
    )?;
    let shots = flags.num("shots", 2000usize)?;
    if shots == 0 {
        return Err(CliError::usage("--shots must be at least 1"));
    }
    let runtime = runtime_from_flags(&flags)?;

    let mut records = Vec::new();
    match (flags.get("dem"), flags.get("code")) {
        (Some(path), None) => {
            // These knobs shape the model construction, which a .dem file has
            // already baked in — accepting them silently would mislead.
            for code_only in ["schedule", "basis", "rounds", "p", "idle"] {
                if flags.get(code_only).is_some() {
                    return Err(CliError::usage(format!(
                        "--{code_only} only applies with --code; the .dem file fixes the model"
                    )));
                }
            }
            let dem = parse_dem(&read_file(path)?)
                .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
            let est = estimate(&dem, shots, &runtime);
            let label = flags.get("label").unwrap_or(path);
            // A .dem file does not carry the physical error rate it was built from;
            // store 0 rather than a misleading guess.
            records.push(ler_record(label, 0.0, 0.0, &est, &runtime));
        }
        (None, Some(code_value)) => {
            let resolved = load_code(code_value)?;
            let schedule = load_schedule(flags.get("schedule"), &resolved)?;
            let rounds = flags.num("rounds", 3usize)?;
            if rounds == 0 {
                return Err(CliError::usage("--rounds must be at least 1"));
            }
            let p = probability_flag(&flags, "p", 1e-3)?;
            let idle = probability_flag(&flags, "idle", 0.0)?;
            let bases: Vec<MemoryBasis> = match flags.get("basis") {
                Some("both") => vec![MemoryBasis::Z, MemoryBasis::X],
                _ => vec![parse_basis(&flags)?],
            };
            let noise = NoiseModel::uniform_depolarizing(p).with_idle(idle);
            let default_label = flags.get("schedule").unwrap_or("coloration").to_string();
            let label = flags.get("label").unwrap_or(&default_label);
            let mut combined = LogicalErrorEstimate {
                shots: 0,
                failures: 0,
            };
            for basis in &bases {
                let experiment = MemoryExperiment::build(&resolved.code, &schedule, rounds, *basis)
                    .map_err(|e| {
                        CliError::failure(format!("cannot build the memory experiment: {e}"))
                    })?;
                let dem = DetectorErrorModel::from_experiment(&experiment, &noise);
                let est = estimate(&dem, shots, &runtime);
                let basis_label = format!("{label}/{basis:?}");
                records.push(ler_record(&basis_label, p, idle, &est, &runtime));
                combined = combined.combined(est);
            }
            if bases.len() > 1 {
                records.push(ler_record(
                    &format!("{label}/combined"),
                    p,
                    idle,
                    &combined,
                    &runtime,
                ));
            }
        }
        _ => return Err(CliError::usage("ler needs exactly one of --dem or --code")),
    }

    let mut text = String::new();
    for record in &records {
        text.push_str(&record.to_json_line());
        text.push('\n');
        if let ReportRecord::Ler {
            label,
            shots,
            failures,
            ..
        } = record
        {
            let rate = *failures as f64 / *shots as f64;
            eprintln!("{label}: {failures}/{shots} failures (LER {rate:.5})");
        }
    }
    print!("{text}");
    if let Some(path) = flags.get("out") {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CliError::failure(format!("cannot open {path}: {e}")))?;
        file.write_all(text.as_bytes())
            .map_err(|e| CliError::failure(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}
