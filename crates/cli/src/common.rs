//! Shared helpers: loading codes/schedules from families or files, runtime
//! configuration flags, and output sinks.

use crate::args::{CliError, Flags};
use prophunt_api::{DecoderRegistry, Session};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{
    parse_code_spec, parse_schedule, resolve_family, trace_event_to_record, write_chrome_trace,
    ResolvedCode,
};
use prophunt_obs::{Obs, Snapshot, Tracer};
use prophunt_runtime::RuntimeConfig;
use std::io::Write as _;
use std::path::Path;

/// Reads a file, mapping I/O errors to [`CliError::Failure`] with the path.
pub fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::failure(format!("cannot read {path}: {e}")))
}

/// Writes a file, mapping I/O errors to [`CliError::Failure`] with the path.
pub fn write_file(path: &str, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content)
        .map_err(|e| CliError::failure(format!("cannot write {path}: {e}")))
}

/// Writes `content` to `--out` when given, else to stdout.
pub fn write_output(out: Option<&str>, content: &str) -> Result<(), CliError> {
    match out {
        Some(path) => write_file(path, content),
        None => {
            print!("{content}");
            std::io::stdout()
                .flush()
                .map_err(|e| CliError::failure(format!("cannot write to stdout: {e}")))
        }
    }
}

/// Appends already-serialized JSON-lines `text` to `path` (creating it first if
/// needed).
pub fn append_records(path: &str, text: &str) -> Result<(), CliError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| CliError::failure(format!("cannot open {path}: {e}")))?;
    file.write_all(text.as_bytes())
        .map_err(|e| CliError::failure(format!("cannot write {path}: {e}")))
}

/// Builds the provenance `meta` record every report and metrics stream starts
/// with. `engine` names the estimation engine where one applies (empty for
/// optimize/search runs). The record carries the invoking command line in the
/// additive `cmdline` field (trace-v1 extension; parsers default it).
pub fn meta_record(runtime: &RuntimeConfig, engine: &str) -> ReportRecord {
    ReportRecord::meta(
        env!("CARGO_PKG_VERSION"),
        runtime.seed,
        runtime.threads as u64,
        runtime.chunk_size as u64,
        engine,
    )
    .with_cmdline(std::env::args().collect::<Vec<String>>().join(" "))
}

/// The `--trace` sink: the tracer attached to the session's [`Obs`] and the
/// path its drained events are written to when the job completes.
pub struct TraceSink {
    tracer: Tracer,
    path: String,
}

/// Builds the session for a job command, honoring `--trace <path>`: with the
/// flag, the session's [`Obs`] carries a [`Tracer`] (alongside the usual
/// metrics registry) and the returned [`TraceSink`] collects it for
/// [`write_trace_files`]. Tracing is strictly out-of-band — it cannot change
/// any deterministic result, only record how the run executed.
pub fn session_from_flags(flags: &Flags, runtime: RuntimeConfig) -> (Session, Option<TraceSink>) {
    match flags.get("trace") {
        Some(path) => {
            let tracer = Tracer::new();
            let obs = Obs::enabled().with_tracer(tracer.clone());
            let session = Session::with_obs(runtime, DecoderRegistry::with_defaults(), obs);
            (
                session,
                Some(TraceSink {
                    tracer,
                    path: path.to_string(),
                }),
            )
        }
        None => (Session::new(runtime), None),
    }
}

/// Drains the sink's tracer and writes both `--trace` outputs: the report
/// JSON-lines file at the given path (`meta` line plus one `trace` record per
/// event, re-parseable by `prophunt check` / `prophunt trace`) and the Chrome
/// trace-event / Perfetto JSON sibling at `<path>.chrome.json`.
pub fn write_trace_files(sink: &TraceSink, meta: &ReportRecord) -> Result<(), CliError> {
    let log = sink.tracer.drain();
    if log.dropped > 0 {
        eprintln!(
            "trace: {} events dropped (central buffer cap reached)",
            log.dropped
        );
    }
    let mut text = meta.to_json_line();
    text.push('\n');
    for event in &log.events {
        text.push_str(&trace_event_to_record(event).to_json_line());
        text.push('\n');
    }
    write_file(&sink.path, &text)?;
    let chrome_path = format!("{}.chrome.json", sink.path);
    let mut chrome = write_chrome_trace(&log.events);
    chrome.push('\n');
    write_file(&chrome_path, &chrome)?;
    eprintln!(
        "trace: {} events -> {} (+ {chrome_path})",
        log.events.len(),
        sink.path
    );
    Ok(())
}

/// Writes the `--metrics` file: a `meta` provenance line followed by one
/// `metrics` record holding the session registry snapshot. The file is
/// overwritten — it describes exactly one run.
pub fn write_metrics_file(
    path: &str,
    meta: &ReportRecord,
    snapshot: &Snapshot,
) -> Result<(), CliError> {
    let mut text = meta.to_json_line();
    text.push('\n');
    text.push_str(&ReportRecord::metrics_from_snapshot(snapshot).to_json_line());
    text.push('\n');
    write_file(path, &text)
}

/// Resolves `--code`: a path to a `prophunt-code v1` spec file when one exists at
/// that path, otherwise a code-family string like `surface:3`.
pub fn load_code(value: &str) -> Result<ResolvedCode, CliError> {
    if Path::new(value).is_file() {
        let spec = parse_code_spec(&read_file(value)?)
            .map_err(|e| CliError::failure(format!("{value}: {e}")))?;
        let code = spec
            .to_code()
            .map_err(|e| CliError::failure(format!("{value}: {e}")))?;
        Ok(ResolvedCode { code, layout: None })
    } else {
        resolve_family(value).map_err(|e| {
            // A mistyped path lands here too; make sure the error says so instead
            // of only pointing at the family mini-language.
            CliError::failure(format!("{e} (and no file exists at {value:?})"))
        })
    }
}

/// Resolves `--schedule`: `coloration` (the default), `hand` (surface codes only),
/// or a path to a `prophunt-schedule v1` file. The result is validated against the
/// code.
pub fn load_schedule(
    value: Option<&str>,
    resolved: &ResolvedCode,
) -> Result<ScheduleSpec, CliError> {
    let schedule = match value {
        None | Some("coloration") => ScheduleSpec::coloration(&resolved.code),
        Some("hand") => resolved.hand_designed_schedule().ok_or_else(|| {
            CliError::failure("--schedule hand needs a code family with a layout (surface:<d>)")
        })?,
        Some(path) => parse_schedule(&read_file(path)?)
            .map_err(|e| CliError::failure(format!("{path}: {e}")))?,
    };
    schedule
        .validate_for_code(&resolved.code)
        .map_err(|e| CliError::failure(format!("schedule is not valid for this code: {e}")))?;
    Ok(schedule)
}

/// Builds the [`RuntimeConfig`] from `--threads`, `--chunk-size` and `--seed`.
pub fn runtime_from_flags(flags: &Flags) -> Result<RuntimeConfig, CliError> {
    let threads = flags.num("threads", 4usize)?;
    if threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    let chunk_size = flags.num("chunk-size", RuntimeConfig::DEFAULT_CHUNK_SIZE)?;
    if chunk_size == 0 {
        return Err(CliError::usage("--chunk-size must be at least 1"));
    }
    let seed = flags.num("seed", 0u64)?;
    Ok(RuntimeConfig::new(threads, chunk_size, seed))
}

/// Parses `--p`-style probability flags, requiring `[0, 1]`.
pub fn probability_flag(flags: &Flags, name: &str, default: f64) -> Result<f64, CliError> {
    let p = flags.num(name, default)?;
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(CliError::usage(format!(
            "--{name} must be in [0, 1], got {p}"
        )));
    }
    Ok(p)
}

/// Resolves the noise model: `--noise <spec>` (which conflicts with `--p`/`--idle`)
/// or the uniform depolarizing model from `--p`/`--idle`.
pub fn noise_from_flags(flags: &Flags) -> Result<prophunt_api::NoiseSpec, CliError> {
    match flags.get("noise") {
        Some(spec) => {
            if flags.get("p").is_some() || flags.get("idle").is_some() {
                return Err(CliError::usage(
                    "--noise carries its own rates; it conflicts with --p/--idle",
                ));
            }
            prophunt_api::NoiseSpec::parse(spec).map_err(CliError::usage)
        }
        None => Ok(prophunt_api::NoiseSpec::Depolarizing {
            p: probability_flag(flags, "p", 1e-3)?,
            idle: probability_flag(flags, "idle", 0.0)?,
        }),
    }
}

/// Resolves the shot budget from `--shots` (the cap) plus at most one of
/// `--max-failures` / `--target-rse`.
pub fn budget_from_flags(
    flags: &Flags,
    default_shots: usize,
) -> Result<prophunt_api::ShotBudget, CliError> {
    use prophunt_api::ShotBudget;
    let shots = flags.num("shots", default_shots)?;
    if shots == 0 {
        return Err(CliError::usage("--shots must be at least 1"));
    }
    match (flags.get("max-failures"), flags.get("target-rse")) {
        (Some(_), Some(_)) => Err(CliError::usage(
            "--max-failures and --target-rse are mutually exclusive",
        )),
        (Some(_), None) => {
            let max_failures = flags.num("max-failures", 0usize)?;
            if max_failures == 0 {
                return Err(CliError::usage("--max-failures must be at least 1"));
            }
            Ok(ShotBudget::MaxFailures {
                max_failures,
                max_shots: shots,
            })
        }
        (None, Some(_)) => {
            let target = flags.num("target-rse", 0.0f64)?;
            if !target.is_finite() || target <= 0.0 {
                return Err(CliError::usage("--target-rse must be a positive number"));
            }
            Ok(ShotBudget::TargetRse {
                target,
                max_shots: shots,
            })
        }
        (None, None) => Ok(ShotBudget::Fixed { shots }),
    }
}

/// Returns the decoder registry name from `--decoder` (default `bposd`).
pub fn decoder_from_flags(flags: &Flags) -> String {
    flags.get("decoder").unwrap_or("bposd").to_string()
}

/// Parses `--engine` into a [`prophunt_api::Engine`] (default scalar).
pub fn engine_from_flags(flags: &Flags) -> Result<prophunt_api::Engine, CliError> {
    match flags.get("engine") {
        None => Ok(prophunt_api::Engine::Scalar),
        Some(name) => prophunt_api::Engine::parse(name).ok_or_else(|| {
            CliError::usage(format!("--engine must be scalar or frames, got {name:?}"))
        }),
    }
}

/// Parses `--decode-cache` into a [`prophunt_api::DecodeCache`] (default on).
pub fn decode_cache_from_flags(flags: &Flags) -> Result<prophunt_api::DecodeCache, CliError> {
    match flags.get("decode-cache") {
        None => Ok(prophunt_api::DecodeCache::On),
        Some(name) => prophunt_api::DecodeCache::parse(name).ok_or_else(|| {
            CliError::usage(format!("--decode-cache must be on or off, got {name:?}"))
        }),
    }
}

/// Parses `--basis` into a [`prophunt_api::BasisSelection`] (default Z).
pub fn basis_selection_from_flags(flags: &Flags) -> Result<prophunt_api::BasisSelection, CliError> {
    use prophunt_api::BasisSelection;
    match flags.get("basis") {
        None | Some("z") | Some("Z") => Ok(BasisSelection::Z),
        Some("x") | Some("X") => Ok(BasisSelection::X),
        Some("both") => Ok(BasisSelection::Both),
        Some(other) => Err(CliError::usage(format!(
            "--basis must be z, x or both, got {other:?}"
        ))),
    }
}
