//! Figure 1: circuit depth and effective distance are imperfect predictors of the
//! logical error rate. Generates many valid schedules for a surface code and prints
//! (depth, d_eff estimate, LER) triples; the paper's counterexamples correspond to rows
//! with equal depth / d_eff but different LER.

use prophunt::{PropHunt, PropHuntConfig};
use prophunt_bench::{combined_logical_error_rate, runtime_config_from_env, stage_seed};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::var("PROPHUNT_FULL").is_err();
    let d = if quick { 3 } else { 5 };
    let shots = if quick { 800 } else { 5_000 };
    let num_schedules = if quick { 6 } else { 20 };
    let runtime = runtime_config_from_env();
    let (code, layout) = rotated_surface_code_with_layout(d);
    let mut config = PropHuntConfig::quick(d);
    config.runtime = runtime.with_seed(stage_seed(&runtime, config.seed()));
    let prophunt = PropHunt::new(code.clone(), config);
    let mut rng = StdRng::seed_from_u64(2024);

    let mut schedules = vec![
        (
            "hand_designed".to_string(),
            ScheduleSpec::surface_hand_designed(&code, &layout),
        ),
        (
            "poor".to_string(),
            ScheduleSpec::surface_poor(&code, &layout),
        ),
        ("coloration".to_string(), ScheduleSpec::coloration(&code)),
    ];
    let mut added = 0;
    while added < num_schedules {
        let s = ScheduleSpec::random(&code, &mut rng);
        if s.validate(&code).is_ok() {
            schedules.push((format!("random_{added}"), s));
            added += 1;
        }
    }

    println!("Figure 1: depth and d_eff vs logical error rate (surface code d = {d}, p = 1e-3)");
    println!(
        "{:<16} {:>6} {:>6} {:>10}",
        "schedule", "depth", "d_eff", "LER"
    );
    for (name, schedule) in schedules {
        let depth = schedule.depth().unwrap();
        let deff = prophunt
            .estimate_effective_distance(&schedule, 8)
            .unwrap_or(0);
        let ler = combined_logical_error_rate(&code, &schedule, d, 1e-3, shots, 5, &runtime).rate();
        println!("{name:<16} {depth:>6} {deff:>6} {ler:>10.5}");
    }
}
