//! `prophunt sweep` — evaluate a code × physical-error-rate × decoder grid
//! through one shared `prophunt-api` Session, emitting one JSON-lines `ler`
//! record per grid point.
//!
//! The session caches memory experiments across noise points and detector error
//! models across decoders, so the grid costs far less than independent `ler`
//! invocations.

use crate::args::{CliError, Flags};
use crate::common::{
    append_records, basis_selection_from_flags, budget_from_flags, engine_from_flags, load_code,
    load_schedule, meta_record, runtime_from_flags, session_from_flags, write_metrics_file,
    write_trace_files,
};
use prophunt_api::{ExperimentSpec, LerJob, NoiseSpec, ScheduleSource};

pub const USAGE: &str = "\
prophunt sweep --codes <fam1,fam2,...> [options]

  --codes         comma-separated code families (surface:3,surface:5,steane,...)
  --ps            comma-separated physical error rates (default 0.001,0.003,0.01)
  --decoders      comma-separated decoder names (default bposd)
  --noise-family  noise family applied at each p: depolarizing (default),
                  si1000, or biased:<eta>
  --schedule      coloration (default) or hand (surface codes only)
  --basis         z (default), x, or both
  --rounds        syndrome-measurement rounds (default 3)
  --engine        estimation engine for every grid point: scalar (default)
                  or frames (bit-parallel, 64 shots per word)
  --shots         shot cap per grid point (default 2000)
  --max-failures  adaptive stop: failures per grid point
  --target-rse    adaptive stop: relative standard error per grid point
  --seed          base RNG seed (default 0)
  --threads       worker threads (default 4; wall-clock only)
  --chunk-size    shots per deterministic chunk (default 64)
  --metrics       write a meta + metrics JSON-lines pair (session registry
                  snapshot for the whole grid) to this file
  --trace         record a span-event trace of the whole grid and write it to
                  this file (JSON-lines `trace` records) plus a Chrome
                  trace-event / Perfetto JSON sibling at <file>.chrome.json
  -o, --out       append the JSON-lines records to a file as well as stdout

The stdout stream starts with a `meta` provenance record; parsers treat it as
optional.";

/// Builds the noise spec of one grid point from the `--noise-family` template,
/// going through [`NoiseSpec::parse`] so grid rates get the same `[0, 1]`
/// validation as `--noise` spec strings.
fn noise_at(family: &str, p: f64) -> Result<NoiseSpec, CliError> {
    let spec = match family.split_once(':') {
        None if family == "depolarizing" || family == "si1000" => format!("{family}:{p}"),
        Some(("biased", eta)) => format!("biased:{p}:{eta}"),
        _ => {
            return Err(CliError::usage(format!(
                "--noise-family must be depolarizing, si1000 or biased:<eta>, got {family:?}"
            )))
        }
    };
    NoiseSpec::parse(&spec).map_err(CliError::usage)
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "codes",
            "ps",
            "decoders",
            "noise-family",
            "schedule",
            "basis",
            "rounds",
            "engine",
            "shots",
            "max-failures",
            "target-rse",
            "seed",
            "threads",
            "chunk-size",
            "metrics",
            "trace",
            "out",
        ],
    )?;
    let codes: Vec<&str> = flags
        .require("codes")?
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    if codes.is_empty() {
        return Err(CliError::usage("--codes needs at least one family"));
    }
    let ps: Vec<f64> = flags
        .get("ps")
        .unwrap_or("0.001,0.003,0.01")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| CliError::usage(format!("invalid error rate {s:?} in --ps")))
        })
        .collect::<Result<_, _>>()?;
    if ps.is_empty() {
        return Err(CliError::usage("--ps needs at least one error rate"));
    }
    let decoders: Vec<&str> = flags
        .get("decoders")
        .unwrap_or("bposd")
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    if decoders.is_empty() {
        return Err(CliError::usage("--decoders needs at least one name"));
    }
    let noise_family = flags.get("noise-family").unwrap_or("depolarizing");
    let basis = basis_selection_from_flags(&flags)?;
    let rounds = flags.num("rounds", 3usize)?;
    if rounds == 0 {
        return Err(CliError::usage("--rounds must be at least 1"));
    }
    let budget = budget_from_flags(&flags, 2000)?;
    let engine = engine_from_flags(&flags)?;
    let runtime = runtime_from_flags(&flags)?;

    // One session for the whole grid: experiments are shared across p's and
    // models across decoders.
    let (mut session, trace) = session_from_flags(&flags, runtime);
    let meta = meta_record(&runtime, engine.as_str());
    let mut text = String::new();
    let meta_line = meta.to_json_line();
    text.push_str(&meta_line);
    text.push('\n');
    println!("{meta_line}");
    for code_family in &codes {
        let resolved = load_code(code_family)?;
        let schedule = load_schedule(flags.get("schedule"), &resolved)?;
        let base = ExperimentSpec::builder()
            .resolved_code(resolved)
            .schedule(ScheduleSource::Explicit(schedule))
            .rounds(rounds)
            .basis(basis)
            .engine(engine)
            .build()
            .map_err(CliError::failure)?;
        for &p in &ps {
            let noise = noise_at(noise_family, p)?;
            for decoder in &decoders {
                let spec = base.with_noise(noise).with_decoder(*decoder);
                let label = format!("{code_family}/{p}/{decoder}");
                let job = LerJob::new(spec).with_budget(budget).with_label(&label);
                let outcome = session.run_ler_quiet(&job).map_err(CliError::failure)?;
                eprintln!(
                    "{label}: {}/{} failures (LER {:.5}, {})",
                    outcome.combined.failures,
                    outcome.combined.shots,
                    outcome.combined.rate(),
                    outcome.stop.as_str()
                );
                let line = outcome.to_record(&label).to_json_line();
                text.push_str(&line);
                text.push('\n');
                // Stream each grid point as it completes.
                println!("{line}");
            }
        }
    }
    let stats = session.stats();
    eprintln!(
        "sweep: {} grid points; {} experiments and {} models built ({} model cache hits)",
        codes.len() * ps.len() * decoders.len(),
        stats.experiments_built,
        stats.dems_built,
        stats.dem_hits,
    );
    if let Some(path) = flags.get("out") {
        append_records(path, &text)?;
    }
    if let Some(path) = flags.get("metrics") {
        write_metrics_file(path, &meta, &session.metrics())?;
    }
    if let Some(sink) = &trace {
        write_trace_files(sink, &meta)?;
    }
    Ok(())
}
