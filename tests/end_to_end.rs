//! Cross-crate integration tests: code construction -> schedule -> circuit -> detector
//! error model -> decoding -> PropHunt optimization.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{estimate_logical_error_rate, BpOsdDecoder, UnionFindDecoder};
use prophunt_suite::qec::product::generalized_bicycle;
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::qec::CssCode;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

fn combined_ler(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    shots: usize,
) -> f64 {
    let mut failures = 0;
    let mut total = 0;
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, rounds, basis).expect("valid schedule");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let est = estimate_logical_error_rate(&dem, &decoder, shots, 99, &runtime);
        failures += est.failures;
        total += est.shots;
    }
    failures as f64 / total as f64
}

#[test]
fn poor_surface_schedule_has_higher_logical_error_rate_than_hand_designed() {
    // The paper's Figure 6: the N/Z schedule clearly outperforms a poor schedule.
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let hand = ScheduleSpec::surface_hand_designed(&code, &layout);
    let p = 8e-3;
    let shots = 1_500;
    let ler_poor = combined_ler(&code, &poor, 3, p, shots);
    let ler_hand = combined_ler(&code, &hand, 3, p, shots);
    assert!(
        ler_poor > ler_hand,
        "poor schedule LER {ler_poor} should exceed hand-designed {ler_hand}"
    );
}

#[test]
fn prophunt_improves_a_poor_surface_schedule_end_to_end() {
    // The headline behaviour: starting from the poor schedule, PropHunt's output should
    // (a) restore the effective distance and (b) not be worse than the starting point in
    // a direct Monte-Carlo comparison.
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let prophunt = PropHunt::new(code.clone(), PropHuntConfig::quick(3).with_seed(3));
    let result = prophunt.try_optimize(poor.clone()).unwrap();
    assert!(result.total_changes_applied() >= 1);

    let before_deff = prophunt.estimate_effective_distance(&poor, 12).unwrap();
    let after_deff = prophunt
        .estimate_effective_distance(&result.final_schedule, 12)
        .unwrap();
    assert!(
        after_deff > before_deff,
        "d_eff {before_deff} -> {after_deff}"
    );

    // A Monte-Carlo LER comparison at this quick-test scale is shot-noise limited (the
    // decisive comparison is the Figure 12 harness); here we only require that the
    // optimized circuit is not dramatically worse than the starting point.
    let p = 8e-3;
    let shots = 1_200;
    let ler_before = combined_ler(&code, &poor, 3, p, shots);
    let ler_after = combined_ler(&code, &result.final_schedule, 3, p, shots);
    assert!(
        ler_after <= (ler_before * 1.6).max(ler_before + 0.02),
        "optimized LER {ler_after} regressed far past the poor schedule's {ler_before}"
    );
}

#[test]
fn decoders_agree_on_surface_code_order_of_magnitude() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
    let bposd = BpOsdDecoder::new(&dem);
    let uf = UnionFindDecoder::new(&dem);
    let shots = 800;
    let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
    let a = estimate_logical_error_rate(&dem, &bposd, shots, 5, &runtime);
    let b = estimate_logical_error_rate(&dem, &uf, shots, 5, &runtime);
    // Union-find is less accurate but must stay within an order of magnitude.
    assert!(b.failures <= 10 * a.failures.max(3));
}

#[test]
fn ldpc_coloration_circuit_pipeline_runs_and_decodes() {
    let code = generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2");
    let schedule = ScheduleSpec::coloration(&code);
    schedule.validate(&code).unwrap();
    let ler = combined_ler(&code, &schedule, 2, 2e-3, 500);
    assert!(ler < 0.2, "LDPC pipeline produced implausible LER {ler}");
}

#[test]
fn random_coloration_starts_are_valid_for_every_benchmark_family() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let codes = vec![
        rotated_surface_code_with_layout(3).0,
        rotated_surface_code_with_layout(5).0,
        generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2"),
        prophunt_suite::qec::small::steane_code(),
    ];
    for code in &codes {
        for _ in 0..3 {
            let schedule = ScheduleSpec::coloration_random(code, &mut rng);
            schedule
                .validate(code)
                .unwrap_or_else(|e| panic!("invalid random coloration for {code}: {e}"));
        }
    }
}
