//! `prophunt dem` — build a detector error model and write it as a `.dem` file.

use crate::args::{CliError, Flags};
use crate::common::{load_code, load_schedule, noise_from_flags, write_output};
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment};
use prophunt_formats::write_dem;

pub const USAGE: &str = "\
prophunt dem --code <family-or-spec-file> [options] [-o <file>]

  --code      code family (surface:3, ...) or path to a prophunt-code spec file
  --schedule  coloration (default), hand (surface codes), or a schedule file
  --rounds    syndrome-measurement rounds (default 3)
  --basis     memory basis: z (default) or x
  --p         physical error rate (default 0.001)
  --idle      idle error strength (default 0)
  --noise     full noise spec (depolarizing:<p>[:<idle>], si1000:<p>,
              biased:<p>:<eta>[:<idle>]); conflicts with --p/--idle
  -o, --out   write the .dem to a file instead of stdout";

pub fn parse_basis(flags: &Flags) -> Result<MemoryBasis, CliError> {
    match flags.get("basis").unwrap_or("z") {
        "z" | "Z" => Ok(MemoryBasis::Z),
        "x" | "X" => Ok(MemoryBasis::X),
        other => Err(CliError::usage(format!(
            "--basis must be z or x, got {other:?}"
        ))),
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "code", "schedule", "rounds", "basis", "p", "idle", "noise", "out",
        ],
    )?;
    let resolved = load_code(flags.require("code")?)?;
    let schedule = load_schedule(flags.get("schedule"), &resolved)?;
    let rounds = flags.num("rounds", 3usize)?;
    if rounds == 0 {
        return Err(CliError::usage("--rounds must be at least 1"));
    }
    let basis = parse_basis(&flags)?;
    let noise = noise_from_flags(&flags)?;
    let experiment = MemoryExperiment::build(&resolved.code, &schedule, rounds, basis)
        .map_err(|e| CliError::failure(format!("cannot build the memory experiment: {e}")))?;
    let dem = DetectorErrorModel::from_experiment(&experiment, &noise.build());
    write_output(flags.get("out"), &write_dem(&dem))
}
