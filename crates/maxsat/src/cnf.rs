//! Propositional variables, literals and CNF formula construction.

use std::fmt;

/// A propositional variable, identified by a zero-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (0 if positive, 1 if negative)`, which makes literal-indexed
/// tables (e.g. watch lists) straightforward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal for `var` with the given polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 * 2 + u32::from(!positive))
    }

    /// Returns the underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Returns `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Returns the literal-table index (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the value of this literal under an assignment of its variable.
    pub fn apply(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "~{}", self.var())
        }
    }
}

/// An incrementally built CNF formula.
///
/// Tracks the number of variables and the clause list, and provides the higher-level
/// encodings (XOR trees and totalizers) in the [`crate::encode`] module via inherent
/// methods. Clause counts are split into "hard" clauses added directly and clauses added
/// by the XOR encoder, so MaxSAT statistics can report them the way the paper's Table 2
/// does.
#[derive(Debug, Clone, Default)]
pub struct CnfBuilder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfBuilder {
    /// Creates an empty formula.
    pub fn new() -> Self {
        CnfBuilder::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references unallocated variable"
            );
        }
        self.clauses.push(lits.to_vec());
    }

    /// Adds a unit clause forcing `lit` to be true.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause(&[lit]);
    }

    /// Builds a [`crate::solver::Solver`] over the current formula.
    pub fn build_solver(&self) -> crate::solver::Solver {
        let mut solver = crate::solver::Solver::new(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        let pos = v.positive();
        let neg = v.negative();
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert_eq!(!pos, neg);
        assert_eq!(!neg, pos);
        assert_eq!(pos.index() + 1, neg.index());
    }

    #[test]
    fn apply_respects_polarity() {
        let v = Var(0);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(v.negative().apply(false));
        assert!(!v.negative().apply(true));
    }

    #[test]
    fn builder_tracks_vars_and_clauses() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        b.add_clause(&[x.positive(), y.negative()]);
        b.add_unit(y.positive());
        assert_eq!(b.num_vars(), 2);
        assert_eq!(b.num_clauses(), 2);
        assert_eq!(b.clauses()[1], vec![y.positive()]);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn clause_with_unknown_var_panics() {
        let mut b = CnfBuilder::new();
        b.add_clause(&[Var(3).positive()]);
    }

    #[test]
    fn display_forms() {
        let v = Var(2);
        assert_eq!(format!("{}", v.positive()), "x2");
        assert_eq!(format!("{}", v.negative()), "~x2");
    }
}
