//! `prophunt` — the batch command-line entry point of the PropHunt suite.
//!
//! Subcommands:
//!
//! * `code` — emit or validate CSS code spec files.
//! * `dem` — build a Stim-compatible detector error model from a code + schedule.
//! * `optimize` — run the PropHunt optimization loop, streaming JSON-lines
//!   iteration records and writing the final schedule file; `--resume` restarts
//!   from an exported schedule.
//! * `search` — strategy-portfolio schedule search (MaxSAT descent, annealing,
//!   beam, hill climbing raced in deterministic synchronized rounds), streaming
//!   JSON-lines incumbent records.
//! * `ler` — Monte-Carlo logical-error-rate estimation from a `.dem` file or a
//!   code + schedule, with pluggable decoders, noise specs and adaptive budgets.
//! * `sweep` — a code × p × decoder grid evaluated through one shared Session.
//! * `check` — re-parse any emitted file.
//! * `report` — summarize (or diff) the metrics files written by `--metrics`.
//! * `trace` — analyze the span-event trace files written by `--trace`:
//!   pool-utilization timeline, per-stage concurrency, critical path, and the
//!   search-convergence summary.
//! * `lint` — run the `prophunt-lint` determinism & discipline rules (D1–D7)
//!   over the workspace sources and manifests.
//!
//! Exit codes: 0 on success, 1 when an operation fails (unreadable file, invalid
//! schedule, ...), 2 for usage errors. User input never panics the process: every
//! input path goes through the typed parsers of `prophunt-formats`.

#![forbid(unsafe_code)]

mod args;
mod cmd_check;
mod cmd_code;
mod cmd_dem;
mod cmd_ler;
mod cmd_lint;
mod cmd_optimize;
mod cmd_report;
mod cmd_search;
mod cmd_sweep;
mod cmd_trace;
mod common;

use args::CliError;
use std::process::ExitCode;

const USAGE: &str = "\
prophunt — automated optimization of quantum syndrome measurement circuits

usage: prophunt <command> [flags]

commands:
  code      emit a code spec from a family, or validate a spec file
  dem       build a detector error model and write it as a .dem file
  optimize  run the PropHunt loop; stream JSON-lines records, write the schedule
  search    race a strategy portfolio over schedules; stream incumbent records
  ler       Monte-Carlo logical error rate from a .dem file or code + schedule
  sweep     evaluate a code x p x decoder grid through one shared session
  check     re-parse emitted files (auto-detects the format)
  report    summarize or diff metrics files written with --metrics
  trace     analyze a span-event trace written with --trace
  lint      statically check workspace crates against rules D1-D7

run `prophunt <command> --help` for per-command flags";

fn dispatch(command: &str, rest: &[String]) -> Result<(), CliError> {
    let usage_of = |usage: &str| -> Result<(), CliError> {
        println!("{usage}");
        Ok(())
    };
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");
    match command {
        "code" if wants_help => usage_of(cmd_code::USAGE),
        "dem" if wants_help => usage_of(cmd_dem::USAGE),
        "optimize" if wants_help => usage_of(cmd_optimize::USAGE),
        "search" if wants_help => usage_of(cmd_search::USAGE),
        "ler" if wants_help => usage_of(cmd_ler::USAGE),
        "sweep" if wants_help => usage_of(cmd_sweep::USAGE),
        "check" if wants_help => usage_of(cmd_check::USAGE),
        "report" if wants_help => usage_of(cmd_report::USAGE),
        "trace" if wants_help => usage_of(cmd_trace::USAGE),
        "lint" if wants_help => usage_of(cmd_lint::USAGE),
        "code" => cmd_code::run(rest),
        "dem" => cmd_dem::run(rest),
        "optimize" => cmd_optimize::run(rest),
        "search" => cmd_search::run(rest),
        "ler" => cmd_ler::run(rest),
        "sweep" => cmd_sweep::run(rest),
        "check" => cmd_check::run(rest),
        "report" => cmd_report::run(rest),
        "trace" => cmd_trace::run(rest),
        "lint" => cmd_lint::run(rest),
        "--help" | "-h" | "help" => usage_of(USAGE),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn usage_for(command: &str) -> &'static str {
    match command {
        "code" => cmd_code::USAGE,
        "dem" => cmd_dem::USAGE,
        "optimize" => cmd_optimize::USAGE,
        "search" => cmd_search::USAGE,
        "ler" => cmd_ler::USAGE,
        "sweep" => cmd_sweep::USAGE,
        "check" => cmd_check::USAGE,
        "report" => cmd_report::USAGE,
        "trace" => cmd_trace::USAGE,
        "lint" => cmd_lint::USAGE,
        _ => USAGE,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match dispatch(command, rest) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage_for(command));
            ExitCode::from(2)
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
    }
}
