//! The circuit-level Pauli noise model of the paper's evaluation (Section 6.1).
//!
//! Single-qubit operations are followed by one of `{X, Y, Z}` with probability `p/3`
//! each; two-qubit operations are followed by one of the fifteen non-identity two-qubit
//! Paulis with probability `p/15` each; measurements are preceded by an outcome-flipping
//! error with probability `p`. Idle qubits optionally pick up a Pauli-twirled
//! decoherence error between gate layers (Section 6.3's sensitivity study).

use crate::ops::{Circuit, Op};

/// A single-qubit Pauli operator (excluding identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Bit-flip error.
    X,
    /// Combined bit- and phase-flip error.
    Y,
    /// Phase-flip error.
    Z,
}

impl Pauli {
    /// All three non-identity Paulis.
    pub const ALL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns `true` if the Pauli has an X component (X or Y).
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Returns `true` if the Pauli has a Z component (Z or Y).
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }
}

/// A Pauli error on a small set of qubits, stored sparsely.
pub type SparsePauli = Vec<(usize, Pauli)>;

/// Circuit-level noise parameters.
///
/// All probabilities are per-operation. The model is a small *family*:
///
/// * [`NoiseModel::uniform_depolarizing`] — the paper's model with a single physical
///   error rate `p` (every Pauli equally likely).
/// * [`NoiseModel::si1000`] — a superconducting-inspired profile: full-strength
///   two-qubit errors, weak (`p/10`) single-qubit and idle errors, strong (`2p`)
///   measurement flips.
/// * [`NoiseModel::biased`] — depolarizing with a Z-biased Pauli distribution,
///   parameterized by the bias ratio `eta = p_Z / (p_X + p_Y)`.
///
/// The Pauli distribution is controlled by [`NoiseModel::pauli_weights`]: relative
/// `[X, Y, Z]` weights. Uniform weights `[1, 1, 1]` reproduce the classic `p/3`
/// (single-qubit) and `p/15` (two-qubit) probabilities bit-for-bit; biased weights
/// reshape both the single-qubit Paulis and, via a product form, the fifteen
/// two-qubit Paulis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate or reset.
    pub p_single: f64,
    /// Depolarizing probability after each two-qubit gate.
    pub p_double: f64,
    /// Outcome-flip probability before each measurement.
    pub p_measure: f64,
    /// Depolarizing probability applied to each idle qubit in each moment.
    pub p_idle: f64,
    /// Relative weights of the `[X, Y, Z]` error components. `[1, 1, 1]` is the
    /// unbiased (uniform depolarizing) distribution.
    pub pauli_weights: [f64; 3],
}

/// The unbiased Pauli weights.
const UNIFORM_WEIGHTS: [f64; 3] = [1.0, 1.0, 1.0];

impl NoiseModel {
    /// The paper's uniform circuit-level depolarizing model at physical error rate `p`.
    pub fn uniform_depolarizing(p: f64) -> Self {
        NoiseModel {
            p_single: p,
            p_double: p,
            p_measure: p,
            p_idle: 0.0,
            pauli_weights: UNIFORM_WEIGHTS,
        }
    }

    /// A superconducting-inspired profile at base error rate `p` (the SI1000 family):
    /// two-qubit gates depolarize at `p`, single-qubit operations and idling at
    /// `p / 10`, and measurement outcomes flip at `2p` (clamped to `0.5`).
    pub fn si1000(p: f64) -> Self {
        NoiseModel {
            p_single: p / 10.0,
            p_double: p,
            p_measure: (2.0 * p).min(0.5),
            p_idle: p / 10.0,
            pauli_weights: UNIFORM_WEIGHTS,
        }
    }

    /// A Z-biased depolarizing model at error rate `p` with bias ratio
    /// `eta = p_Z / (p_X + p_Y)`. `eta = 0.5` is the unbiased model; large `eta`
    /// concentrates errors on the Z component (dephasing-dominated hardware).
    pub fn biased(p: f64, eta: f64) -> Self {
        NoiseModel {
            pauli_weights: [1.0, 1.0, 2.0 * eta],
            ..NoiseModel::uniform_depolarizing(p)
        }
    }

    /// Adds idle errors of strength `p_idle` per qubit per moment (Pauli-twirled
    /// decoherence approximation). The idle strength is typically `t_gate / T_coherence`
    /// as in the paper's Figure 15.
    pub fn with_idle(mut self, p_idle: f64) -> Self {
        self.p_idle = p_idle;
        self
    }

    /// Overrides the relative `[X, Y, Z]` error-component weights.
    pub fn with_pauli_weights(mut self, weights: [f64; 3]) -> Self {
        self.pauli_weights = weights;
        self
    }

    /// A noiseless model (useful in tests).
    pub fn noiseless() -> Self {
        NoiseModel {
            p_single: 0.0,
            p_double: 0.0,
            p_measure: 0.0,
            p_idle: 0.0,
            pauli_weights: UNIFORM_WEIGHTS,
        }
    }

    /// Per-Pauli weight normalized so the unbiased model yields exactly `1.0` for
    /// every component (which keeps the uniform `p/3` / `p/15` probabilities
    /// bit-identical to the unweighted formulas).
    fn normalized_weight(&self, pauli: Pauli) -> f64 {
        let sum: f64 = self.pauli_weights.iter().sum();
        let w = match pauli {
            Pauli::X => self.pauli_weights[0],
            Pauli::Y => self.pauli_weights[1],
            Pauli::Z => self.pauli_weights[2],
        };
        3.0 * w / sum
    }

    /// Probability of the single-qubit error `pauli` after a single-qubit operation
    /// at strength `p`: `p * w / (w_x + w_y + w_z)`.
    fn single_pauli_probability(&self, p: f64, pauli: Pauli) -> f64 {
        let sum: f64 = self.pauli_weights.iter().sum();
        let w = match pauli {
            Pauli::X => self.pauli_weights[0],
            Pauli::Y => self.pauli_weights[1],
            Pauli::Z => self.pauli_weights[2],
        };
        p * w / sum
    }

    /// Enumerates every elementary fault the model can inject into `circuit`.
    ///
    /// Each fault is returned as `(moment, op_index_within_moment, error, probability,
    /// is_pre_op)`. `is_pre_op` is `true` for measurement-flip errors, which are applied
    /// *before* their operation so the flipped outcome is recorded.
    pub fn enumerate_faults(&self, circuit: &Circuit) -> Vec<Fault> {
        let mut faults = Vec::new();
        for (mi, moment) in circuit.moments().enumerate() {
            for (oi, op) in moment.iter().enumerate() {
                match *op {
                    Op::Cnot(c, t) => {
                        if self.p_double > 0.0 {
                            for pc in [None, Some(Pauli::X), Some(Pauli::Y), Some(Pauli::Z)] {
                                for pt in [None, Some(Pauli::X), Some(Pauli::Y), Some(Pauli::Z)] {
                                    if pc.is_none() && pt.is_none() {
                                        continue;
                                    }
                                    // Product-form biased distribution over the 15
                                    // non-identity two-qubit Paulis: identity weight 1,
                                    // normalized per-component weights (uniform => every
                                    // pair has weight 1 and probability p/15 exactly).
                                    let weight = pc.map_or(1.0, |p| self.normalized_weight(p))
                                        * pt.map_or(1.0, |p| self.normalized_weight(p));
                                    if weight == 0.0 {
                                        continue;
                                    }
                                    let mut error = SparsePauli::new();
                                    if let Some(pc) = pc {
                                        error.push((c, pc));
                                    }
                                    if let Some(pt) = pt {
                                        error.push((t, pt));
                                    }
                                    faults.push(Fault {
                                        moment: mi,
                                        op_index: oi,
                                        op: *op,
                                        error,
                                        probability: self.p_double * weight / 15.0,
                                        pre_op: false,
                                    });
                                }
                            }
                        }
                    }
                    Op::H(q) | Op::ResetZ(q) | Op::ResetX(q) => {
                        if self.p_single > 0.0 {
                            for pauli in Pauli::ALL {
                                let probability =
                                    self.single_pauli_probability(self.p_single, pauli);
                                if probability == 0.0 {
                                    continue;
                                }
                                faults.push(Fault {
                                    moment: mi,
                                    op_index: oi,
                                    op: *op,
                                    error: vec![(q, pauli)],
                                    probability,
                                    pre_op: false,
                                });
                            }
                        }
                    }
                    Op::MeasureZ(q) => {
                        if self.p_measure > 0.0 {
                            faults.push(Fault {
                                moment: mi,
                                op_index: oi,
                                op: *op,
                                error: vec![(q, Pauli::X)],
                                probability: self.p_measure,
                                pre_op: true,
                            });
                        }
                    }
                    Op::MeasureX(q) => {
                        if self.p_measure > 0.0 {
                            faults.push(Fault {
                                moment: mi,
                                op_index: oi,
                                op: *op,
                                error: vec![(q, Pauli::Z)],
                                probability: self.p_measure,
                                pre_op: true,
                            });
                        }
                    }
                }
            }
            if self.p_idle > 0.0 {
                for q in circuit.idle_qubits(mi) {
                    for pauli in Pauli::ALL {
                        let probability = self.single_pauli_probability(self.p_idle, pauli);
                        if probability == 0.0 {
                            continue;
                        }
                        faults.push(Fault {
                            moment: mi,
                            op_index: usize::MAX,
                            op: Op::H(q), // placeholder op descriptor for idle locations
                            error: vec![(q, pauli)],
                            probability,
                            pre_op: true,
                        });
                    }
                }
            }
        }
        faults
    }
}

/// A single elementary fault location produced by [`NoiseModel::enumerate_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Moment index in the circuit.
    pub moment: usize,
    /// Index of the operation within the moment (`usize::MAX` for idle-qubit faults).
    pub op_index: usize,
    /// The operation the fault is attached to.
    pub op: Op,
    /// The Pauli error injected.
    pub error: SparsePauli,
    /// The probability of this elementary fault.
    pub probability: f64,
    /// Whether the error acts before its operation (measurement flips, idle errors) or
    /// after it (gate errors).
    pub pre_op: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Circuit, Op};

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push_moment(vec![Op::ResetZ(0), Op::ResetX(1)]);
        c.push_moment(vec![Op::Cnot(1, 0)]);
        c.push_moment(vec![Op::H(1)]);
        c.push_moment(vec![Op::MeasureZ(0), Op::MeasureX(1)]);
        c
    }

    #[test]
    fn uniform_model_counts_fault_locations() {
        let c = small_circuit();
        let model = NoiseModel::uniform_depolarizing(1e-3);
        let faults = model.enumerate_faults(&c);
        // 2 resets * 3 + 1 CNOT * 15 + 1 H * 3 + 2 measurements * 1 = 26.
        assert_eq!(faults.len(), 26);
        let total_p: f64 = faults.iter().map(|f| f.probability).sum();
        // 3 single-qubit-style ops at p + 1 two-qubit op at p + 2 measurement flips at p.
        assert!((total_p - 6.0e-3).abs() < 1e-12);
    }

    #[test]
    fn idle_errors_added_when_enabled() {
        let c = small_circuit();
        let model = NoiseModel::uniform_depolarizing(1e-3).with_idle(1e-4);
        let faults = model.enumerate_faults(&c);
        // Idle qubits: moment 0 has qubit 2, moment 1 has qubit 2, moment 2 has 0 and 2,
        // moment 3 has qubit 2 -> 5 idle locations * 3 Paulis.
        let idle_faults = faults.iter().filter(|f| f.op_index == usize::MAX).count();
        assert_eq!(idle_faults, 5 * 3);
    }

    #[test]
    fn noiseless_model_has_no_faults() {
        let c = small_circuit();
        assert!(NoiseModel::noiseless().enumerate_faults(&c).is_empty());
    }

    #[test]
    fn measurement_faults_are_pre_op() {
        let c = small_circuit();
        let model = NoiseModel::uniform_depolarizing(1e-3);
        for f in model.enumerate_faults(&c) {
            if matches!(f.op, Op::MeasureZ(_) | Op::MeasureX(_)) {
                assert!(f.pre_op);
            } else {
                assert!(!f.pre_op);
            }
        }
    }

    #[test]
    fn biased_model_with_unbiased_eta_matches_uniform_depolarizing() {
        let c = small_circuit();
        let uniform = NoiseModel::uniform_depolarizing(1e-3).enumerate_faults(&c);
        let biased = NoiseModel::biased(1e-3, 0.5).enumerate_faults(&c);
        assert_eq!(uniform.len(), biased.len());
        for (u, b) in uniform.iter().zip(&biased) {
            assert_eq!(u.error, b.error);
            assert_eq!(u.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn biased_model_concentrates_probability_on_z() {
        let c = small_circuit();
        let faults = NoiseModel::biased(1e-3, 10.0).enumerate_faults(&c);
        // Total per-op budgets are preserved: 3 single-qubit-style ops + 1 CNOT +
        // 2 measurement flips, all at p.
        let total: f64 = faults.iter().map(|f| f.probability).sum();
        assert!((total - 6.0e-3).abs() < 1e-12, "total {total}");
        // For a single-qubit op, Z must now carry eta/(eta+1) of the budget.
        let reset_z: f64 = faults
            .iter()
            .filter(|f| matches!(f.op, Op::ResetZ(_)) && f.error == vec![(0, Pauli::Z)])
            .map(|f| f.probability)
            .sum();
        assert!((reset_z - 1e-3 * 10.0 / 11.0).abs() < 1e-15, "{reset_z}");
    }

    #[test]
    fn fully_biased_model_drops_zero_weight_faults() {
        let c = small_circuit();
        // eta = 0: no Z component anywhere; every remaining fault is X/Y only.
        let faults = NoiseModel::biased(1e-3, 0.0).enumerate_faults(&c);
        assert!(!faults.is_empty());
        for f in &faults {
            // Measurement flips are injected directly (X before MZ, Z before MX)
            // and are not part of the depolarizing Pauli distribution.
            if f.pre_op {
                continue;
            }
            assert!(
                f.error.iter().all(|&(_, p)| p != Pauli::Z),
                "unexpected Z fault {f:?}"
            );
            assert!(f.probability > 0.0);
        }
    }

    #[test]
    fn si1000_profile_has_the_documented_strengths() {
        let m = NoiseModel::si1000(1e-3);
        assert_eq!(m.p_double, 1e-3);
        assert_eq!(m.p_single, 1e-4);
        assert_eq!(m.p_idle, 1e-4);
        assert_eq!(m.p_measure, 2e-3);
        // The measurement flip clamps at 0.5 for absurd base rates.
        assert_eq!(NoiseModel::si1000(0.4).p_measure, 0.5);
        let c = small_circuit();
        let faults = m.enumerate_faults(&c);
        // si1000 enables idle errors, so idle fault locations appear.
        assert!(faults.iter().any(|f| f.op_index == usize::MAX));
    }

    #[test]
    fn pauli_component_queries() {
        assert!(Pauli::X.has_x() && !Pauli::X.has_z());
        assert!(Pauli::Y.has_x() && Pauli::Y.has_z());
        assert!(!Pauli::Z.has_x() && Pauli::Z.has_z());
    }
}
