//! The PropHunt iterative optimization loop (paper Section 5, Figure 8).
//!
//! Each iteration is an explicit pipeline of stages —
//! `build_graph → sample → solve → enumerate → verify → apply` — whose
//! parallel stages all run on the shared [`prophunt_runtime`] execution layer:
//! work is divided into thread-count-independent tasks, every task derives its
//! RNG seed from a [`prophunt_runtime::SeedStream`], and results are assembled
//! in task order, so
//! a fixed [`RuntimeConfig`] `(seed, chunk_size)` yields bit-identical
//! [`OptimizationResult`]s at any thread count.

use crate::ambiguity::{find_ambiguous_subgraph, AmbiguousSubgraph, DecodingGraph};
use crate::changes::{
    apply_verified_changes, enumerate_candidates, verify_candidate, VerifiedChange,
};
use crate::minweight::{min_weight_logical_error, MinWeightSolution};
use crate::CandidateChange;
use prophunt_circuit::{MemoryBasis, NoiseModel, ScheduleSpec};
use prophunt_qec::CssCode;
use prophunt_runtime::{Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a PropHunt optimization run.
#[derive(Debug, Clone)]
pub struct PropHuntConfig {
    /// Maximum number of optimization iterations (the paper uses 25).
    pub iterations: usize,
    /// Number of random subgraph-expansion samples per iteration (the paper uses 500).
    pub samples_per_iteration: usize,
    /// Number of syndrome-measurement rounds in the analysed memory experiment.
    pub rounds: usize,
    /// Physical error rate used to build the detector error model (under uniform
    /// depolarizing noise, unless [`Self::noise`] overrides the whole model).
    pub physical_error_rate: f64,
    /// Full noise-model override. `None` (the default) analyses the circuit under
    /// [`NoiseModel::uniform_depolarizing`] at [`Self::physical_error_rate`]; `Some`
    /// optimizes against that model instead (SI1000-style, biased, ...).
    pub noise: Option<NoiseModel>,
    /// Budget per MaxSAT solve, denominated in `Duration` for parity with the
    /// paper (which uses 360 s) but enforced as a deterministic *conflict*
    /// budget: the duration is converted through the fixed
    /// `prophunt_maxsat::maxsat::CONFLICTS_PER_BUDGET_SECOND` exchange rate, so
    /// the same budget buys the same amount of search on every machine.
    pub maxsat_budget: Duration,
    /// Maximum subgraph-expansion steps before a sample gives up.
    pub max_subgraph_steps: usize,
    /// Maximum number of distinct ambiguous subgraphs processed per iteration.
    pub max_subgraphs_per_iteration: usize,
    /// Shared parallel-runtime configuration: worker-thread bound, chunk size
    /// and the base random seed. The run is a deterministic function of
    /// `(runtime.seed, runtime.chunk_size)`; `runtime.threads` affects
    /// wall-clock time only. MaxSAT budget exhaustion is part of that
    /// determinism: because [`Self::maxsat_budget`] is enforced in conflicts,
    /// a solve that runs out of budget returns the same incumbent everywhere.
    pub runtime: RuntimeConfig,
}

impl PropHuntConfig {
    /// A small configuration suitable for tests and examples: few iterations, few
    /// samples, single-digit wall-clock seconds on a d=3 surface code.
    pub fn quick(rounds: usize) -> Self {
        PropHuntConfig {
            iterations: 4,
            samples_per_iteration: 40,
            rounds,
            physical_error_rate: 1e-3,
            noise: None,
            maxsat_budget: Duration::from_secs(20),
            max_subgraph_steps: 60,
            max_subgraphs_per_iteration: 6,
            runtime: RuntimeConfig::new(4, 16, 0x5eed_0001),
        }
    }

    /// A configuration mirroring the paper's experiment scale (25 iterations, 500
    /// samples per iteration, 360 s MaxSAT budget). Intended for the benchmark harness.
    pub fn paper_like(rounds: usize) -> Self {
        PropHuntConfig {
            iterations: 25,
            samples_per_iteration: 500,
            rounds,
            physical_error_rate: 1e-3,
            noise: None,
            maxsat_budget: Duration::from_secs(360),
            max_subgraph_steps: 120,
            max_subgraphs_per_iteration: 24,
            runtime: RuntimeConfig::new(8, 64, 0x5eed_0001),
        }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.runtime.seed = seed;
        self
    }

    /// Overrides the whole runtime configuration (threads, chunk size, seed).
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the full noise model the circuit is analysed under.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Returns the noise model the decoding graphs are built with: the explicit
    /// [`Self::noise`] override, or uniform depolarizing at
    /// [`Self::physical_error_rate`].
    pub fn noise_model(&self) -> NoiseModel {
        self.noise
            .unwrap_or_else(|| NoiseModel::uniform_depolarizing(self.physical_error_rate))
    }

    /// Returns the base random seed.
    pub fn seed(&self) -> u64 {
        self.runtime.seed
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Memory basis analysed in this iteration (alternates between Z and X).
    pub basis: MemoryBasis,
    /// Number of distinct ambiguous subgraphs found.
    pub subgraphs_found: usize,
    /// Weights of the minimum-weight logical errors solved this iteration.
    pub solution_weights: Vec<usize>,
    /// Number of candidate changes enumerated before pruning.
    pub candidates_enumerated: usize,
    /// Number of verified changes applied to the schedule.
    pub changes_applied: usize,
    /// CNOT depth of the schedule after this iteration.
    pub depth: usize,
    /// The schedule after this iteration (an intermediate circuit, used by Hook-ZNE).
    pub schedule: ScheduleSpec,
}

/// The result of a PropHunt optimization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizationResult {
    /// The schedule the run started from.
    pub initial_schedule: ScheduleSpec,
    /// The schedule after the final iteration.
    pub final_schedule: ScheduleSpec,
    /// Per-iteration records, including every intermediate schedule.
    pub records: Vec<IterationRecord>,
}

impl OptimizationResult {
    /// Returns the CNOT depth of the final schedule.
    pub fn final_depth(&self) -> usize {
        self.final_schedule.depth().unwrap_or(usize::MAX)
    }

    /// Returns the total number of changes applied across all iterations.
    pub fn total_changes_applied(&self) -> usize {
        self.records.iter().map(|r| r.changes_applied).sum()
    }

    /// Returns the smallest logical-error weight observed during optimization (an upper
    /// bound estimate of the *initial* effective distance).
    pub fn min_weight_seen(&self) -> Option<usize> {
        self.records
            .iter()
            .flat_map(|r| r.solution_weights.iter().copied())
            .min()
    }

    /// Returns every intermediate schedule in order (including the final one).
    pub fn intermediate_schedules(&self) -> Vec<&ScheduleSpec> {
        self.records.iter().map(|r| &r.schedule).collect()
    }
}

/// Pipeline-stage labels for [`SeedStream::substream`]: every parallel stage
/// draws from its own independent seed stream, so stages can never alias each
/// other's RNG streams even when task indices coincide.
mod stage {
    pub const SAMPLE: u64 = 1;
    pub const ENUMERATE: u64 = 2;
    pub const DISTANCE: u64 = 3;
}

/// A decoding graph cached per memory basis, keyed by the exact schedule it
/// was built from.
#[derive(Debug)]
struct CachedGraph {
    schedule: ScheduleSpec,
    graph: Arc<DecodingGraph>,
}

fn basis_slot(basis: MemoryBasis) -> usize {
    match basis {
        MemoryBasis::Z => 0,
        MemoryBasis::X => 1,
    }
}

/// The PropHunt optimizer for a fixed CSS code.
#[derive(Debug)]
pub struct PropHunt {
    code: CssCode,
    config: PropHuntConfig,
    runtime: Runtime,
    /// Per-basis cache of the most recent decoding graph, shared between
    /// [`PropHunt::try_optimize`]'s iterations and
    /// [`PropHunt::estimate_effective_distance`] so the (expensive) detector
    /// error model of an unchanged schedule is built once per basis, not once
    /// per caller.
    graph_cache: Mutex<[Option<CachedGraph>; 2]>,
}

impl Clone for PropHunt {
    fn clone(&self) -> Self {
        // The cache is a memo, not state: a clone starts cold.
        PropHunt::new(self.code.clone(), self.config.clone())
    }
}

impl PropHunt {
    /// Creates an optimizer for `code` with the given configuration.
    pub fn new(code: CssCode, config: PropHuntConfig) -> Self {
        let runtime = Runtime::new(config.runtime);
        PropHunt {
            code,
            config,
            runtime,
            graph_cache: Mutex::new([None, None]),
        }
    }

    /// Returns the code being optimized.
    pub fn code(&self) -> &CssCode {
        &self.code
    }

    /// Returns the configuration.
    pub fn config(&self) -> &PropHuntConfig {
        &self.config
    }

    /// Returns the shared parallel runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Runs the iterative optimization loop starting from `initial` (typically a
    /// coloration circuit), validating the initial schedule against the code. This
    /// is also the resume entry point used by `prophunt optimize --resume`, where
    /// the starting schedule is a previously exported schedule file.
    ///
    /// # Errors
    ///
    /// Returns the [`prophunt_circuit::CircuitError`] raised by schedule validation.
    pub fn try_optimize(
        &self,
        initial: ScheduleSpec,
    ) -> Result<OptimizationResult, prophunt_circuit::CircuitError> {
        self.try_optimize_with_observer(initial, |_| {})
    }

    /// Runs the optimization loop, invoking `observer` with each completed
    /// [`IterationRecord`] *as the run progresses* — the hook behind the CLI's streamed
    /// JSON-lines iteration reports. The observer sees exactly the records collected in
    /// the returned [`OptimizationResult`], in order.
    ///
    /// # Errors
    ///
    /// Returns the [`prophunt_circuit::CircuitError`] raised by schedule validation.
    pub fn try_optimize_with_observer(
        &self,
        initial: ScheduleSpec,
        mut observer: impl FnMut(&IterationRecord),
    ) -> Result<OptimizationResult, prophunt_circuit::CircuitError> {
        // Full boundary check (including Tanner-graph coverage): the initial
        // schedule may come from a file rather than a trusted constructor.
        initial.validate_for_code(&self.code)?;
        let mut schedule = initial.clone();
        let mut records = Vec::new();
        for iteration in 0..self.config.iterations {
            let basis = if iteration % 2 == 0 {
                MemoryBasis::Z
            } else {
                MemoryBasis::X
            };
            let record = self.step(iteration, basis, &mut schedule);
            observer(&record);
            let stop = record.subgraphs_found == 0 && iteration > 0;
            records.push(record);
            if stop {
                break;
            }
        }
        Ok(OptimizationResult {
            initial_schedule: initial,
            final_schedule: schedule,
            records,
        })
    }

    /// Runs **one** optimization iteration — the explicit
    /// `build_graph → sample → solve → enumerate → verify → apply` stage
    /// pipeline — on `schedule` in the given memory basis, mutating it in place.
    ///
    /// This is the stepping entry point behind [`PropHunt::try_optimize`] (which
    /// alternates bases and owns the stop rule) and the `prophunt-search`
    /// MaxSAT-descent strategy (which interleaves single iterations with other
    /// strategies between portfolio rounds). `iteration` selects the
    /// deterministic RNG substreams, so distinct iteration numbers never alias
    /// each other's sampling streams.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is not valid for the code; callers stepping
    /// externally supplied schedules must run
    /// [`ScheduleSpec::validate_for_code`] first, exactly like
    /// [`PropHunt::try_optimize`] does.
    pub fn step(
        &self,
        iteration: usize,
        basis: MemoryBasis,
        schedule: &mut ScheduleSpec,
    ) -> IterationRecord {
        // Stage 1: build (or reuse) the decoding graph of the current schedule.
        let graph = self
            .build_graph(schedule, basis)
            .expect("schedule stays valid across iterations");

        // Stage 2: sample ambiguous subgraphs, one task per sample.
        let subgraphs = self.sample_stage(&graph, iteration);

        // Stage 3: minimum-weight logical error per subgraph (MaxSAT).
        let solved = self.solve_stage(subgraphs);
        let solution_weights: Vec<usize> = solved.iter().map(|(_, s)| s.weight).collect();
        // A subgraph only counts as *found* once it has a minimum-weight
        // solution: `try_optimize` stops on zero, and a sampled-but-unsolvable
        // batch (every solve timing out) must stop the loop, not spin it.
        let subgraphs_found = solved.len();

        // Stage 4: enumerate candidate changes per subgraph.
        let (tasks, candidates_enumerated) =
            self.enumerate_stage(&graph, schedule, solved, iteration);

        // Stage 5: verify candidates — bounded parallel tasks, never one OS
        // thread per candidate.
        let verified_per_subgraph = self.verify_stage(&graph, schedule, basis, &tasks);

        // Stage 6: apply the minimum-depth verified change of each subgraph.
        let changes_applied = apply_verified_changes(schedule, verified_per_subgraph);
        IterationRecord {
            iteration,
            basis,
            subgraphs_found,
            solution_weights,
            candidates_enumerated,
            changes_applied,
            depth: schedule.depth().unwrap_or(usize::MAX),
            schedule: schedule.clone(),
        }
    }

    /// Builds the decoding graph for `(schedule, basis)`, reusing the cached
    /// graph when the schedule is unchanged since the last build for that
    /// basis.
    fn build_graph(
        &self,
        schedule: &ScheduleSpec,
        basis: MemoryBasis,
    ) -> Result<Arc<DecodingGraph>, String> {
        let slot = basis_slot(basis);
        {
            let cache = self.graph_cache.lock().expect("graph cache poisoned");
            if let Some(entry) = &cache[slot] {
                if entry.schedule == *schedule {
                    return Ok(Arc::clone(&entry.graph));
                }
            }
        }
        let graph = Arc::new(
            DecodingGraph::build_with_noise(
                &self.code,
                schedule,
                self.config.rounds,
                basis,
                &self.config.noise_model(),
            )
            .map_err(|e| format!("{e:?}"))?,
        );
        let mut cache = self.graph_cache.lock().expect("graph cache poisoned");
        cache[slot] = Some(CachedGraph {
            schedule: schedule.clone(),
            graph: Arc::clone(&graph),
        });
        Ok(graph)
    }

    /// Samples ambiguous subgraphs in parallel (one seeded task per sample) and
    /// deduplicates them by detector set.
    fn sample_stage(&self, graph: &DecodingGraph, iteration: usize) -> Vec<AmbiguousSubgraph> {
        let stream = self
            .runtime
            .seed_stream()
            .substream(stage::SAMPLE)
            .substream(iteration as u64);
        let mut found: Vec<AmbiguousSubgraph> = self
            .runtime
            .par_seeded(self.config.samples_per_iteration, &stream, |_task, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                find_ambiguous_subgraph(graph, &mut rng, self.config.max_subgraph_steps)
            })
            .into_iter()
            .flatten()
            .collect();
        // Deduplicate by detector set and keep the smallest subgraphs first (they give
        // the most targeted changes).
        found.sort_by_key(|s| (s.errors.len(), s.detectors.clone()));
        found.dedup_by(|a, b| a.detectors == b.detectors);
        found.truncate(self.config.max_subgraphs_per_iteration);
        found
    }

    /// Solves each subgraph's minimum-weight logical error in parallel
    /// (MaxSAT is a pure function of the subgraph, so order-preserving
    /// `par_map` keeps the stage deterministic).
    fn solve_stage(
        &self,
        subgraphs: Vec<AmbiguousSubgraph>,
    ) -> Vec<(AmbiguousSubgraph, MinWeightSolution)> {
        let solutions = self.runtime.par_map(&subgraphs, |sub| {
            min_weight_logical_error(sub, self.config.maxsat_budget)
        });
        subgraphs
            .into_iter()
            .zip(solutions)
            .filter_map(|(sub, solution)| solution.map(|s| (sub, s)))
            .collect()
    }

    /// Enumerates candidate changes for each solved subgraph with a
    /// deterministic per-iteration RNG stream.
    #[allow(clippy::type_complexity)]
    fn enumerate_stage(
        &self,
        graph: &DecodingGraph,
        schedule: &ScheduleSpec,
        solved: Vec<(AmbiguousSubgraph, MinWeightSolution)>,
        iteration: usize,
    ) -> (
        Vec<(AmbiguousSubgraph, MinWeightSolution, Vec<CandidateChange>)>,
        usize,
    ) {
        let seed = self
            .runtime
            .seed_stream()
            .substream(stage::ENUMERATE)
            .seed_for(iteration as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::with_capacity(solved.len());
        let mut candidates_enumerated = 0usize;
        for (sub, solution) in solved {
            let candidates = enumerate_candidates(graph, &self.code, schedule, &solution, &mut rng);
            candidates_enumerated += candidates.len();
            tasks.push((sub, solution, candidates));
        }
        (tasks, candidates_enumerated)
    }

    /// Verifies every candidate change as a bounded parallel task and groups
    /// the survivors by originating subgraph, preserving candidate order.
    ///
    /// The base schedule's incremental evaluator — commutation parity
    /// counters plus the layered CNOT dependency DAG — is built once per
    /// stage and shared by every verification task, which clones it and
    /// applies its candidate's primitive operations in O(pairs touched +
    /// cone) instead of re-validating the mutated schedule from scratch.
    fn verify_stage(
        &self,
        graph: &DecodingGraph,
        schedule: &ScheduleSpec,
        basis: MemoryBasis,
        tasks: &[(AmbiguousSubgraph, MinWeightSolution, Vec<CandidateChange>)],
    ) -> Vec<Vec<VerifiedChange>> {
        let work: Vec<(
            usize,
            &AmbiguousSubgraph,
            &MinWeightSolution,
            &CandidateChange,
        )> = tasks
            .iter()
            .enumerate()
            .flat_map(|(group, (sub, solution, candidates))| {
                candidates
                    .iter()
                    .map(move |candidate| (group, sub, solution, candidate))
            })
            .collect();
        let noise = self.config.noise_model();
        let base_eval = prophunt_circuit::ScheduleEval::new(schedule.clone())
            .expect("schedule stays valid across iterations");
        let results = self
            .runtime
            .par_map(&work, |&(group, sub, solution, candidate)| {
                verify_candidate(
                    &self.code,
                    &base_eval,
                    candidate,
                    sub,
                    solution,
                    graph,
                    self.config.rounds,
                    basis,
                    &noise,
                )
                .map(|verified| (group, verified))
            });
        let mut verified_per_subgraph: Vec<Vec<VerifiedChange>> = vec![Vec::new(); tasks.len()];
        for (group, verified) in results.into_iter().flatten() {
            verified_per_subgraph[group].push(verified);
        }
        verified_per_subgraph
    }

    /// Estimates the effective code distance of `schedule` by sampling ambiguous
    /// subgraphs in both memory bases and taking the minimum logical-error weight found.
    ///
    /// Shares the per-basis decoding-graph cache with [`PropHunt::try_optimize`], so
    /// estimating the distance of a schedule the optimizer just analysed does not
    /// rebuild its detector error model.
    ///
    /// Returns `None` if no ambiguous subgraph was found (which, for a complete decoding
    /// graph, only happens when the sampling budget is too small).
    pub fn estimate_effective_distance(
        &self,
        schedule: &ScheduleSpec,
        samples: usize,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, basis) in [MemoryBasis::Z, MemoryBasis::X].into_iter().enumerate() {
            let graph = self.build_graph(schedule, basis).ok()?;
            let stream = self
                .runtime
                .seed_stream()
                .substream(stage::DISTANCE)
                .substream(i as u64);
            let weights = self.runtime.par_seeded(samples, &stream, |_task, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                find_ambiguous_subgraph(&graph, &mut rng, self.config.max_subgraph_steps)
                    .and_then(|sub| min_weight_logical_error(&sub, self.config.maxsat_budget))
                    .map(|solution| solution.weight)
            });
            for weight in weights.into_iter().flatten() {
                best = Some(best.map_or(weight, |b| b.min(weight)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    #[test]
    fn quick_config_is_small() {
        let config = PropHuntConfig::quick(3);
        assert!(config.iterations <= 5);
        assert!(config.samples_per_iteration <= 100);
        let paper = PropHuntConfig::paper_like(5);
        assert_eq!(paper.iterations, 25);
        assert_eq!(paper.samples_per_iteration, 500);
    }

    #[test]
    fn with_seed_updates_the_runtime_seed() {
        let config = PropHuntConfig::quick(3).with_seed(99);
        assert_eq!(config.seed(), 99);
        assert_eq!(config.runtime.seed, 99);
        let config = config.with_runtime(RuntimeConfig::new(2, 8, 7));
        assert_eq!(config.runtime.threads, 2);
        assert_eq!(config.seed(), 7);
    }

    #[test]
    fn noise_override_replaces_the_uniform_depolarizing_default() {
        let config = PropHuntConfig::quick(3);
        assert_eq!(
            config.noise_model(),
            NoiseModel::uniform_depolarizing(config.physical_error_rate)
        );
        let si = NoiseModel::si1000(2e-3);
        let config = config.with_noise(si);
        assert_eq!(config.noise_model(), si);
    }

    #[test]
    fn optimizing_the_poor_d3_schedule_restores_effective_distance() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let poor = ScheduleSpec::surface_poor(&code, &layout);
        let config = PropHuntConfig::quick(3).with_seed(11);
        let prophunt = PropHunt::new(code.clone(), config);
        // The poor schedule has d_eff = 2.
        let before = prophunt.estimate_effective_distance(&poor, 15).unwrap();
        assert_eq!(
            before, 2,
            "poor schedule should expose weight-2 logical errors"
        );
        let result = prophunt.try_optimize(poor).unwrap();
        assert!(
            result.total_changes_applied() >= 1,
            "optimizer should change the circuit"
        );
        result.final_schedule.validate(prophunt.code()).unwrap();
        let after = prophunt
            .estimate_effective_distance(&result.final_schedule, 15)
            .unwrap();
        assert!(
            after > before,
            "effective distance should improve from {before}, got {after}"
        );
    }

    #[test]
    fn optimizing_an_already_good_schedule_keeps_it_valid() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let good = ScheduleSpec::surface_hand_designed(&code, &layout);
        let config = PropHuntConfig {
            iterations: 2,
            samples_per_iteration: 20,
            ..PropHuntConfig::quick(3)
        };
        let prophunt = PropHunt::new(code, config);
        let result = prophunt.try_optimize(good.clone()).unwrap();
        result.final_schedule.validate(prophunt.code()).unwrap();
        // The hand-designed schedule already has d_eff = d; whatever the optimizer does,
        // it must not make the minimum observed logical weight smaller than 3.
        let d_eff = prophunt
            .estimate_effective_distance(&result.final_schedule, 10)
            .unwrap();
        assert!(
            d_eff >= 3,
            "optimization must not reduce d_eff below 3, got {d_eff}"
        );
    }

    #[test]
    fn graph_cache_is_shared_between_optimize_and_distance_estimation() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let poor = ScheduleSpec::surface_poor(&code, &layout);
        let prophunt = PropHunt::new(code, PropHuntConfig::quick(3).with_seed(11));
        let first = prophunt.build_graph(&poor, MemoryBasis::Z).unwrap();
        let second = prophunt.build_graph(&poor, MemoryBasis::Z).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged schedule must hit the cache"
        );
        // A different schedule for the same basis evicts the entry.
        let (code2, layout2) = rotated_surface_code_with_layout(3);
        let hand = ScheduleSpec::surface_hand_designed(&code2, &layout2);
        let third = prophunt.build_graph(&hand, MemoryBasis::Z).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
    }
}
