//! The decoder registry: decoders selectable by name, extensible with custom
//! constructors.

use crate::error::ApiError;
use prophunt_circuit::DetectorErrorModel;
use prophunt_decoders::{BpOsdDecoder, Decoder, UnionFindDecoder};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A constructor building a decoder instance for a concrete detector error model.
pub type DecoderBuilder = Arc<dyn Fn(&DetectorErrorModel) -> Arc<dyn Decoder> + Send + Sync>;

/// Maps decoder names to constructors.
///
/// The default registry knows the two built-in decoders:
///
/// * `bposd` — normalized min-sum belief propagation with OSD-0 post-processing
///   (works on every detector error model).
/// * `unionfind` — cluster-growth union-find (fast on graph-like models).
///
/// [`DecoderRegistry::register`] plugs in additional decoders without touching the
/// session or job layers — any `Fn(&DetectorErrorModel) -> Arc<dyn Decoder>`.
#[derive(Clone)]
pub struct DecoderRegistry {
    builders: BTreeMap<String, DecoderBuilder>,
}

impl std::fmt::Debug for DecoderRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecoderRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl DecoderRegistry {
    /// An empty registry (no decoders at all; useful for fully custom setups).
    pub fn empty() -> DecoderRegistry {
        DecoderRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// The registry with the built-in decoders (`bposd`, `unionfind`).
    pub fn with_defaults() -> DecoderRegistry {
        let mut registry = DecoderRegistry::empty();
        registry.register("bposd", |dem| Arc::new(BpOsdDecoder::new(dem)));
        registry.register("unionfind", |dem| Arc::new(UnionFindDecoder::new(dem)));
        registry
    }

    /// Registers (or replaces) a decoder constructor under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        builder: impl Fn(&DetectorErrorModel) -> Arc<dyn Decoder> + Send + Sync + 'static,
    ) {
        self.builders.insert(name.into(), Arc::new(builder));
    }

    /// Returns the registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Returns whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    /// Builds a decoder instance for `dem`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnknownDecoder`] when `name` is not registered.
    pub fn build(
        &self,
        name: &str,
        dem: &DetectorErrorModel,
    ) -> Result<Arc<dyn Decoder>, ApiError> {
        let builder = self
            .builders
            .get(name)
            .ok_or_else(|| ApiError::UnknownDecoder {
                name: name.to_string(),
                known: self.names(),
            })?;
        Ok(builder(dem))
    }
}

impl Default for DecoderRegistry {
    fn default() -> Self {
        DecoderRegistry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_gf2::BitVec;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn d3_dem() -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 2, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3))
    }

    #[test]
    fn default_registry_builds_both_builtin_decoders() {
        let registry = DecoderRegistry::with_defaults();
        assert_eq!(registry.names(), vec!["bposd", "unionfind"]);
        let dem = d3_dem();
        for name in ["bposd", "unionfind"] {
            let decoder = registry.build(name, &dem).unwrap();
            assert_eq!(decoder.num_detectors(), dem.num_detectors());
            assert_eq!(decoder.num_observables(), dem.num_observables());
        }
    }

    #[test]
    fn unknown_names_report_the_known_set() {
        let registry = DecoderRegistry::with_defaults();
        let Err(err) = registry.build("pymatching", &d3_dem()) else {
            panic!("expected an error");
        };
        let ApiError::UnknownDecoder { name, known } = err else {
            panic!("expected UnknownDecoder");
        };
        assert_eq!(name, "pymatching");
        assert_eq!(known, vec!["bposd", "unionfind"]);
    }

    #[test]
    fn custom_decoders_can_be_registered() {
        struct AlwaysZero {
            detectors: usize,
            observables: usize,
        }
        impl Decoder for AlwaysZero {
            fn decode(&self, _detectors: &BitVec) -> BitVec {
                BitVec::zeros(self.observables)
            }
            fn num_detectors(&self) -> usize {
                self.detectors
            }
            fn num_observables(&self) -> usize {
                self.observables
            }
        }
        let mut registry = DecoderRegistry::with_defaults();
        registry.register("zero", |dem| {
            Arc::new(AlwaysZero {
                detectors: dem.num_detectors(),
                observables: dem.num_observables(),
            })
        });
        assert!(registry.contains("zero"));
        let dem = d3_dem();
        let decoder = registry.build("zero", &dem).unwrap();
        assert_eq!(
            decoder.decode(&BitVec::zeros(dem.num_detectors())),
            BitVec::zeros(dem.num_observables())
        );
    }
}
