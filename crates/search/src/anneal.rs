//! Simulated annealing over commutation-preserving schedule mutations.

use crate::moves::MoveSet;
use crate::strategy::{Incumbent, Proposal, SearchContext, Strategy};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_qec::CssCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated annealing over the shared move neighborhood (reorders, same-kind
/// swaps, paired cross-kind swaps, stabilizer promotion — see the `moves`
/// module).
///
/// Each round evaluates `proposals_per_round` seeded random moves from the
/// current schedule; non-worsening moves are always taken, worsening moves
/// with probability `exp(-Δdepth / T)`, and the temperature decays by the
/// configured `cooling` factor per round — the classic schedule-free
/// exploration arm of the portfolio, after Sato & Suzuki's observation that
/// permuted-ordering restarts escape the minima greedy descent gets stuck in.
///
/// Incumbent policy: re-anneals *from* the incumbent when the incumbent is
/// strictly shallower than the instance's own best — exploration continues,
/// but never from a point the portfolio has already beaten.
#[derive(Debug)]
pub struct Annealing {
    code: CssCode,
    moves: MoveSet,
    current: ScheduleSpec,
    current_depth: usize,
    best: Proposal,
    temperature: f64,
    cooling: f64,
    proposals_per_round: usize,
}

impl Annealing {
    /// Creates an instance annealing from the context's initial schedule.
    pub fn new(ctx: &SearchContext) -> Annealing {
        let depth = ctx
            .initial
            .depth()
            .expect("search context schedules are validated");
        Annealing {
            code: ctx.code.clone(),
            moves: MoveSet::new(&ctx.initial),
            current: ctx.initial.clone(),
            current_depth: depth,
            best: Proposal {
                schedule: ctx.initial.clone(),
                depth,
            },
            temperature: ctx.params.initial_temperature,
            cooling: ctx.params.cooling,
            proposals_per_round: ctx.params.proposals_per_round,
        }
    }
}

impl Strategy for Annealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn propose(&mut self, _round: usize, seed: u64) -> Proposal {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..self.proposals_per_round {
            let Some((next, depth)) = self.moves.propose(&self.code, &self.current, &mut rng)
            else {
                continue;
            };
            let accept = depth <= self.current_depth || {
                let delta = (depth - self.current_depth) as f64;
                rng.gen_range(0.0..1.0) < (-delta / self.temperature.max(1e-6)).exp()
            };
            if accept {
                self.current = next;
                self.current_depth = depth;
                if depth < self.best.depth {
                    self.best = Proposal {
                        schedule: self.current.clone(),
                        depth,
                    };
                }
            }
        }
        self.temperature *= self.cooling;
        self.best.clone()
    }

    fn observe(&mut self, incumbent: &Incumbent, accepted: bool) {
        if !accepted && incumbent.depth < self.best.depth {
            self.current = incumbent.schedule.clone();
            self.current_depth = incumbent.depth;
            self.best = Proposal {
                schedule: incumbent.schedule.clone(),
                depth: incumbent.depth,
            };
        }
    }
}
