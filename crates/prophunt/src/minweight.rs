//! Minimum-weight logical-error solving via MaxSAT (paper Section 5.2 and Table 2).

use crate::ambiguity::{AmbiguousSubgraph, DecodingGraph};
use prophunt_gf2::BitMatrix;
use prophunt_maxsat::{CnfBuilder, MaxSatOutcome, MaxSatSolver, MaxSatStats};
use std::time::Duration;

/// Which formulation produced a model: the tractable per-subgraph one or the global
/// whole-circuit one (compared in the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Restricted to an ambiguous subgraph.
    Subgraph,
    /// The entire circuit-level decoding graph.
    Global,
}

/// A minimum-weight logical error found by the MaxSAT solver.
#[derive(Debug, Clone)]
pub struct MinWeightSolution {
    /// Global error-mechanism indices forming the logical error.
    pub errors: Vec<usize>,
    /// The weight (number of mechanisms) of the solution.
    pub weight: usize,
    /// Whether the solver proved optimality or hit its time budget with an incumbent.
    pub optimal: bool,
    /// Which formulation was solved.
    pub kind: ModelKind,
    /// Solver statistics (model size and wall-clock time, as in Table 2).
    pub stats: MaxSatStats,
}

/// Builds the MaxSAT model for a set of detectors (rows of `h`) and error columns: hard
/// XOR constraints forcing every syndrome to zero, a hard constraint that at least one
/// logical observable is flipped, and unit soft clauses preferring every error off.
fn build_model(h: &BitMatrix, l: &BitMatrix) -> (MaxSatSolver, Vec<prophunt_maxsat::Var>) {
    let num_errors = h.num_cols();
    let mut builder = CnfBuilder::new();
    let error_vars = builder.new_vars(num_errors);
    // Syndrome parity constraints: every detector's incident errors XOR to false.
    for row in h.rows_iter() {
        let lits: Vec<_> = row.ones().map(|e| error_vars[e].positive()).collect();
        if !lits.is_empty() {
            builder.add_xor_constraint(&lits, false);
        }
    }
    // Logical observables: at least one flips.
    let mut observable_lits = Vec::new();
    for row in l.rows_iter() {
        let lits: Vec<_> = row.ones().map(|e| error_vars[e].positive()).collect();
        if lits.is_empty() {
            continue;
        }
        observable_lits.push(builder.xor_to_lit(&lits));
    }
    builder.add_clause(&observable_lits);
    let mut solver = MaxSatSolver::new(builder);
    for v in &error_vars {
        solver.add_soft_false(*v);
    }
    (solver, error_vars)
}

fn extract_solution(
    outcome: &MaxSatOutcome,
    error_vars: &[prophunt_maxsat::Var],
    index_map: &[usize],
    kind: ModelKind,
    stats: MaxSatStats,
) -> Option<MinWeightSolution> {
    let model = outcome.model()?;
    let errors: Vec<usize> = error_vars
        .iter()
        .enumerate()
        .filter(|&(_i, v)| model[v.index()])
        .map(|(i, _v)| index_map[i])
        .collect();
    Some(MinWeightSolution {
        weight: errors.len(),
        errors,
        optimal: outcome.is_optimal(),
        kind,
        stats,
    })
}

/// Solves for a minimum-weight logical error inside an ambiguous subgraph.
///
/// Returns `None` only if the solver times out before finding any model (which cannot
/// happen for genuinely ambiguous subgraphs given a reasonable budget).
pub fn min_weight_logical_error(
    subgraph: &AmbiguousSubgraph,
    budget: Duration,
) -> Option<MinWeightSolution> {
    let (mut solver, vars) = build_model(&subgraph.h_sub, &subgraph.l_sub);
    let outcome = solver.solve(budget);
    let stats = solver.last_stats().expect("solve records stats");
    extract_solution(
        &outcome,
        &vars,
        &subgraph.errors,
        ModelKind::Subgraph,
        stats,
    )
}

/// Solves (or attempts to solve) the global formulation over the entire decoding graph,
/// as compared against the subgraph formulation in the paper's Table 2.
///
/// Returns the solution if one was found within the budget together with the model-size
/// statistics; for moderate codes the solver is expected to time out, in which case the
/// statistics are still returned.
pub fn global_min_weight_logical_error(
    graph: &DecodingGraph,
    budget: Duration,
) -> (Option<MinWeightSolution>, MaxSatStats) {
    let all_detectors: Vec<usize> = (0..graph.num_detectors()).collect();
    let all_errors: Vec<usize> = (0..graph.num_errors()).collect();
    let (h, l) = graph.matrices_for(&all_detectors, &all_errors);
    let (mut solver, vars) = build_model(&h, &l);
    let outcome = solver.solve(budget);
    let stats = solver.last_stats().expect("solve records stats");
    let solution = extract_solution(&outcome, &vars, &all_errors, ModelKind::Global, stats);
    (solution, stats)
}

/// Returns the model-size statistics (variables, hard clauses, soft clauses) of the
/// subgraph formulation without solving it — used by the Table 2 harness.
pub fn subgraph_model_size(subgraph: &AmbiguousSubgraph) -> (usize, usize, usize) {
    let (solver, _) = build_model(&subgraph.h_sub, &subgraph.l_sub);
    let _ = &solver;
    model_size_of(&subgraph.h_sub, &subgraph.l_sub)
}

/// Returns the model-size statistics of the global formulation without solving it.
pub fn global_model_size(graph: &DecodingGraph) -> (usize, usize, usize) {
    let all_detectors: Vec<usize> = (0..graph.num_detectors()).collect();
    let all_errors: Vec<usize> = (0..graph.num_errors()).collect();
    let (h, l) = graph.matrices_for(&all_detectors, &all_errors);
    model_size_of(&h, &l)
}

fn model_size_of(h: &BitMatrix, l: &BitMatrix) -> (usize, usize, usize) {
    let mut builder = CnfBuilder::new();
    let error_vars = builder.new_vars(h.num_cols());
    for row in h.rows_iter() {
        let lits: Vec<_> = row.ones().map(|e| error_vars[e].positive()).collect();
        if !lits.is_empty() {
            builder.add_xor_constraint(&lits, false);
        }
    }
    let mut observable_lits = Vec::new();
    for row in l.rows_iter() {
        let lits: Vec<_> = row.ones().map(|e| error_vars[e].positive()).collect();
        if !lits.is_empty() {
            observable_lits.push(builder.xor_to_lit(&lits));
        }
    }
    builder.add_clause(&observable_lits);
    (builder.num_vars(), builder.num_clauses(), h.num_cols())
}

/// Verifies that a claimed solution really is an undetected logical error of the graph:
/// its mechanisms flip no detector but flip at least one observable.
pub fn is_undetected_logical_error(graph: &DecodingGraph, errors: &[usize]) -> bool {
    let mut det = vec![false; graph.num_detectors()];
    let mut obs = vec![false; graph.dem().num_observables()];
    for &e in errors {
        let err = graph.dem().error(e);
        for &d in &err.detectors {
            det[d] = !det[d];
        }
        for &o in &err.observables {
            obs[o] = !obs[o];
        }
    }
    det.iter().all(|&x| !x) && obs.iter().any(|&x| x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambiguity::find_ambiguous_subgraph;
    use prophunt_circuit::{MemoryBasis, ScheduleSpec};
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_for(d: usize, poor: bool) -> DecodingGraph {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = if poor {
            ScheduleSpec::surface_poor(&code, &layout)
        } else {
            ScheduleSpec::surface_hand_designed(&code, &layout)
        };
        DecodingGraph::build(&code, &schedule, d, MemoryBasis::Z, 1e-3).unwrap()
    }

    #[test]
    fn subgraph_solutions_are_genuine_logical_errors() {
        let graph = graph_for(3, true);
        let mut rng = StdRng::seed_from_u64(3);
        let mut solved = 0;
        for _ in 0..10 {
            let Some(sub) = find_ambiguous_subgraph(&graph, &mut rng, 60) else {
                continue;
            };
            let solution = min_weight_logical_error(&sub, Duration::from_secs(20))
                .expect("ambiguous subgraphs always have a logical error");
            assert!(solution.weight >= 1);
            assert!(solution.optimal);
            assert_eq!(solution.kind, ModelKind::Subgraph);
            // The union of the two ambiguous explanations is undetected *within the
            // subgraph*: check it flips no subgraph detector but flips an observable.
            let mut det = vec![false; sub.detectors.len()];
            let mut obs_flipped = false;
            for &e in &solution.errors {
                let err = graph.dem().error(e);
                for &d in &err.detectors {
                    let pos = sub
                        .detectors
                        .iter()
                        .position(|&x| x == d)
                        .expect("in subgraph");
                    det[pos] = !det[pos];
                }
                obs_flipped ^= !err.observables.is_empty();
            }
            assert!(
                det.iter().all(|&x| !x),
                "solution must be undetected in the subgraph"
            );
            assert!(
                obs_flipped,
                "solution must flip an observable an odd number of times"
            );
            solved += 1;
        }
        assert!(solved > 0);
    }

    #[test]
    fn poor_schedule_has_lower_min_weight_than_good_schedule() {
        // The poor d=3 schedule has reduced effective distance; the hand-designed one
        // does not. Sampling min-weight logical errors should reflect that ordering.
        let mut rng = StdRng::seed_from_u64(5);
        let min_weight = |graph: &DecodingGraph, rng: &mut StdRng| -> usize {
            let mut best = usize::MAX;
            for _ in 0..12 {
                if let Some(sub) = find_ambiguous_subgraph(graph, rng, 60) {
                    if let Some(sol) = min_weight_logical_error(&sub, Duration::from_secs(10)) {
                        best = best.min(sol.weight);
                    }
                }
            }
            best
        };
        let poor = min_weight(&graph_for(3, true), &mut rng);
        let good = min_weight(&graph_for(3, false), &mut rng);
        assert!(poor <= good, "poor schedule weight {poor} vs good {good}");
        assert!(
            poor <= 2,
            "poor schedule should expose weight-2 logical errors, got {poor}"
        );
        assert!(
            good >= 2,
            "hand-designed schedule should not have weight-1 logical errors"
        );
    }

    #[test]
    fn global_model_is_much_larger_than_subgraph_model() {
        let graph = graph_for(3, true);
        let mut rng = StdRng::seed_from_u64(9);
        let sub = (0..20)
            .find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 60))
            .expect("subgraph found");
        let (sub_vars, sub_clauses, sub_soft) = subgraph_model_size(&sub);
        let (glob_vars, glob_clauses, glob_soft) = global_model_size(&graph);
        assert!(glob_vars > 5 * sub_vars, "{glob_vars} vs {sub_vars}");
        assert!(
            glob_clauses > 5 * sub_clauses,
            "{glob_clauses} vs {sub_clauses}"
        );
        assert!(glob_soft > 5 * sub_soft);
    }

    #[test]
    fn solution_weight_matches_error_count_and_stats_are_recorded() {
        let graph = graph_for(3, true);
        let mut rng = StdRng::seed_from_u64(13);
        let sub = (0..20)
            .find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 60))
            .expect("subgraph found");
        let sol = min_weight_logical_error(&sub, Duration::from_secs(10)).unwrap();
        assert_eq!(sol.weight, sol.errors.len());
        assert!(sol.stats.num_soft_clauses >= sol.weight);
        assert!(sol.stats.num_variables > 0);
        assert!(sol.stats.iterations >= 1);
    }
}
