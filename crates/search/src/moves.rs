//! The commutation-aware move universe over [`ScheduleSpec`]s.
//!
//! The local-search strategies (annealing, beam, hill climbing) all explore
//! the same neighborhood, built from the two primitive schedule changes the
//! paper manipulates (Section 5.3) and the structure of the commutation
//! condition. Moves are the typed [`Move`] values of the incremental
//! evaluation engine (`prophunt_circuit::schedule::eval`):
//!
//! * **Reorder** — move one data qubit within a stabilizer's interaction
//!   order. Touches only the per-stabilizer CNOT chain, never the relative
//!   orders, so commutation is preserved by construction; only acyclicity can
//!   fail.
//! * **Same-kind swap** — flip the relative order of two stabilizers of the
//!   *same* kind on a shared qubit. Commutation only constrains X/Z pairs, so
//!   these flips are always commutation-safe.
//! * **Paired cross-kind swap** — flip an X/Z pair's relative order on
//!   exactly **two** of their shared qubits. A single flip changes the
//!   "X first" count's parity and always breaks commutation; flipping two at
//!   once preserves the parity, so the move stays inside the commuting
//!   subspace (the same observation behind the optimizer's rescheduling
//!   candidates).
//! * **Stabilizer promotion** — a macro move: pick one stabilizer and flip
//!   every cross-kind pair involving it (on *all* of the pair's shared
//!   qubits) so the picked stabilizer acts first — or acts last, when it
//!   already leads everywhere (the toggle means a promotion draw never
//!   dead-ends). Single swaps diffuse across the huge equal-depth plateau of
//!   a coloration schedule (all X checks before all Z checks) too slowly to
//!   ever restructure it; promotion interleaves a whole stabilizer in one
//!   step, which is exactly the structure hand-designed schedules use to
//!   reach minimal depth.
//!
//! [`MoveSet::draw`] only *selects* a move; strategies evaluate it with
//! [`ScheduleEval::try_apply`], which validates (parity counters + cone
//! relayering) in O(pairs touched + cone) and restores the previous state on
//! rejection — no per-proposal schedule clone, no full commutation rescan.

use prophunt_circuit::schedule::eval::Move;
use prophunt_circuit::schedule::{ScheduleSpec, StabilizerId};
use rand::Rng;

/// The immutable move universe of one search problem.
///
/// Mutations never change which stabilizers share which qubits, so the move
/// universe is computed once from the starting schedule and shared by every
/// schedule derived from it.
#[derive(Debug, Clone)]
pub struct MoveSet {
    /// Stabilizers whose interaction order has at least two qubits.
    reorderable: Vec<StabilizerId>,
    /// `(qubit, a, b)` entries whose stabilizers are of the same kind.
    same_kind: Vec<(usize, StabilizerId, StabilizerId)>,
    /// X/Z stabilizer pairs with their (>= 2) shared qubits.
    cross_pairs: Vec<(StabilizerId, StabilizerId, Vec<usize>)>,
    /// Stabilizers involved in at least one cross pair — the only ones a
    /// promotion draw can pick, precomputed so class-3 draws never dead-end
    /// on a stabilizer with nothing to flip.
    promotable: Vec<StabilizerId>,
}

impl MoveSet {
    /// Builds the move universe of `schedule` (and of every schedule derived
    /// from it by these moves).
    pub fn new(schedule: &ScheduleSpec) -> MoveSet {
        let reorderable = (0..schedule.num_stabilizers())
            .filter(|&s| schedule.order(s).len() >= 2)
            .collect();
        let mut same_kind = Vec::new();
        let mut cross: Vec<(StabilizerId, StabilizerId, Vec<usize>)> = Vec::new();
        // `relative_entries` iterates in deterministic (qubit, a, b) order, so
        // the move universe — and therefore every seeded random draw over it —
        // is a pure function of the schedule.
        for (q, a, b, _) in schedule.relative_entries() {
            if schedule.kind_of(a) == schedule.kind_of(b) {
                same_kind.push((q, a, b));
            } else {
                match cross.iter_mut().find(|(x, z, _)| *x == a && *z == b) {
                    Some((_, _, shared)) => shared.push(q),
                    None => cross.push((a, b, vec![q])),
                }
            }
        }
        let cross_pairs: Vec<(StabilizerId, StabilizerId, Vec<usize>)> = cross
            .into_iter()
            .filter(|(_, _, shared)| shared.len() >= 2)
            .collect();
        let mut promotable: Vec<StabilizerId> =
            cross_pairs.iter().flat_map(|&(x, z, _)| [x, z]).collect();
        promotable.sort_unstable();
        promotable.dedup();
        MoveSet {
            reorderable,
            same_kind,
            cross_pairs,
            promotable,
        }
    }

    /// Number of promotable stabilizers (those with at least one cross pair).
    pub fn num_promotable(&self) -> usize {
        self.promotable.len()
    }

    /// Draws one random typed move against the current `schedule` state, or
    /// `None` when the universe is empty. The draw only selects; evaluation
    /// (and validity checking) happens in `ScheduleEval::try_apply`.
    pub fn draw<R: Rng>(&self, schedule: &ScheduleSpec, rng: &mut R) -> Option<Move> {
        let mut classes: Vec<u8> = Vec::with_capacity(4);
        if !self.reorderable.is_empty() {
            classes.push(0);
        }
        if !self.same_kind.is_empty() {
            classes.push(1);
        }
        if !self.cross_pairs.is_empty() {
            classes.push(2);
            classes.push(3);
        }
        let class = *classes.get(rng.gen_range(0..classes.len().max(1)))?;
        Some(match class {
            0 => {
                let s = self.reorderable[rng.gen_range(0..self.reorderable.len())];
                let order = schedule.order(s);
                let from = rng.gen_range(0..order.len());
                let mut to = rng.gen_range(0..order.len() - 1);
                if to >= from {
                    to += 1;
                }
                Move::Reorder {
                    stabilizer: s,
                    move_qubit: order[from],
                    anchor_qubit: order[to],
                }
            }
            1 => {
                let (q, a, b) = self.same_kind[rng.gen_range(0..self.same_kind.len())];
                Move::SameKindSwap { qubit: q, a, b }
            }
            2 => {
                let (x, z, shared) = &self.cross_pairs[rng.gen_range(0..self.cross_pairs.len())];
                let i = rng.gen_range(0..shared.len());
                let mut j = rng.gen_range(0..shared.len() - 1);
                if j >= i {
                    j += 1;
                }
                Move::PairedCrossSwap {
                    x: *x,
                    z: *z,
                    qubit_a: shared[i],
                    qubit_b: shared[j],
                }
            }
            _ => Move::Promote {
                stabilizer: self.promotable[rng.gen_range(0..self.promotable.len())],
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::eval::ScheduleEval;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drawn_moves_keep_the_eval_valid_for_the_code() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let moves = MoveSet::new(&schedule);
        let mut eval = ScheduleEval::new(schedule).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut accepted = 0;
        for _ in 0..200 {
            let Some(mv) = moves.draw(eval.spec(), &mut rng) else {
                continue;
            };
            if let Some(depth) = eval.try_apply(&mv) {
                eval.spec().validate_for_code(&code).unwrap();
                assert_eq!(eval.spec().depth().unwrap(), depth);
                accepted += 1;
            }
        }
        assert!(accepted > 20, "move generator too restrictive: {accepted}");
    }

    #[test]
    fn move_universe_covers_all_classes_on_the_surface_code() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let moves = MoveSet::new(&schedule);
        assert!(!moves.reorderable.is_empty());
        assert!(
            !moves.cross_pairs.is_empty(),
            "surface plaquettes share 2 qubits with their X/Z neighbors"
        );
        for (_, _, shared) in &moves.cross_pairs {
            assert!(shared.len() >= 2);
        }
        // Every stabilizer of a cross pair is promotable, and only those.
        assert_eq!(
            moves.promotable.len(),
            {
                let mut stabs: Vec<_> = moves
                    .cross_pairs
                    .iter()
                    .flat_map(|&(x, z, _)| [x, z])
                    .collect();
                stabs.sort_unstable();
                stabs.dedup();
                stabs.len()
            },
            "promotable set must be exactly the cross-pair stabilizers"
        );
    }

    #[test]
    fn promotion_draws_never_dead_end() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let moves = MoveSet::new(&schedule);
        let eval = ScheduleEval::new(schedule).unwrap();
        // Every promotable stabilizer resolves to a non-empty op list, even
        // in the coloration schedule where X checks already lead everywhere.
        for &s in &moves.promotable {
            assert!(
                !eval.resolve(&Move::Promote { stabilizer: s }).is_empty(),
                "promotion of stabilizer {s} resolved to a no-op"
            );
        }
    }
}
