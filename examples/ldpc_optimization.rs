//! Optimizes the syndrome-measurement circuit of a small quantum-LDPC code (a
//! generalized-bicycle code standing in for the paper's LP instances) and reports the
//! logical error rate before and after — comparing both built-in decoders through
//! one cached `Session`.
//!
//! Run with `cargo run --release --example ldpc_optimization`.

use prophunt_suite::api::{
    BasisSelection, ExperimentSpec, LerJob, OptimizeJob, ScheduleSource, Session, ShotBudget,
};
use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::qec::product::generalized_bicycle;
use prophunt_suite::runtime::RuntimeConfig;

fn main() {
    // A [[18, 2]] generalized-bicycle (lifted-product) code with weight-4 stabilizers.
    let code = generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2");
    println!(
        "code: {code} (max stabilizer weight {})",
        code.max_stabilizer_weight()
    );

    let mut session = Session::new(RuntimeConfig::new(4, 64, 7));
    let p = 3e-3;
    let shots = 1_500;
    let spec = ExperimentSpec::builder()
        .code(code.clone())
        .schedule(ScheduleSource::Explicit(ScheduleSpec::coloration(&code)))
        .noise_str(&format!("depolarizing:{p}"))
        .expect("valid noise spec")
        .rounds(2)
        .basis(BasisSelection::Both)
        .build()
        .expect("valid experiment spec");

    let ler = |session: &mut Session, spec: &ExperimentSpec, label: &str| -> f64 {
        let outcome = session
            .run_ler_quiet(&LerJob::new(spec.clone()).with_budget(ShotBudget::fixed(shots)))
            .expect("estimation job runs");
        println!(
            "{label} LER at p = {p}: {:.4} ({} decoder, {:.0} shots/s)",
            outcome.combined.rate(),
            spec.decoder(),
            outcome.shots_per_sec()
        );
        outcome.combined.rate()
    };
    let before = ler(&mut session, &spec, "coloration circuit");
    // The union-find decoder reuses the session's cached detector error models.
    ler(
        &mut session,
        &spec.with_decoder("unionfind"),
        "coloration circuit",
    );

    let job = OptimizeJob::new(spec.clone())
        .with_iterations(3)
        .with_samples(30);
    let outcome = session.run_optimize_quiet(&job).expect("optimization runs");
    let result = &outcome.result;
    println!(
        "PropHunt applied {} changes; depth {} -> {} ({})",
        result.total_changes_applied(),
        result.initial_schedule.depth().unwrap(),
        result.final_depth(),
        outcome.stop.as_str()
    );

    let optimized = spec
        .with_schedule(result.final_schedule.clone())
        .expect("optimized schedule stays valid");
    let after = ler(&mut session, &optimized, "optimized circuit");
    if after < before {
        println!("improvement factor: {:.2}x", before / after.max(1e-6));
    } else {
        println!("no improvement at this sample size (try more iterations/shots)");
    }
}
