//! Umbrella crate for the PropHunt reproduction suite.
//!
//! This crate re-exports the public API of every member crate so downstream users (and
//! the examples and integration tests in this repository) can depend on a single crate:
//!
//! * [`gf2`] — GF(2) linear algebra ([`prophunt_gf2`]).
//! * [`qec`] — CSS codes and constructions ([`prophunt_qec`]).
//! * [`circuit`] — SM circuits, schedules, noise and detector error models
//!   ([`prophunt_circuit`]).
//! * [`maxsat`] — CNF, CDCL SAT and MaxSAT ([`prophunt_maxsat`]).
//! * [`decoders`] — BP+OSD, union-find and logical-error-rate estimation
//!   ([`prophunt_decoders`]).
//! * [`core`] — the PropHunt optimizer itself ([`prophunt`]).
//! * [`zne`] — Hook-ZNE and DS-ZNE ([`prophunt_zne`]).
//! * [`obs`] — zero-dependency observability: counters, gauges, log2-bucketed
//!   histograms and RAII span timers behind an optional `Obs` handle, threaded
//!   through the runtime, Session, LER engines and search out-of-band of the
//!   deterministic seed streams ([`prophunt_obs`]); exported as `metrics`
//!   JSON-lines records and summarized by `prophunt report`.
//! * [`runtime`] — the deterministic bounded parallel execution layer shared by
//!   every parallel stage ([`prophunt_runtime`]).
//! * [`search`] — strategy-portfolio schedule search: the `Strategy` trait,
//!   MaxSAT descent / annealing / beam / hill-climbing arms, and the
//!   deterministic `Portfolio` executor ([`prophunt_search`]).
//! * [`formats`] — on-disk interchange formats: Stim-compatible `.dem` files,
//!   code specs, schedule files and JSON-lines run reports
//!   ([`prophunt_formats`]); the `prophunt` CLI is built on these.
//! * [`api`] — the unified experiment surface: `ExperimentSpec` builder,
//!   `Session` (cached models/decoders), typed `OptimizeJob`/`LerJob`s with a
//!   unified event stream, pluggable decoder/noise registries and adaptive
//!   shot budgets ([`prophunt_api`]). Prefer this entry point for new code.
//!
//! See `README.md` for a quickstart, the crate map and the runtime's
//! determinism contract, and `FORMATS.md` for the file-format grammars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use prophunt as core;
pub use prophunt_api as api;
pub use prophunt_circuit as circuit;
pub use prophunt_decoders as decoders;
pub use prophunt_formats as formats;
pub use prophunt_gf2 as gf2;
pub use prophunt_maxsat as maxsat;
pub use prophunt_obs as obs;
pub use prophunt_qec as qec;
pub use prophunt_runtime as runtime;
pub use prophunt_search as search;
pub use prophunt_zne as zne;
