//! Portfolio vs. single-strategy schedule search on the Table 1 code suite.
//!
//! For every benchmark code family — rotated surface, generalized bicycle,
//! and the bivariate-bicycle instance — races the full four-strategy
//! portfolio against single-strategy MaxSAT descent from the same coloration
//! starting schedule with the same per-round budgets, and records final CNOT
//! depth plus wall-clock for both arms in `BENCH_search.json`. The default
//! quick profile trims the suite (no d = 7/9 surface codes) and gives the
//! expensive bivariate-bicycle point a reduced budget; `PROPHUNT_FULL=1` runs
//! every code at paper-scale budgets.
//!
//! This is the bench behind the subsystem's acceptance claim: with equal
//! budgets the portfolio's final depth is at or below the single heuristic's
//! on every code in the suite (the run aborts loudly if that ever regresses),
//! and adding rounds/instances converts compute into depth — answer quality as
//! a function of compute, not of one fixed heuristic.

use prophunt_bench::{
    bench_session, benchmark_suite, compare_search_strategies, runtime_config_from_env,
};
use prophunt_formats::write_report;

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let runtime = runtime_config_from_env();
    let mut session = bench_session();
    println!("Schedule search: portfolio (maxsat,anneal,beam,hillclimb) vs MaxSAT descent alone");
    println!(
        "  seed {} (set PROPHUNT_FULL=1 for the full suite at paper-scale budgets)",
        runtime.seed
    );
    println!(
        "{:<14} {:>7} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "code", "initial", "maxsat", "portfolio", "best arm", "maxsat s", "portfolio s"
    );
    let mut records = Vec::new();
    let mut regressions = 0usize;
    for (stage, bench) in benchmark_suite(true).into_iter().enumerate() {
        let name = bench.code.name().to_string();
        if !full && (name == "surface_d7" || name == "surface_d9") {
            continue;
        }
        // The bivariate-bicycle point pays ~a minute per MaxSAT-descent round;
        // the quick profile keeps it in the comparison with a trimmed budget.
        let (search_rounds, samples) = if full {
            (10, 40)
        } else if name == "bb_72_12" {
            (2, 4)
        } else {
            (6, 12)
        };
        let comparison = compare_search_strategies(
            &mut session,
            &bench,
            bench.rounds.min(3),
            search_rounds,
            samples,
            40 + stage as u64,
        );
        println!(
            "{:<14} {:>7} {:>8} {:>10} {:>10} {:>12.3} {:>12.3}",
            comparison.code,
            comparison.initial_depth,
            comparison.maxsat_depth,
            comparison.portfolio_depth,
            comparison.portfolio_best_strategy,
            comparison.maxsat_wall_s,
            comparison.portfolio_wall_s,
        );
        if comparison.portfolio_depth > comparison.maxsat_depth {
            eprintln!(
                "REGRESSION: portfolio depth {} > single-strategy depth {} on {}",
                comparison.portfolio_depth, comparison.maxsat_depth, comparison.code
            );
            regressions += 1;
        }
        records.push(comparison.to_record());
    }
    std::fs::write("BENCH_search.json", write_report(&records))
        .expect("cannot write BENCH_search.json");
    println!("wrote BENCH_search.json ({} rows)", records.len());
    assert_eq!(
        regressions, 0,
        "portfolio must never lose to its own MaxSAT arm under equal budgets"
    );
}
