//! The Stim-compatible detector-error-model (`.dem`) text format.
//!
//! Every emitted file is a valid input to Stim's DEM parser; this crate's parser in
//! turn accepts the subset of Stim's grammar that a flat (unrolled) model needs:
//!
//! ```text
//! # comment
//! detector D8
//! logical_observable L0
//! error(0.001) D0 D1 L0
//! ```
//!
//! * `error(p) targets...` — one error mechanism; targets are `D<i>` (detector) and
//!   `L<i>` (logical observable), in any order.
//! * `detector D<i>` / `logical_observable L<i>` — declares the index, which pins the
//!   detector/observable *count* to at least `i + 1`. The writer always emits the two
//!   highest indices up front so a model with trailing untouched detectors
//!   round-trips exactly.
//! * `#` starts a comment (full-line or trailing); blank lines are ignored.
//!
//! Stim constructs this crate does not emit — `repeat` blocks, `shift_detectors`,
//! `^` separators within an error — are rejected with a located [`FormatError`]
//! rather than silently misread.
//!
//! Probabilities are written with Rust's shortest-round-trip float formatting, so
//! `parse(write(dem))` reproduces every probability bit-for-bit.

use crate::error::{parse_f64, parse_usize, tokens, FormatError};
use prophunt_circuit::dem::{DetectorErrorModel, ErrorMechanism};
use std::fmt::Write as _;

/// Serializes a detector error model to the Stim-compatible `.dem` text format.
pub fn write_dem(dem: &DetectorErrorModel) -> String {
    let mut out = String::new();
    out.push_str("# PropHunt detector error model (Stim-compatible subset)\n");
    let _ = writeln!(
        out,
        "# detectors: {}, observables: {}, error mechanisms: {}",
        dem.num_detectors(),
        dem.num_observables(),
        dem.num_errors()
    );
    if dem.num_detectors() > 0 {
        let _ = writeln!(out, "detector D{}", dem.num_detectors() - 1);
    }
    if dem.num_observables() > 0 {
        let _ = writeln!(out, "logical_observable L{}", dem.num_observables() - 1);
    }
    for err in dem.errors() {
        let _ = write!(out, "error({})", err.probability);
        for &d in &err.detectors {
            let _ = write!(out, " D{d}");
        }
        for &o in &err.observables {
            let _ = write!(out, " L{o}");
        }
        out.push('\n');
    }
    out
}

/// Parses the Stim-compatible `.dem` text format back into a [`DetectorErrorModel`].
///
/// The detector/observable counts are the highest declared or referenced index plus
/// one. Mechanisms are kept in file order and are not merged by signature.
///
/// # Errors
///
/// Returns a [`FormatError`] carrying the 1-based line/column of the first offending
/// token: unknown instructions, malformed probabilities or targets, probabilities
/// outside `[0, 1]`, or duplicate targets within one `error`.
pub fn parse_dem(input: &str) -> Result<DetectorErrorModel, FormatError> {
    let mut num_detectors = 0usize;
    let mut num_observables = 0usize;
    let mut errors: Vec<ErrorMechanism> = Vec::new();

    for (line_idx, raw_line) in input.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let toks = tokens(line);
        let Some(&(col, instruction)) = toks.first() else {
            continue;
        };
        if let Some(prob_text) = instruction
            .strip_prefix("error(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let probability = parse_f64(prob_text, line_no, col + "error(".len())?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(FormatError::at(
                    line_no,
                    col,
                    format!("error probability {probability} is outside [0, 1]"),
                ));
            }
            let mut detectors = Vec::new();
            let mut observables = Vec::new();
            for &(tcol, target) in &toks[1..] {
                if let Some(d) = target.strip_prefix('D') {
                    detectors.push(parse_usize(d, line_no, tcol + 1)?);
                } else if let Some(o) = target.strip_prefix('L') {
                    observables.push(parse_usize(o, line_no, tcol + 1)?);
                } else {
                    return Err(FormatError::at(
                        line_no,
                        tcol,
                        format!("expected a D<index> or L<index> target, got {target:?}"),
                    ));
                }
            }
            detectors.sort_unstable();
            observables.sort_unstable();
            if detectors.windows(2).any(|w| w[0] == w[1])
                || observables.windows(2).any(|w| w[0] == w[1])
            {
                return Err(FormatError::at_line(
                    line_no,
                    "error repeats a target; each detector/observable may appear once",
                ));
            }
            if let Some(&d) = detectors.last() {
                num_detectors = num_detectors.max(d + 1);
            }
            if let Some(&o) = observables.last() {
                num_observables = num_observables.max(o + 1);
            }
            errors.push(ErrorMechanism {
                probability,
                detectors,
                observables,
                sources: Vec::new(),
            });
        } else if instruction == "detector" {
            let &(tcol, target) = toks.get(1).ok_or_else(|| {
                FormatError::at(line_no, col, "detector declaration needs a D<index> target")
            })?;
            if let Some(&(xcol, extra)) = toks.get(2) {
                return Err(FormatError::at(
                    line_no,
                    xcol,
                    format!("detector declares exactly one target, got extra token {extra:?}"),
                ));
            }
            let d = target
                .strip_prefix('D')
                .ok_or_else(|| {
                    FormatError::at(line_no, tcol, format!("expected D<index>, got {target:?}"))
                })
                .and_then(|t| parse_usize(t, line_no, tcol + 1))?;
            num_detectors = num_detectors.max(d + 1);
        } else if instruction == "logical_observable" {
            let &(tcol, target) = toks.get(1).ok_or_else(|| {
                FormatError::at(
                    line_no,
                    col,
                    "logical_observable declaration needs an L<index> target",
                )
            })?;
            if let Some(&(xcol, extra)) = toks.get(2) {
                return Err(FormatError::at(
                    line_no,
                    xcol,
                    format!(
                        "logical_observable declares exactly one target, got extra token {extra:?}"
                    ),
                ));
            }
            let o = target
                .strip_prefix('L')
                .ok_or_else(|| {
                    FormatError::at(line_no, tcol, format!("expected L<index>, got {target:?}"))
                })
                .and_then(|t| parse_usize(t, line_no, tcol + 1))?;
            num_observables = num_observables.max(o + 1);
        } else {
            return Err(FormatError::at(
                line_no,
                col,
                format!(
                    "unsupported instruction {instruction:?} (this parser reads the flat \
                     error/detector/logical_observable subset of Stim's DEM grammar)"
                ),
            ));
        }
    }

    DetectorErrorModel::from_parts(num_detectors, num_observables, errors)
        .map_err(|e| FormatError::whole_input(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn d3_dem() -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 2, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1.25e-3))
    }

    #[test]
    fn d3_model_round_trips_exactly() {
        let dem = d3_dem();
        let text = write_dem(&dem);
        let parsed = parse_dem(&text).unwrap();
        assert!(parsed.same_distribution(&dem));
        assert_eq!(parsed.num_detectors(), dem.num_detectors());
        assert_eq!(parsed.num_observables(), dem.num_observables());
        // Idempotence: writing the parsed model reproduces the text.
        assert_eq!(write_dem(&parsed), text);
    }

    #[test]
    fn declarations_pin_counts_beyond_referenced_indices() {
        let parsed = parse_dem("detector D9\nlogical_observable L1\nerror(0.5) D0\n").unwrap();
        assert_eq!(parsed.num_detectors(), 10);
        assert_eq!(parsed.num_observables(), 2);
        assert_eq!(parsed.num_errors(), 1);
    }

    #[test]
    fn comments_blank_lines_and_target_order_are_tolerated() {
        let parsed =
            parse_dem("# header\n\nerror(0.25) L0 D3 D1 # trailing comment\n  error(1e-4) D0\n")
                .unwrap();
        assert_eq!(parsed.num_errors(), 2);
        assert_eq!(parsed.error(0).detectors, vec![1, 3]);
        assert_eq!(parsed.error(0).observables, vec![0]);
        assert_eq!(parsed.error(1).probability, 1e-4);
    }

    #[test]
    fn malformed_inputs_give_located_errors() {
        let err = parse_dem("error(2.0) D0\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_dem("error(0.1) D0\nrepeat 3 {\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unsupported instruction"));
        let err = parse_dem("error(0.1) D0 Q3\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, 15));
        let err = parse_dem("error(0.1) D0 D0\n").unwrap_err();
        assert!(err.message.contains("repeats"));
        assert!(parse_dem("error(abc) D0\n").is_err());
        assert!(parse_dem("detector\n").is_err());
        // Declarations take exactly one target; extra tokens must not be dropped.
        let err = parse_dem("detector D3 D9\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, 13));
        assert!(parse_dem("logical_observable L0 L1\n").is_err());
    }

    #[test]
    fn empty_input_is_an_empty_model() {
        let parsed = parse_dem("# nothing\n").unwrap();
        assert_eq!(parsed.num_detectors(), 0);
        assert_eq!(parsed.num_errors(), 0);
    }
}
