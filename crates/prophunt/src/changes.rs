//! Candidate circuit-change enumeration, pruning and application (paper Sections
//! 5.3–5.5).

use crate::ambiguity::{is_ambiguous, AmbiguousSubgraph, DecodingGraph};
use crate::minweight::MinWeightSolution;
use prophunt_circuit::{
    EvalOp, MemoryBasis, NoiseModel, Op, ScheduleEval, ScheduleSpec, StabilizerId,
};
use prophunt_qec::{CssCode, StabilizerKind};
use rand::Rng;
use std::collections::HashMap;

/// A single rescheduling swap: flip which of two stabilizers interacts first with a
/// shared data qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescheduleSwap {
    /// The shared data qubit.
    pub qubit: usize,
    /// One stabilizer of the pair.
    pub a: StabilizerId,
    /// The other stabilizer of the pair.
    pub b: StabilizerId,
}

/// A candidate change to the SM circuit, in the two families the paper defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateChange {
    /// Reordering: move `move_qubit` immediately before `anchor_qubit` in the interaction
    /// order of `stabilizer` (changes which data qubits a hook error spreads to).
    Reorder {
        /// The stabilizer whose CNOT order changes.
        stabilizer: StabilizerId,
        /// The data qubit moved earlier in the order.
        move_qubit: usize,
        /// The data qubit it is moved in front of (the one whose CNOT caused the hook).
        anchor_qubit: usize,
    },
    /// Rescheduling: swap the relative order of two stabilizers on one or two shared
    /// data qubits (two swaps are needed when the stabilizers have opposite type, to
    /// preserve commutation).
    Reschedule {
        /// The swaps to perform.
        swaps: Vec<RescheduleSwap>,
    },
}

impl CandidateChange {
    /// Applies the change to a schedule in place.
    pub fn apply(&self, schedule: &mut ScheduleSpec) {
        for op in self.eval_ops() {
            op.apply(schedule);
        }
    }

    /// The change as primitive operations of the incremental evaluation
    /// engine ([`ScheduleEval::try_ops`]) — the path through which candidates
    /// are verified and applied without from-scratch revalidation.
    pub fn eval_ops(&self) -> Vec<EvalOp> {
        match self {
            CandidateChange::Reorder {
                stabilizer,
                move_qubit,
                anchor_qubit,
            } => vec![EvalOp::Reorder {
                stabilizer: *stabilizer,
                move_qubit: *move_qubit,
                anchor_qubit: *anchor_qubit,
            }],
            CandidateChange::Reschedule { swaps } => swaps
                .iter()
                .map(|swap| EvalOp::Swap {
                    qubit: swap.qubit,
                    a: swap.a,
                    b: swap.b,
                })
                .collect(),
        }
    }
}

/// A candidate that survived pruning, together with the schedule it produces.
#[derive(Debug, Clone)]
pub struct VerifiedChange {
    /// The change itself.
    pub change: CandidateChange,
    /// The resulting schedule (base schedule plus this change).
    pub schedule: ScheduleSpec,
    /// The CNOT depth of the resulting schedule (the tie-break of Section 5.5).
    pub depth: usize,
}

/// Enumerates candidate changes from the gates behind a minimum-weight logical error
/// (paper Section 5.3).
pub fn enumerate_candidates<R: Rng>(
    graph: &DecodingGraph,
    code: &CssCode,
    schedule: &ScheduleSpec,
    solution: &MinWeightSolution,
    rng: &mut R,
) -> Vec<CandidateChange> {
    let experiment = graph.experiment();
    let mut candidates = Vec::new();
    for &error_index in &solution.errors {
        let mechanism = graph.dem().error(error_index);
        let Some(source) = mechanism.sources.first() else {
            continue;
        };
        let Op::Cnot(control, target) = source.op else {
            continue;
        };
        // Identify the ancilla (stabilizer) and data qubit of this CNOT.
        let (stab, data_qubit) = match (
            experiment.stabilizer_of_qubit(control),
            experiment.stabilizer_of_qubit(target),
        ) {
            (Some(s), None) => (s, target),
            (None, Some(s)) => (s, control),
            _ => continue,
        };
        let ancilla = if experiment.stabilizer_of_qubit(control).is_some() {
            control
        } else {
            target
        };
        let kind = schedule.kind_of(stab);

        // Hook errors: an ancilla fault component that propagates onto later data qubits
        // (X on an X-check's control, Z on a Z-check's target).
        let is_hook = source.error.iter().any(|&(q, pauli)| {
            q == ancilla
                && match kind {
                    StabilizerKind::X => pauli.has_x(),
                    StabilizerKind::Z => pauli.has_z(),
                }
        });
        if is_hook {
            for &other in schedule.order(stab) {
                if other != data_qubit {
                    candidates.push(CandidateChange::Reorder {
                        stabilizer: stab,
                        move_qubit: other,
                        anchor_qubit: data_qubit,
                    });
                }
            }
        }

        // Rescheduling: swap this stabilizer against each stabilizer flipped by the error
        // that also acts on the same data qubit.
        let mut flipped_stabs: Vec<StabilizerId> = mechanism
            .detectors
            .iter()
            .map(|&d| experiment.detector_info[d].stabilizer)
            .collect();
        flipped_stabs.sort_unstable();
        flipped_stabs.dedup();
        for other in flipped_stabs {
            if other == stab {
                continue;
            }
            let (other_kind, other_index) = schedule.kind_index(other);
            let (_, stab_index) = schedule.kind_index(stab);
            // Both must act on the data qubit for the swap to be meaningful.
            if !code.checks(other_kind).get(other_index, data_qubit) {
                continue;
            }
            let mut swaps = vec![RescheduleSwap {
                qubit: data_qubit,
                a: stab,
                b: other,
            }];
            if other_kind != kind {
                // Opposite types: a second swap on another shared qubit preserves
                // commutation. Pick deterministically when unique, randomly otherwise.
                let (x_index, z_index) = match kind {
                    StabilizerKind::X => (stab_index, other_index),
                    StabilizerKind::Z => (other_index, stab_index),
                };
                let shared: Vec<usize> = code
                    .shared_qubits(x_index, z_index)
                    .into_iter()
                    .filter(|&q| q != data_qubit)
                    .collect();
                if shared.is_empty() {
                    continue;
                }
                let pick = if shared.len() == 1 {
                    shared[0]
                } else {
                    shared[rng.gen_range(0..shared.len())]
                };
                swaps.push(RescheduleSwap {
                    qubit: pick,
                    a: stab,
                    b: other,
                });
            }
            candidates.push(CandidateChange::Reschedule { swaps });
        }
    }
    candidates.dedup();
    candidates
}

/// Prunes a candidate change (paper Section 5.4).
///
/// The candidate survives when the changed schedule is a valid SM circuit (commutation
/// preserved, CNOTs schedulable), the original ambiguous syndrome set is no longer
/// ambiguous under the new circuit-level matrices, and the updated counterparts of the
/// solution's faults no longer form an undetected logical error.
///
/// Validity and depth are evaluated incrementally: the candidate's primitive
/// operations are applied to a clone of `base_eval` (whose parity counters and
/// layered dependency DAG are kept up to date in O(pairs touched + cone))
/// instead of re-running the full commutation scan and DAG rebuild per
/// candidate.
#[allow(clippy::too_many_arguments)]
pub fn verify_candidate(
    code: &CssCode,
    base_eval: &ScheduleEval,
    candidate: &CandidateChange,
    subgraph: &AmbiguousSubgraph,
    solution: &MinWeightSolution,
    original_graph: &DecodingGraph,
    rounds: usize,
    basis: MemoryBasis,
    noise: &NoiseModel,
) -> Option<VerifiedChange> {
    let mut eval = base_eval.clone();
    // Circuit validity (commutation parity + acyclic layout) and depth, in one
    // incremental application.
    let depth = eval.try_ops(&candidate.eval_ops())?;
    let schedule = eval.into_spec();
    // Rebuild the circuit-level matrices under the changed schedule.
    let new_graph = DecodingGraph::build_with_noise(code, &schedule, rounds, basis, noise).ok()?;
    // Ambiguity removal on the original syndrome bits.
    let (h_sub, l_sub, _) = new_graph.restricted_matrices(&subgraph.detectors);
    if is_ambiguous(&h_sub, &l_sub) {
        return None;
    }
    // The updated counterparts of the solution's faults must not be a logical error.
    if updated_faults_still_logical(original_graph, &new_graph, solution) {
        return None;
    }
    Some(VerifiedChange {
        change: candidate.clone(),
        schedule,
        depth,
    })
}

/// Checks whether the faults behind `solution`, replayed in the new circuit, still form
/// an undetected logical error (`H'E' = 0` and `L'E' ≠ 0`).
fn updated_faults_still_logical(
    original: &DecodingGraph,
    updated: &DecodingGraph,
    solution: &MinWeightSolution,
) -> bool {
    // Index the new mechanisms by (op, error, round) of their sources.
    type SourceKey = (
        Op,
        Vec<(usize, prophunt_circuit::noise::Pauli)>,
        Option<usize>,
    );
    let mut index: HashMap<SourceKey, usize> = HashMap::new();
    for (i, err) in updated.dem().errors().iter().enumerate() {
        for src in &err.sources {
            let round = updated.experiment().round_of_moment(src.moment);
            index.insert((src.op, src.error.clone(), round), i);
        }
    }
    let mut mapped: Vec<usize> = Vec::new();
    for &e in &solution.errors {
        let err = original.dem().error(e);
        let Some(src) = err.sources.first() else {
            return false;
        };
        let round = original.experiment().round_of_moment(src.moment);
        // When the fault cannot be matched (it vanished from the model), treat it
        // as removed, which can only make the pattern detectable.
        if let Some(&new_idx) = index.get(&(src.op, src.error.clone(), round)) {
            mapped.push(new_idx);
        }
    }
    mapped.sort_unstable();
    mapped.dedup();
    crate::minweight::is_undetected_logical_error(updated, &mapped)
}

/// Selects at most one verified change per subgraph (minimum depth, Section 5.5) and
/// applies them sequentially to `schedule`, skipping any change that would invalidate the
/// circuit in combination with previously applied ones. Returns the number of changes
/// applied.
///
/// Applications run through one incremental [`ScheduleEval`]: a change that is
/// invalid in combination with previously applied ones is rejected (and rolled
/// back) by the engine's parity counters and cone relayering instead of a
/// from-scratch clone-and-validate per group.
pub fn apply_verified_changes(
    schedule: &mut ScheduleSpec,
    verified_per_subgraph: Vec<Vec<VerifiedChange>>,
) -> usize {
    let mut eval = ScheduleEval::new(schedule.clone())
        .expect("the working schedule stays valid across iterations");
    let mut applied = 0;
    for group in verified_per_subgraph {
        let Some(best) = group.into_iter().min_by_key(|v| v.depth) else {
            continue;
        };
        if eval.try_ops(&best.change.eval_ops()).is_some() {
            applied += 1;
        }
    }
    *schedule = eval.into_spec();
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambiguity::find_ambiguous_subgraph;
    use crate::minweight::min_weight_logical_error;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn poor_d3() -> (CssCode, ScheduleSpec, DecodingGraph) {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_poor(&code, &layout);
        let graph = DecodingGraph::build(&code, &schedule, 3, MemoryBasis::Z, 1e-3).unwrap();
        (code, schedule, graph)
    }

    #[test]
    fn candidate_application_roundtrip() {
        let (code, schedule, _) = poor_d3();
        let mut s = schedule.clone();
        let order = s.order(0).to_vec();
        let change = CandidateChange::Reorder {
            stabilizer: 0,
            move_qubit: order[2],
            anchor_qubit: order[0],
        };
        change.apply(&mut s);
        assert_eq!(s.order(0)[0], order[2]);
        // A reschedule swap flips who is first.
        let z0 = s.stabilizer_id(StabilizerKind::Z, 0);
        let shared = code.shared_qubits(0, 0);
        let before = s.first_on_qubit(shared[0], 0, z0).unwrap();
        let change = CandidateChange::Reschedule {
            swaps: vec![
                RescheduleSwap {
                    qubit: shared[0],
                    a: 0,
                    b: z0,
                },
                RescheduleSwap {
                    qubit: shared[1],
                    a: 0,
                    b: z0,
                },
            ],
        };
        change.apply(&mut s);
        assert_ne!(s.first_on_qubit(shared[0], 0, z0).unwrap(), before);
        // Flipping both shared qubits preserves commutation.
        s.check_commutation(&code).unwrap();
    }

    #[test]
    fn enumeration_produces_candidates_for_poor_schedule_errors() {
        let (code, schedule, graph) = poor_d3();
        let mut rng = StdRng::seed_from_u64(23);
        let sub = (0..30)
            .find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 60))
            .expect("ambiguous subgraph exists for the poor schedule");
        let solution = min_weight_logical_error(&sub, Duration::from_secs(10)).unwrap();
        let candidates = enumerate_candidates(&graph, &code, &schedule, &solution, &mut rng);
        assert!(
            !candidates.is_empty(),
            "expected candidate changes for a weight-{} logical error",
            solution.weight
        );
    }

    #[test]
    fn verification_rejects_commutation_breaking_changes() {
        let (code, schedule, graph) = poor_d3();
        let z0 = schedule.stabilizer_id(StabilizerKind::Z, 0);
        let shared = code.shared_qubits(0, 0);
        // A single opposite-type swap on one shared qubit breaks commutation and must be
        // pruned regardless of its effect on ambiguity.
        let bad = CandidateChange::Reschedule {
            swaps: vec![RescheduleSwap {
                qubit: shared[0],
                a: 0,
                b: z0,
            }],
        };
        let mut rng = StdRng::seed_from_u64(29);
        let sub = (0..30)
            .find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 60))
            .unwrap();
        let solution = min_weight_logical_error(&sub, Duration::from_secs(10)).unwrap();
        let eval = ScheduleEval::new(schedule).unwrap();
        assert!(verify_candidate(
            &code,
            &eval,
            &bad,
            &sub,
            &solution,
            &graph,
            3,
            MemoryBasis::Z,
            &NoiseModel::uniform_depolarizing(1e-3)
        )
        .is_none());
    }

    #[test]
    fn some_candidate_for_a_weight_two_error_verifies_and_removes_ambiguity() {
        // Not every ambiguous subgraph yields a surviving candidate (the paper notes most
        // candidates are pruned), but across a handful of sampled subgraphs of the poor
        // d = 3 schedule at least one verified change must emerge — otherwise the
        // optimizer could never make progress.
        let (code, schedule, graph) = poor_d3();
        let mut rng = StdRng::seed_from_u64(31);
        let mut verified_somewhere: Vec<VerifiedChange> = Vec::new();
        let mut attempts = 0;
        for _ in 0..60 {
            if !verified_somewhere.is_empty() || attempts >= 8 {
                break;
            }
            let Some(sub) = find_ambiguous_subgraph(&graph, &mut rng, 60) else {
                continue;
            };
            let Some(solution) = min_weight_logical_error(&sub, Duration::from_secs(10)) else {
                continue;
            };
            if solution.weight > 3 {
                continue;
            }
            attempts += 1;
            let candidates = enumerate_candidates(&graph, &code, &schedule, &solution, &mut rng);
            let eval = ScheduleEval::new(schedule.clone()).unwrap();
            verified_somewhere.extend(candidates.iter().filter_map(|c| {
                verify_candidate(
                    &code,
                    &eval,
                    c,
                    &sub,
                    &solution,
                    &graph,
                    3,
                    MemoryBasis::Z,
                    &NoiseModel::uniform_depolarizing(1e-3),
                )
            }));
        }
        assert!(
            !verified_somewhere.is_empty(),
            "no verified candidate across {attempts} low-weight subgraphs"
        );
        // Applying the selected change keeps the schedule valid.
        let mut working = schedule.clone();
        let applied = apply_verified_changes(&mut working, vec![verified_somewhere]);
        assert_eq!(applied, 1);
        working.validate(&code).unwrap();
    }
}
