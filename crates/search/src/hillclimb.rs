//! Random-restart hill climbing over schedule mutations.

use crate::moves::MoveSet;
use crate::strategy::{Incumbent, Proposal, SearchContext, Strategy};
use prophunt_circuit::schedule::eval::ScheduleEval;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_obs::Counter;
use prophunt_qec::surface::{Corner, SurfaceLayout};
use prophunt_qec::CssCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hill climbing with deterministic restarts over permuted orderings.
///
/// Each round greedily takes every seeded random move that does not increase
/// depth (equal-depth moves walk plateaus), mutating one [`ScheduleEval`] in
/// place and reverting worsening moves instead of cloning a schedule per
/// proposal. After `restart_stall` rounds without strict improvement the
/// climber restarts from a fresh basin — the portfolio's diversity arm,
/// sampling far-apart starting points instead of refining one (Sato &
/// Suzuki's permuted-ordering restarts):
///
/// * codes with a surface layout restart from random members of the
///   precomputed **valid corner-order family**
///   ([`ScheduleSpec::surface_from_corner_orders`] over all 24 × 24 corner
///   permutations, minus the slot-colliding and commutation-breaking pairs) —
///   the family the hand-designed minimum-depth circuits live in, unreachable
///   from a coloration baseline by local moves alone;
/// * all other codes (and every other restart) draw randomized colorations
///   ([`ScheduleSpec::coloration_random`], valid by construction).
///
/// Incumbent policy: none. Restart diversity is this arm's whole contribution;
/// adopting the incumbent would collapse it onto the trajectories the other
/// arms already cover. The global best is still tracked across restarts and is
/// what every round proposes.
#[derive(Debug)]
pub struct HillClimb {
    code: CssCode,
    moves: MoveSet,
    /// The valid corner-order schedule family (empty for codes without a
    /// surface layout), shared with every other instance of the context.
    corner_restarts: std::sync::Arc<Vec<ScheduleSpec>>,
    eval: ScheduleEval,
    best: Proposal,
    stalled_rounds: usize,
    restart_stall: usize,
    proposals_per_round: usize,
    /// Hoisted `search.hillclimb.*` counter handles (None when the context's
    /// observability is disabled).
    accepts: Option<Counter>,
    reverts: Option<Counter>,
    restarts: Option<Counter>,
}

/// All 24 permutations of the four plaquette corners.
fn corner_permutations() -> Vec<[Corner; 4]> {
    let mut out = Vec::with_capacity(24);
    let c = Corner::ALL;
    for i in 0..4 {
        for j in 0..4 {
            if j == i {
                continue;
            }
            for k in 0..4 {
                if k == i || k == j {
                    continue;
                }
                let l = 6 - i - j - k;
                out.push([c[i], c[j], c[k], c[l]]);
            }
        }
    }
    out
}

/// Whether a `(x_order, z_order)` pair assigns two CNOTs of one data qubit to
/// the same time slot — the pairs [`ScheduleSpec::surface_from_corner_orders`]
/// cannot lay out (its constructor asserts against them).
fn corner_orders_collide(
    layout: &SurfaceLayout,
    n: usize,
    x_order: &[Corner; 4],
    z_order: &[Corner; 4],
) -> bool {
    let slot_of = |order: &[Corner; 4], ci: usize| -> usize {
        order
            .iter()
            .position(|&c| c == Corner::ALL[ci])
            .expect("corner orders are permutations of ALL")
    };
    let mut taken = vec![false; n * 4];
    for (corners, order) in layout
        .x_corners
        .iter()
        .map(|c| (c, x_order))
        .chain(layout.z_corners.iter().map(|c| (c, z_order)))
    {
        for (ci, q) in corners.iter().enumerate() {
            if let Some(q) = q {
                let slot = q * 4 + slot_of(order, ci);
                if taken[slot] {
                    return true;
                }
                taken[slot] = true;
            }
        }
    }
    false
}

/// Enumerates every valid corner-order schedule of a surface layout: all
/// 24 × 24 `(x_order, z_order)` permutation pairs, minus the slot-colliding
/// and commutation-breaking ones. The hand-designed and "poor" schedules are
/// both members; so are the minimum-depth schedules the restarts aim for.
///
/// Computed once per [`SearchContext`] and shared by every instance — a
/// portfolio cycling several `HillClimb` slots must not redo the enumeration
/// per slot.
pub(crate) fn valid_corner_schedules(code: &CssCode, layout: &SurfaceLayout) -> Vec<ScheduleSpec> {
    let perms = corner_permutations();
    let mut out = Vec::new();
    for x_order in &perms {
        for z_order in &perms {
            if corner_orders_collide(layout, code.n(), x_order, z_order) {
                continue;
            }
            let candidate =
                ScheduleSpec::surface_from_corner_orders(code, layout, x_order, z_order);
            if candidate.validate(code).is_ok() {
                out.push(candidate);
            }
        }
    }
    out
}

impl HillClimb {
    /// Creates an instance climbing from the context's initial schedule.
    pub fn new(ctx: &SearchContext) -> HillClimb {
        let eval =
            ScheduleEval::new(ctx.initial.clone()).expect("search context schedules are validated");
        let depth = eval.depth();
        HillClimb {
            code: ctx.code.clone(),
            moves: MoveSet::new(&ctx.initial),
            corner_restarts: ctx.corner_schedules(),
            eval,
            best: Proposal {
                schedule: ctx.initial.clone(),
                depth,
            },
            stalled_rounds: 0,
            restart_stall: ctx.params.restart_stall.max(1),
            proposals_per_round: ctx.params.proposals_per_round,
            accepts: ctx.obs.counter("search.hillclimb.accepts"),
            reverts: ctx.obs.counter("search.hillclimb.reverts"),
            restarts: ctx.obs.counter("search.hillclimb.restarts"),
        }
    }

    /// Draws the next restart point: alternately a random member of the valid
    /// corner-order family (when the code has one) and a randomized coloration,
    /// so structured and unstructured basins both stay covered.
    fn restart_schedule(&self, rng: &mut StdRng) -> ScheduleSpec {
        if !self.corner_restarts.is_empty() && rng.gen_range(0..2) == 0 {
            return self.corner_restarts[rng.gen_range(0..self.corner_restarts.len())].clone();
        }
        ScheduleSpec::coloration_random(&self.code, rng)
    }
}

impl Strategy for HillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn propose(&mut self, _round: usize, seed: u64) -> Proposal {
        let mut rng = StdRng::seed_from_u64(seed);
        if self.stalled_rounds >= self.restart_stall {
            self.eval = ScheduleEval::new(self.restart_schedule(&mut rng))
                .expect("restart schedules are validated or valid by construction");
            if let Some(c) = &self.restarts {
                c.inc();
            }
            if self.eval.depth() < self.best.depth {
                self.best = Proposal {
                    schedule: self.eval.spec().clone(),
                    depth: self.eval.depth(),
                };
            }
            self.stalled_rounds = 0;
        }
        let depth_before = self.eval.depth();
        let mut current_depth = depth_before;
        for _ in 0..self.proposals_per_round {
            let Some(mv) = self.moves.draw(self.eval.spec(), &mut rng) else {
                continue;
            };
            let Some(depth) = self.eval.try_apply(&mv) else {
                continue;
            };
            if depth <= current_depth {
                self.eval.commit();
                if let Some(c) = &self.accepts {
                    c.inc();
                }
                current_depth = depth;
                if depth < self.best.depth {
                    self.best = Proposal {
                        schedule: self.eval.spec().clone(),
                        depth,
                    };
                }
            } else {
                self.eval.revert();
                if let Some(c) = &self.reverts {
                    c.inc();
                }
            }
        }
        if current_depth < depth_before {
            self.stalled_rounds = 0;
        } else {
            self.stalled_rounds += 1;
        }
        self.best.clone()
    }

    fn observe(&mut self, _incumbent: &Incumbent, _accepted: bool) {}
}
