//! A token-level Rust lexer for the lint rules.
//!
//! The lexer is deliberately shallow — it does not parse Rust, it only splits
//! a source file into identifiers, punctuation, literals and comments with
//! accurate line/column positions. What it *must* get right, because every
//! rule depends on it, is the boundary of comments and string literals:
//! a `"Instant::now"` inside a string or a `// thread_rng` inside a comment
//! must never reach the rule engine as code tokens. Handled forms:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//! * string literals with escapes, byte strings, raw strings / raw byte
//!   strings with arbitrary `#` fences (`r#"…"#`, `br##"…"##`),
//! * char literals vs. lifetimes (`'x'` / `'\n'` vs. `'static`),
//! * raw identifiers (`r#type`) vs. raw strings (`r#"…"#`),
//! * numbers whose `.` belongs to the literal (`1.5`) vs. a method call on a
//!   literal (`1.max(2)`).

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A single punctuation character (`.`, `:`, `#`, `!`, `{`, ...).
    /// Multi-character operators arrive as consecutive tokens; rules match
    /// `::` as two adjacent `:` tokens.
    Punct,
    /// Any literal: string, raw string, byte string, char or number.
    /// The text of string-like literals is the raw source slice, never
    /// re-scanned for identifiers.
    Literal,
    /// A lifetime (`'a`), kept distinct so it is never confused with a char.
    Lifetime,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text. For [`TokenKind::Punct`] this is a single character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

/// One comment with its 1-based source position (suppression comments are
/// parsed out of these; comments never reach the rule matchers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// 1-based line of the comment's last character (equal to `line` for
    /// line comments; block comments may span several).
    pub end_line: usize,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments stripped.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count UTF-8 scalar starts only, so columns match editors.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into code tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let mut c = Cursor::new(src);
    while let Some(b) = c.peek() {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
                let text = src[start..c.pos].trim_start_matches('/').trim();
                out.comments.push(Comment {
                    text: text.to_string(),
                    line,
                    end_line: line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break, // unterminated; tolerate
                    }
                }
                let inner = src[start..c.pos]
                    .trim_start_matches("/*")
                    .trim_end_matches("*/")
                    .trim();
                out.comments.push(Comment {
                    text: inner.to_string(),
                    line,
                    end_line: c.line,
                });
            }
            b'"' => {
                lex_string(&mut c);
                push_literal(&mut out, src, start, &c, line, col);
            }
            b'r' | b'b' => {
                // Raw strings (r", r#", br"), byte strings (b"), byte chars
                // (b'x') and raw identifiers (r#ident) all start with r/b.
                if let Some(hashes) = raw_string_intro(&c) {
                    lex_raw_string(&mut c, hashes);
                    push_literal(&mut out, src, start, &c, line, col);
                } else if b == b'b' && c.peek_at(1) == Some(b'"') {
                    c.bump();
                    lex_string(&mut c);
                    push_literal(&mut out, src, start, &c, line, col);
                } else if b == b'b' && c.peek_at(1) == Some(b'\'') {
                    c.bump();
                    lex_char(&mut c);
                    push_literal(&mut out, src, start, &c, line, col);
                } else if b == b'r'
                    && c.peek_at(1) == Some(b'#')
                    && c.peek_at(2).is_some_and(is_ident_start)
                {
                    // Raw identifier: skip `r#`, lex the identifier.
                    c.bump();
                    c.bump();
                    let id_start = c.pos;
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: src[id_start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    lex_ident(&mut out, src, &mut c, line, col);
                }
            }
            b'\'' => {
                // Char literal or lifetime.
                if is_char_literal(&c) {
                    lex_char(&mut c);
                    push_literal(&mut out, src, start, &c, line, col);
                } else {
                    c.bump(); // the quote
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                }
            }
            b'0'..=b'9' => {
                lex_number(&mut c);
                push_literal(&mut out, src, start, &c, line, col);
            }
            _ if is_ident_start(b) => lex_ident(&mut out, src, &mut c, line, col),
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn push_literal(out: &mut Lexed, src: &str, start: usize, c: &Cursor, line: usize, col: usize) {
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        text: src[start..c.pos].to_string(),
        line,
        col,
    });
}

fn lex_ident(out: &mut Lexed, src: &str, c: &mut Cursor, line: usize, col: usize) {
    let start = c.pos;
    while c.peek().is_some_and(is_ident_continue) {
        c.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Ident,
        text: src[start..c.pos].to_string(),
        line,
        col,
    });
}

/// If the cursor sits on `r"`, `r#...#"`, `br"` or `br#...#"`, returns the
/// number of `#` fence characters.
fn raw_string_intro(c: &Cursor) -> Option<usize> {
    let mut offset = match (c.peek(), c.peek_at(1)) {
        (Some(b'r'), _) => 1,
        (Some(b'b'), Some(b'r')) => 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    while c.peek_at(offset) == Some(b'#') {
        hashes += 1;
        offset += 1;
    }
    (c.peek_at(offset) == Some(b'"')).then_some(hashes)
}

/// Consumes `r#*"…"#*` (cursor on the `r`/`b`).
fn lex_raw_string(c: &mut Cursor, hashes: usize) {
    loop {
        match c.peek() {
            Some(b'"') => break,
            Some(_) => {
                c.bump();
            }
            None => return, // unterminated; tolerate
        }
    }
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None => return, // unterminated; tolerate
            Some(b'"') => {
                let mut matched = 0usize;
                while matched < hashes && c.peek() == Some(b'#') {
                    c.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes a `"…"` string body (cursor on the opening quote).
fn lex_string(c: &mut Cursor) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'"') => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

/// Consumes a `'…'` char body (cursor on the opening quote).
fn lex_char(c: &mut Cursor) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'\'') => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

/// Decides whether a `'` starts a char literal (vs. a lifetime).
fn is_char_literal(c: &Cursor) -> bool {
    match c.peek_at(1) {
        Some(b'\\') => true, // '\n', '\'', '\u{…}'
        Some(_) => match c.peek_at(2) {
            Some(b'\'') => true, // 'x'
            _ => {
                // Multi-byte UTF-8 scalar char literal: scan a few bytes for
                // the closing quote before an identifier boundary would end a
                // lifetime anyway.
                (2..6).any(|k| c.peek_at(k) == Some(b'\'') && c.peek_at(1) != Some(b'\''))
                    && c.peek_at(1).is_some_and(|b| b >= 0x80)
            }
        },
        None => false,
    }
}

/// Consumes a numeric literal. A `.` continues the number only when followed
/// by a digit (so `1.max(2)` lexes as `1`, `.`, `max`).
fn lex_number(c: &mut Cursor) {
    while c
        .peek()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        c.bump();
    }
    if c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        c.bump();
        while c
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            c.bump();
        }
    }
    // Exponent sign: `1e-3` consumed the `e` above; take the sign + digits.
    if c.peek() == Some(b'-') || c.peek() == Some(b'+') {
        let prev = c.src.get(c.pos - 1).copied();
        if prev == Some(b'e') || prev == Some(b'E') {
            c.bump();
            while c
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                c.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "Instant::now() inside a string";
            // Instant::now() inside a comment
            /* thread_rng in /* a nested */ block */
            let b = r#"raw "quoted" Instant::now"#;
            let c = b"byte thread_rng";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant" || i == "thread_rng"));
        assert_eq!(
            ids,
            vec!["let", "a", "let", "b", "let", "c"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_are_captured_with_positions() {
        let src = "let x = 1; // lint: allow(no-wall-clock) — timing only\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.starts_with("lint: allow"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let q = '\"'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\n'", "'\"'"]);
        // The '"' char literal must not open a string that swallows the rest.
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("}"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ids = idents("let r#type = 1; let x = r#\"str\"#;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let lexed = lex("let x = 1.max(2); let y = 1.5e-3;");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"max"));
        assert!(texts.contains(&"1.5e-3"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("ab cd\n  ef\n");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| (t.text.as_str(), t.line, t.col))
                .collect::<Vec<_>>(),
            vec![("ab", 1, 1), ("cd", 1, 4), ("ef", 2, 3)]
        );
    }
}
