//! The workspace lints itself: `lint_workspace` over the repository root must
//! report zero unsuppressed findings, and every suppression that does exist
//! must carry a written justification. CI runs `prophunt lint` for the same
//! guarantee on the built binary; this test pins it at `cargo test` level.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = prophunt_lint::lint_workspace(&root).expect("workspace must be scannable");
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 60,
        "only {} files",
        report.files_scanned
    );
    assert!(
        report.manifests_checked > 10,
        "only {} manifests",
        report.manifests_checked
    );
    let unsuppressed: Vec<String> = report.unsuppressed().map(|f| f.render()).collect();
    assert!(
        unsuppressed.is_empty(),
        "unsuppressed lint findings:\n{}",
        unsuppressed.join("\n")
    );
}

#[test]
fn every_suppression_carries_a_written_justification() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = prophunt_lint::lint_workspace(&root).expect("workspace must be scannable");
    assert!(
        !report.suppressions.is_empty(),
        "the workspace is known to carry justified suppressions"
    );
    for site in &report.suppressions {
        assert!(
            !site.reason.trim().is_empty(),
            "{}:{} suppresses {:?} without a justification",
            site.file,
            site.line,
            site.rules
        );
        // A justification must be prose, not a placeholder.
        assert!(
            site.reason.trim().len() >= 10,
            "{}:{} justification too short: {:?}",
            site.file,
            site.line,
            site.reason
        );
    }
}
