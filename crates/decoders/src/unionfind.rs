//! A union-find (cluster growth + peeling) decoder for graph-like detector error models.

use crate::Decoder;
use prophunt_circuit::DetectorErrorModel;
use prophunt_gf2::BitVec;

/// An edge of the matchable decoding graph.
#[derive(Debug, Clone)]
struct Edge {
    /// First endpoint (detector index).
    a: usize,
    /// Second endpoint (detector index, or `boundary` for weight-1 mechanisms).
    b: usize,
    /// Observable indices flipped by this edge.
    observables: Vec<usize>,
}

/// A union-find decoder in the style of Delfosse–Nickerson: grow clusters around flipped
/// detectors until every cluster is neutral (even parity or touching the boundary), then
/// peel a spanning forest of each cluster to extract a correction.
///
/// Only error mechanisms flipping one or two detectors become graph edges; mechanisms
/// with a larger detector footprint (a small minority under circuit-level depolarizing
/// noise) are ignored when building the graph, which makes this decoder slightly less
/// accurate than [`crate::BpOsdDecoder`] but considerably faster on surface codes.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    edges: Vec<Edge>,
    /// detector -> incident edge indices (boundary node excluded).
    incident: Vec<Vec<usize>>,
    num_detectors: usize,
    num_observables: usize,
    boundary: usize,
}

impl UnionFindDecoder {
    /// Builds the decoder from a detector error model, keeping only graph-like error
    /// mechanisms (one or two flipped detectors).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        let num_detectors = dem.num_detectors();
        let boundary = num_detectors;
        let mut edges = Vec::new();
        let mut incident = vec![Vec::new(); num_detectors];
        for err in dem.errors() {
            let edge = match err.detectors.len() {
                1 => Edge {
                    a: err.detectors[0],
                    b: boundary,
                    observables: err.observables.clone(),
                },
                2 => Edge {
                    a: err.detectors[0],
                    b: err.detectors[1],
                    observables: err.observables.clone(),
                },
                _ => continue,
            };
            let idx = edges.len();
            incident[edge.a].push(idx);
            if edge.b != boundary {
                incident[edge.b].push(idx);
            }
            edges.push(edge);
        }
        UnionFindDecoder {
            edges,
            incident,
            num_detectors,
            num_observables: dem.num_observables(),
            boundary,
        }
    }

    /// Returns the number of graph edges retained from the model.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Plain union-find over cluster roots with parity and boundary bookkeeping.
///
/// Between decodes the arrays sit in the *clean* (zero-syndrome) state:
/// `parent[i] == i`, `parity` all false, `touches_boundary` true only for the
/// boundary node. Every entry a decode mutates is journaled in `dirty`, so
/// [`Clusters::restore_clean`] undoes a shot in time proportional to the work
/// that shot actually did — not in the size of the graph.
struct Clusters {
    parent: Vec<usize>,
    parity: Vec<bool>,
    touches_boundary: Vec<bool>,
    /// Journal of (possibly) mutated node indices, duplicates allowed.
    dirty: Vec<usize>,
}

impl Clusters {
    fn new(num_nodes: usize) -> Self {
        Clusters {
            parent: (0..num_nodes).collect(),
            parity: vec![false; num_nodes],
            touches_boundary: (0..num_nodes).map(|i| i == num_nodes - 1).collect(),
            dirty: Vec::new(),
        }
    }

    /// Marks a defect in a clean state (the per-shot replacement for building
    /// the parity array from the whole syndrome).
    fn seed_defect(&mut self, d: usize) {
        self.parity[d] = true;
        self.dirty.push(d);
    }

    /// Returns every journaled entry to the clean zero-syndrome state.
    fn restore_clean(&mut self) {
        let last = self.parent.len() - 1;
        while let Some(i) = self.dirty.pop() {
            self.parent[i] = i;
            self.parity[i] = false;
            self.touches_boundary[i] = i == last;
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.dirty.push(x);
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        self.dirty.push(ra);
        self.dirty.push(rb);
        self.parent[rb] = ra;
        self.parity[ra] ^= self.parity[rb];
        self.touches_boundary[ra] |= self.touches_boundary[rb];
        ra
    }

    fn is_neutral(&mut self, x: usize) -> bool {
        let r = self.find(x);
        !self.parity[r] || self.touches_boundary[r]
    }
}

/// Reusable per-batch working memory for [`UnionFindDecoder`]: every vector the
/// per-shot algorithm needs, allocated once and *sparsely* reset between shots.
/// The full-size arrays hold a clean (zero-syndrome) state between decodes and
/// every decode journals what it touched (`members`, `touched_edges`,
/// `grown_edges`, `visited`, `Clusters::dirty`), so the per-shot reset cost is
/// proportional to that shot's cluster region — not to the whole graph. The
/// values the algorithm reads are exactly those a freshly allocated scratch
/// would hold, so the scratch path is bit-identical to a fresh-allocation
/// decode by construction (the whole algorithm is integer arithmetic).
struct UfScratch {
    clusters: Clusters,
    growth: Vec<u8>,
    /// Edges whose `growth` left 0 this shot (each listed once).
    touched_edges: Vec<usize>,
    in_cluster: Vec<bool>,
    /// Detectors with `in_cluster` set this shot (each listed once).
    members: Vec<usize>,
    grown_edges: Vec<usize>,
    grown_adj: Vec<Vec<(usize, usize)>>,
    active_nodes: Vec<usize>,
    newly_grown: Vec<usize>,
    dist: Vec<usize>,
    bfs_parent: Vec<Option<(usize, usize)>>,
    /// Nodes reached by the current BFS (the set with `dist` written).
    visited: Vec<usize>,
    queue: std::collections::VecDeque<usize>,
    unmatched: Vec<usize>,
}

impl UfScratch {
    fn new(decoder: &UnionFindDecoder) -> Self {
        let num_nodes = decoder.num_detectors + 1;
        UfScratch {
            clusters: Clusters::new(num_nodes),
            growth: vec![0u8; decoder.edges.len()],
            touched_edges: Vec::new(),
            in_cluster: vec![false; decoder.num_detectors],
            members: Vec::new(),
            grown_edges: Vec::new(),
            grown_adj: vec![Vec::new(); num_nodes],
            active_nodes: Vec::new(),
            newly_grown: Vec::new(),
            dist: vec![usize::MAX; num_nodes],
            bfs_parent: vec![None; num_nodes],
            visited: Vec::new(),
            queue: std::collections::VecDeque::new(),
            unmatched: Vec::new(),
        }
    }

    /// Returns every journaled entry to the clean state, in O(touched).
    fn restore_clean(&mut self, decoder: &UnionFindDecoder) {
        while let Some(ei) = self.touched_edges.pop() {
            self.growth[ei] = 0;
        }
        while let Some(d) = self.members.pop() {
            self.in_cluster[d] = false;
        }
        while let Some(ei) = self.grown_edges.pop() {
            let e = &decoder.edges[ei];
            self.grown_adj[e.a].clear();
            self.grown_adj[e.b].clear();
        }
        self.clusters.restore_clean();
    }
}

impl UnionFindDecoder {
    /// The decode kernel, parameterized over reusable scratch: grow clusters,
    /// then peel shortest grown-edge paths between matched defects. The scratch
    /// is clean on entry and restored to clean before returning, so the work
    /// (including all resets) is proportional to the defect region, not to the
    /// graph.
    fn decode_with_scratch(&self, detectors: &BitVec, s: &mut UfScratch) -> BitVec {
        let mut prediction = BitVec::zeros(self.num_observables);
        if detectors.is_zero() {
            return prediction;
        }
        let clusters = &mut s.clusters;
        for d in detectors.ones() {
            clusters.seed_defect(d);
            s.in_cluster[d] = true;
            s.members.push(d);
        }
        // Half-edge growth: each edge needs two growth increments before it joins its
        // endpoints. Grow every non-neutral cluster uniformly each stage.
        let max_stages = 2 * (self.num_detectors + 2);
        for _ in 0..max_stages {
            // Collect defective (non-neutral) cluster nodes, in ascending
            // detector order: sorting the member list reproduces exactly the
            // order a 0..num_detectors scan filtered by `in_cluster` would
            // visit, which downstream fixes the grown-edge order and hence the
            // extracted correction.
            s.members.sort_unstable();
            s.active_nodes.clear();
            for &d in &s.members {
                if !clusters.is_neutral(d) {
                    s.active_nodes.push(d);
                }
            }
            if s.active_nodes.is_empty() {
                break;
            }
            s.newly_grown.clear();
            let mut incremented = false;
            for &d in &s.active_nodes {
                for &ei in &self.incident[d] {
                    if s.growth[ei] >= 2 {
                        continue;
                    }
                    if s.growth[ei] == 0 {
                        s.touched_edges.push(ei);
                    }
                    s.growth[ei] += 1;
                    incremented = true;
                    if s.growth[ei] >= 2 {
                        s.newly_grown.push(ei);
                    }
                }
            }
            if !incremented {
                // No progress is possible (isolated defect with no growable edges).
                break;
            }
            for &ei in &s.newly_grown {
                let e = &self.edges[ei];
                clusters.union(e.a, e.b);
                if !s.in_cluster[e.a] {
                    s.in_cluster[e.a] = true;
                    s.members.push(e.a);
                }
                if e.b != self.boundary && !s.in_cluster[e.b] {
                    s.in_cluster[e.b] = true;
                    s.members.push(e.b);
                }
                s.grown_edges.push(ei);
            }
        }

        // Correction extraction: within the grown subgraph, greedily pair up defects
        // (and, when closer, match a defect to the boundary) along shortest grown-edge
        // paths, XOR-ing the observable masks of the path edges into the prediction.
        for &ei in &s.grown_edges {
            let e = &self.edges[ei];
            s.grown_adj[e.a].push((e.b, ei));
            s.grown_adj[e.b].push((e.a, ei));
        }
        s.unmatched.clear();
        s.unmatched.extend(detectors.ones());
        let unmatched = &mut s.unmatched;
        while let Some(&source) = unmatched.first() {
            // BFS from the current defect over grown edges, recording parent edges.
            let dist = &mut s.dist;
            let parent = &mut s.bfs_parent;
            let queue = &mut s.queue;
            queue.clear();
            queue.push_back(source);
            dist[source] = 0;
            s.visited.clear();
            s.visited.push(source);
            while let Some(node) = queue.pop_front() {
                for &(next, ei) in &s.grown_adj[node] {
                    if dist[next] == usize::MAX {
                        dist[next] = dist[node] + 1;
                        parent[next] = Some((node, ei));
                        s.visited.push(next);
                        queue.push_back(next);
                    }
                }
            }
            // Closest partner: another unmatched defect, or the boundary node. Ties are
            // broken in favour of a defect partner so adjacent defect pairs are matched
            // to each other rather than independently to the boundary.
            let best_defect = unmatched
                .iter()
                .skip(1)
                .copied()
                .filter(|&d| dist[d] != usize::MAX)
                .min_by_key(|&d| dist[d]);
            let target = match (best_defect, dist[self.boundary]) {
                (Some(d), db) if dist[d] <= db => d,
                (_, db) if db != usize::MAX => self.boundary,
                (Some(d), _) => d,
                (None, _) => {
                    // Isolated defect with no grown path anywhere (no incident edges in
                    // the model); nothing sensible to do but drop it.
                    unmatched.remove(0);
                    for &v in &s.visited {
                        dist[v] = usize::MAX;
                        parent[v] = None;
                    }
                    continue;
                }
            };
            // Walk the path back to the source, applying edge observables.
            let mut node = target;
            while node != source {
                let (prev, ei) = parent[node].expect("path to source exists");
                for &o in &self.edges[ei].observables {
                    prediction.flip(o);
                }
                node = prev;
            }
            unmatched.retain(|&d| d != source && d != target);
            // Sparse reset of the BFS arrays: only reached nodes were written.
            for &v in &s.visited {
                dist[v] = usize::MAX;
                parent[v] = None;
            }
        }
        s.restore_clean(self);
        prediction
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, detectors: &BitVec) -> BitVec {
        self.decode_with_scratch(detectors, &mut UfScratch::new(self))
    }

    /// Batch path of the frame engine: one scratch allocation for the whole
    /// batch instead of one per shot. Identical to per-shot [`Decoder::decode`]
    /// because both run `UnionFindDecoder::decode_with_scratch`.
    fn decode_batch(&self, shots: &[BitVec]) -> Vec<BitVec> {
        let mut scratch = UfScratch::new(self);
        shots
            .iter()
            .map(|shot| self.decode_with_scratch(shot, &mut scratch))
            .collect()
    }

    fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    fn num_observables(&self) -> usize {
        self.num_observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn repetition_dem(p: f64) -> DetectorErrorModel {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn zero_syndrome_gives_zero_prediction() {
        let dem = repetition_dem(1e-3);
        let decoder = UnionFindDecoder::new(&dem);
        assert!(decoder.num_edges() > 0);
        assert!(decoder
            .decode(&BitVec::zeros(dem.num_detectors()))
            .is_zero());
    }

    #[test]
    fn single_edge_syndromes_are_matched_exactly() {
        let dem = repetition_dem(1e-3);
        let decoder = UnionFindDecoder::new(&dem);
        for err in dem.errors().iter().filter(|e| e.detectors.len() <= 2) {
            let mut syndrome = BitVec::zeros(dem.num_detectors());
            for &d in &err.detectors {
                syndrome.set(d, true);
            }
            let mut expected = BitVec::zeros(dem.num_observables());
            for &o in &err.observables {
                expected.set(o, true);
            }
            assert_eq!(
                decoder.decode(&syndrome),
                expected,
                "edge syndrome {:?} mismatch",
                err.detectors
            );
        }
    }

    #[test]
    fn repetition_code_shots_decode_correctly_at_low_noise() {
        let dem = repetition_dem(3e-3);
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(21);
        let mut failures = 0;
        for _ in 0..400 {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        assert!(
            failures <= 4,
            "too many union-find failures: {failures}/400"
        );
    }

    #[test]
    fn decode_batch_equals_per_shot_decode_on_sampled_shots() {
        let dem = repetition_dem(2e-2);
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(17);
        let shots: Vec<BitVec> = (0..80).map(|_| sampler.sample().0).collect();
        let batch = decoder.decode_batch(&shots);
        assert_eq!(batch.len(), shots.len());
        for (shot, prediction) in shots.iter().zip(&batch) {
            assert_eq!(&decoder.decode(shot), prediction);
        }
    }

    #[test]
    fn surface_code_low_noise_failure_rate_is_small() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-3));
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(5);
        let mut failures = 0;
        let shots = 300;
        for _ in 0..shots {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        assert!(
            failures < shots / 10,
            "union-find failure rate unexpectedly high: {failures}/{shots}"
        );
    }
}
