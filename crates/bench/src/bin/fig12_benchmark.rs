//! Figure 12: PropHunt vs the coloration-circuit baseline (and the hand-designed circuit
//! where one exists) across the benchmark code suite.
//!
//! One shared `Session` runs the whole figure: each code's `OptimizeJob` followed by
//! the `LerJob` sweep of its baseline, optimized and hand-designed schedules.

use prophunt_api::{ExperimentSpec, NoiseSpec, OptimizeJob, ScheduleSource, Session, ShotBudget};
use prophunt_bench::{
    bench_session, benchmark_suite, run_ler_point, stage_seed, write_bench_report,
};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::Json;
use prophunt_qec::CssCode;

/// Stage label of the optimization jobs (mixed with `PROPHUNT_SEED`).
const OPTIMIZE_STAGE: u64 = 1;
/// Stage label of the LER sweep points.
const LER_STAGE: u64 = 21;

fn optimize(
    session: &mut Session,
    code: &CssCode,
    rounds: usize,
    full: bool,
) -> (ScheduleSpec, ReportRecord) {
    let baseline = ScheduleSpec::coloration(code);
    let spec = ExperimentSpec::builder()
        .code(code.clone())
        .schedule(ScheduleSource::Explicit(baseline.clone()))
        .rounds(rounds)
        .build()
        .expect("coloration schedule is valid");
    let mut job =
        OptimizeJob::new(spec).with_seed(stage_seed(session.runtime().config(), OPTIMIZE_STAGE));
    if full {
        job = job.paper_profile();
    } else {
        job = job.with_iterations(3).with_samples(30);
    }
    let outcome = session
        .run_optimize_quiet(&job)
        .expect("optimization job must run");
    let result = &outcome.result;
    println!(
        "== {} (depth {} -> {}, {} changes, {} in {:.1}s) ==",
        code,
        baseline.depth().unwrap(),
        result.final_depth(),
        result.total_changes_applied(),
        outcome.stop.as_str(),
        outcome.wall.as_secs_f64(),
    );
    let record = ReportRecord::Table {
        name: "fig12_optimization".into(),
        fields: vec![
            ("code".into(), Json::Str(code.name().to_string())),
            (
                "baseline_depth".into(),
                Json::UInt(baseline.depth().unwrap() as u64),
            ),
            (
                "final_depth".into(),
                Json::UInt(result.final_depth() as u64),
            ),
            (
                "changes".into(),
                Json::UInt(result.total_changes_applied() as u64),
            ),
            ("stop".into(), Json::Str(outcome.stop.as_str().to_string())),
            ("wall_s".into(), Json::Float(outcome.wall.as_secs_f64())),
        ],
    };
    (result.final_schedule.clone(), record)
}

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let shots = if full { 20_000 } else { 1_200 };
    let ps: &[f64] = if full {
        &[1e-3, 2e-3, 5e-3, 1e-2]
    } else {
        &[2e-3, 8e-3]
    };
    let mut session = bench_session();
    let mut records = Vec::new();
    println!("Figure 12: logical error rates, coloration start vs PropHunt end vs hand-designed");
    for bench in benchmark_suite(full) {
        let code = &bench.code;
        let rounds = bench.rounds.min(3);
        let baseline = ScheduleSpec::coloration(code);
        let (optimized, record) = optimize(&mut session, code, rounds, full);
        records.push(record);
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "p", "coloration", "prophunt", "hand"
        );
        for &p in ps {
            let noise = NoiseSpec::uniform(p);
            let budget = ShotBudget::fixed(shots);
            let before = run_ler_point(
                &mut session,
                code,
                &baseline,
                rounds,
                noise,
                budget,
                LER_STAGE,
            );
            let after = run_ler_point(
                &mut session,
                code,
                &optimized,
                rounds,
                noise,
                budget,
                LER_STAGE,
            );
            let hand = bench
                .hand_designed
                .as_ref()
                .map(|h| run_ler_point(&mut session, code, h, rounds, noise, budget, LER_STAGE));
            records.push(before.to_record(format!("{}/coloration", code.name())));
            records.push(after.to_record(format!("{}/prophunt", code.name())));
            if let Some(h) = &hand {
                records.push(h.to_record(format!("{}/hand", code.name())));
            }
            let before = before.combined.rate();
            let after = after.combined.rate();
            match &hand {
                Some(h) => println!(
                    "{p:>10.4} {before:>14.5} {after:>14.5} {:>14.5}",
                    h.combined.rate()
                ),
                None => println!("{p:>10.4} {before:>14.5} {after:>14.5} {:>14}", "-"),
            }
        }
    }
    let path = write_bench_report("fig12_benchmark", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
