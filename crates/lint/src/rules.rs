//! The lint rules and the per-file rule engine.
//!
//! Each rule encodes an invariant the workspace otherwise keeps only by
//! convention (see the rule table in the repository README). Rules are
//! token-level heuristics, not type analysis: they are tuned to have zero
//! false positives on the current workspace, and anything a rule gets wrong
//! can be silenced — with a written justification — by a suppression comment
//! on the offending line or the line above:
//!
//! ```text
//! // lint: allow(no-wall-clock) — timing-only: feeds wall_s, never the counts
//! let t0 = Instant::now();
//! ```
//!
//! A suppression without a justification (or naming an unknown rule) is
//! itself a diagnostic (`S0-suppression`) and cannot be suppressed.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// The lint rules. `D1`–`D6` scan Rust sources; `D7` scans `Cargo.toml`
/// manifests; `S0` guards the suppression syntax itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime` forbidden in deterministic-path crates.
    NoWallClock,
    /// Unordered iteration over `HashMap`/`HashSet` in deterministic-path
    /// crates must be converted to sorted order or justified.
    NoHashIter,
    /// Thread creation is the runtime crate's job alone.
    NoThreadSpawn,
    /// Ambient RNG (`thread_rng`, `OsRng`, entropy seeding) is forbidden
    /// everywhere; all randomness flows from `SeedStream`.
    NoAmbientRng,
    /// Every crate root must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `unwrap`/`expect`/`panic!` in user-input crates (cli, formats).
    NoPanicOnUserInput,
    /// Every Cargo dependency must be a workspace crate or vendored.
    VendoredDepsOnly,
    /// Malformed suppression comment (unknown rule or missing justification).
    Suppression,
}

/// All source/manifest rules in display order (excludes [`Rule::Suppression`],
/// which is emitted by the engine itself, not matched).
pub const ALL_RULES: [Rule; 7] = [
    Rule::NoWallClock,
    Rule::NoHashIter,
    Rule::NoThreadSpawn,
    Rule::NoAmbientRng,
    Rule::ForbidUnsafe,
    Rule::NoPanicOnUserInput,
    Rule::VendoredDepsOnly,
];

impl Rule {
    /// Short code (`"D1"`…`"D7"`, `"S0"`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoWallClock => "D1",
            Rule::NoHashIter => "D2",
            Rule::NoThreadSpawn => "D3",
            Rule::NoAmbientRng => "D4",
            Rule::ForbidUnsafe => "D5",
            Rule::NoPanicOnUserInput => "D6",
            Rule::VendoredDepsOnly => "D7",
            Rule::Suppression => "S0",
        }
    }

    /// Kebab-case name, as written in `allow(...)` clauses.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoThreadSpawn => "no-thread-spawn",
            Rule::NoAmbientRng => "no-ambient-rng",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::NoPanicOnUserInput => "no-panic-on-user-input",
            Rule::VendoredDepsOnly => "vendored-deps-only",
            Rule::Suppression => "suppression",
        }
    }

    /// Display id: `code-name`, e.g. `D1-no-wall-clock`.
    pub fn id(self) -> String {
        format!("{}-{}", self.code(), self.name())
    }

    /// Resolves an `allow(...)` argument (code, name, or `code-name`).
    pub fn from_str_any(s: &str) -> Option<Rule> {
        let all = [
            Rule::NoWallClock,
            Rule::NoHashIter,
            Rule::NoThreadSpawn,
            Rule::NoAmbientRng,
            Rule::ForbidUnsafe,
            Rule::NoPanicOnUserInput,
            Rule::VendoredDepsOnly,
        ];
        all.into_iter()
            .find(|r| s == r.code() || s == r.name() || s == r.id())
    }

    /// Whether the rule constrains Rust sources of the crate with directory
    /// name `crate_key` (`"maxsat"`, `"circuit"`, …, `"suite"` for the
    /// umbrella sources at the repository root).
    pub fn applies_to(self, crate_key: &str) -> bool {
        /// Crates on the deterministic path: fixed `(seed, chunk_size)` must
        /// be bit-identical at any thread count, on any machine.
        const DETERMINISTIC: [&str; 7] = [
            "maxsat", "circuit", "qec", "gf2", "decoders", "search", "prophunt",
        ];
        match self {
            Rule::NoWallClock => DETERMINISTIC.contains(&crate_key),
            // The session cache (api) and the worker pool (runtime) sit on the
            // deterministic path too; their maps must not leak hash order.
            Rule::NoHashIter => {
                DETERMINISTIC.contains(&crate_key) || crate_key == "api" || crate_key == "runtime"
            }
            Rule::NoThreadSpawn => crate_key != "runtime",
            Rule::NoAmbientRng => true,
            Rule::ForbidUnsafe => true,
            Rule::NoPanicOnUserInput => crate_key == "cli" || crate_key == "formats",
            Rule::VendoredDepsOnly | Rule::Suppression => false,
        }
    }
}

/// One diagnostic, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The justification of the suppression covering this finding, if any.
    pub suppressed_by: Option<String>,
}

impl Finding {
    /// Renders the diagnostic in the canonical
    /// `file:line:col · RULE-ID · message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} · {} · {}{}",
            self.file,
            self.line,
            self.col,
            self.rule.id(),
            self.message,
            match &self.suppressed_by {
                Some(reason) => format!(" [suppressed: {reason}]"),
                None => String::new(),
            }
        )
    }
}

/// A parsed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionSite {
    /// Rules the comment allows.
    pub rules: Vec<Rule>,
    /// The written justification (always non-empty on a well-formed site).
    pub reason: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// First line the suppression covers.
    pub from_line: usize,
    /// Last line the suppression covers: the first *code* line after the
    /// comment (continuation comment lines are skipped), so a site works
    /// trailing the offending line, directly above it, or atop a multi-line
    /// justification block.
    pub to_line: usize,
}

/// Iteration-ordered `HashMap`/`HashSet` methods (D2).
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Panicking constructs on the user-input path (D6).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Lints one Rust source file.
///
/// `crate_key` is the crate's directory name under `crates/` (the umbrella
/// sources at the repository root use `"suite"`); `rel_path` is the
/// workspace-relative path used in diagnostics; `is_crate_root` enables the
/// D5 `#![forbid(unsafe_code)]` check.
///
/// Returns every finding, including suppressed ones (callers filter on
/// [`Finding::suppressed_by`]), plus the suppression sites encountered.
pub fn lint_source(
    crate_key: &str,
    rel_path: &str,
    source: &str,
    is_crate_root: bool,
) -> (Vec<Finding>, Vec<SuppressionSite>) {
    let lexed = lex(source);
    let in_test = test_regions(&lexed.tokens);
    let (sites, mut findings) = parse_suppressions(&lexed.comments, rel_path);

    let toks = &lexed.tokens;
    let flag = |findings: &mut Vec<Finding>, rule: Rule, tok: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            suppressed_by: None,
        });
    };

    if is_crate_root && !has_forbid_unsafe(toks) {
        findings.push(Finding {
            rule: Rule::ForbidUnsafe,
            file: rel_path.to_string(),
            line: 1,
            col: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            suppressed_by: None,
        });
    }

    let hash_names = if Rule::NoHashIter.applies_to(crate_key) {
        collect_hash_typed_names(toks)
    } else {
        Vec::new()
    };

    for i in 0..toks.len() {
        if in_test[i] || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let t = &toks[i];
        let text = t.text.as_str();

        if Rule::NoWallClock.applies_to(crate_key) {
            if text == "Instant" && path_follows(toks, i, &["now"]) {
                flag(
                    &mut findings,
                    Rule::NoWallClock,
                    t,
                    "Instant::now() on the deterministic path: results must not depend on \
                     wall-clock time"
                        .to_string(),
                );
            }
            if text == "SystemTime" {
                flag(
                    &mut findings,
                    Rule::NoWallClock,
                    t,
                    "SystemTime on the deterministic path: results must not depend on \
                     wall-clock time"
                        .to_string(),
                );
            }
        }

        if Rule::NoThreadSpawn.applies_to(crate_key)
            && text == "thread"
            && (path_follows(toks, i, &["spawn"])
                || path_follows(toks, i, &["scope"])
                || path_follows(toks, i, &["Builder"]))
        {
            flag(
                &mut findings,
                Rule::NoThreadSpawn,
                t,
                "thread creation outside prophunt-runtime: all parallelism goes through \
                 the deterministic worker pool"
                    .to_string(),
            );
        }

        if Rule::NoAmbientRng.applies_to(crate_key) {
            if text == "thread_rng" || text == "OsRng" || text == "from_entropy" {
                flag(
                    &mut findings,
                    Rule::NoAmbientRng,
                    t,
                    format!("ambient RNG `{text}`: all randomness must flow from SeedStream"),
                );
            }
            if text == "rand" && path_follows(toks, i, &["random"]) {
                flag(
                    &mut findings,
                    Rule::NoAmbientRng,
                    t,
                    "ambient RNG `rand::random`: all randomness must flow from SeedStream"
                        .to_string(),
                );
            }
        }

        if Rule::NoHashIter.applies_to(crate_key)
            && !hash_names.is_empty()
            && HASH_ITER_METHODS.contains(&text)
            && prev_is(toks, i, ".")
            && i >= 2
            && toks[i - 2].kind == TokenKind::Ident
            && hash_names.contains(&toks[i - 2].text)
        {
            flag(
                &mut findings,
                Rule::NoHashIter,
                t,
                format!(
                    "`{}.{}()` iterates a hash collection in arbitrary order on the \
                     deterministic path: convert to sorted/BTree order or justify why \
                     order cannot matter",
                    toks[i - 2].text,
                    text
                ),
            );
        }

        // `for x in [&[mut]] map {` — direct iteration without a method call.
        if Rule::NoHashIter.applies_to(crate_key) && !hash_names.is_empty() && text == "in" {
            let mut j = i + 1;
            while j < toks.len() && (toks[j].text == "&" || toks[j].text == "mut") {
                j += 1;
            }
            if j + 1 < toks.len()
                && toks[j].kind == TokenKind::Ident
                && hash_names.contains(&toks[j].text)
                && toks[j + 1].text == "{"
            {
                flag(
                    &mut findings,
                    Rule::NoHashIter,
                    &toks[j],
                    format!(
                        "`for … in {}` iterates a hash collection in arbitrary order on \
                         the deterministic path: convert to sorted/BTree order or justify \
                         why order cannot matter",
                        toks[j].text
                    ),
                );
            }
        }

        if Rule::NoPanicOnUserInput.applies_to(crate_key) {
            if (text == "unwrap" || text == "expect") && prev_is(toks, i, ".") {
                flag(
                    &mut findings,
                    Rule::NoPanicOnUserInput,
                    t,
                    format!(
                        "`.{text}()` on the user-input path: return a typed error \
                         (exit code 1/2) instead of panicking"
                    ),
                );
            }
            if PANIC_MACROS.contains(&text) && next_is(toks, i, "!") {
                flag(
                    &mut findings,
                    Rule::NoPanicOnUserInput,
                    t,
                    format!(
                        "`{text}!` on the user-input path: return a typed error \
                         (exit code 1/2) instead of panicking"
                    ),
                );
            }
        }
    }

    apply_suppressions(&mut findings, &sites);
    (findings, sites)
}

/// Marks token index ranges belonging to `#[cfg(test)]` / `#[test]` items.
fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let attr_start = i;
            let Some(attr_end) = matching(toks, i + 1, "[", "]") else {
                break;
            };
            if attr_is_test(&toks[i + 2..attr_end]) {
                let item_end = item_end_after(toks, attr_end + 1);
                for flag in &mut in_test[attr_start..=item_end.min(toks.len() - 1)] {
                    *flag = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// True for `cfg(test)`, `cfg(any(test, …))`, `test`, `cfg_attr(test, …)`.
fn attr_is_test(inner: &[Token]) -> bool {
    match inner.first().map(|t| t.text.as_str()) {
        Some("test") => true,
        Some("cfg") | Some("cfg_attr") => inner.iter().any(|t| t.text == "test"),
        _ => false,
    }
}

/// Index of the `]`/`}`/`)` matching the opener at `open_idx`.
fn matching(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `start` (after its
/// attributes): the matching `}` of its first top-level brace, or the first
/// top-level `;`, whichever comes first.
fn item_end_after(toks: &[Token], start: usize) -> usize {
    let (mut parens, mut brackets) = (0i32, 0i32);
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => parens += 1,
            ")" => parens -= 1,
            "[" => brackets += 1,
            "]" => brackets -= 1,
            "{" if parens == 0 && brackets == 0 => {
                return matching(toks, j, "{", "}").unwrap_or(toks.len() - 1);
            }
            ";" if parens == 0 && brackets == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// True if the crate root carries `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// True if tokens after `i` spell `:: seg1 [:: seg2 …]` for `segs`.
fn path_follows(toks: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in segs {
        if !(j + 2 < toks.len() + 1
            && toks.get(j).is_some_and(|t| t.text == ":")
            && toks.get(j + 1).is_some_and(|t| t.text == ":")
            && toks.get(j + 2).is_some_and(|t| t.text == *seg))
        {
            return false;
        }
        j += 3;
    }
    true
}

fn prev_is(toks: &[Token], i: usize, text: &str) -> bool {
    i >= 1 && toks[i - 1].text == text
}

fn next_is(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.text == text)
}

/// Collects identifiers declared (or typed) as `HashMap`/`HashSet` in this
/// file: `name: …HashMap<…>` field/param/let-type forms and
/// `name = …HashMap::new()` initializer forms.
fn collect_hash_typed_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
            continue;
        }
        // Walk back over path segments (`std :: collections ::`) and
        // reference sigils to the `:` or `=` introducing this type/value.
        let mut j = i;
        while j >= 1 {
            let prev = toks[j - 1].text.as_str();
            if prev == ":" && j >= 2 && toks[j - 2].text == ":" {
                j -= 2; // `::` path separator
                continue;
            }
            if matches!(prev, "&" | "mut")
                || (toks[j - 1].kind == TokenKind::Ident && prev != "in" && prev != "let")
            {
                j -= 1;
                continue;
            }
            break;
        }
        if j >= 2 && (toks[j - 1].text == ":" || toks[j - 1].text == "=") {
            let name = &toks[j - 2];
            if name.kind == TokenKind::Ident && !names.contains(&name.text) {
                names.push(name.text.clone());
            }
        }
    }
    names
}

/// Parses suppression comments; returns the well-formed sites and `S0`
/// findings for malformed ones.
pub(crate) fn parse_suppressions(
    comments: &[Comment],
    rel_path: &str,
) -> (Vec<SuppressionSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for comment in comments {
        let Some(idx) = comment.text.find("lint:") else {
            continue;
        };
        let body = comment.text[idx + "lint:".len()..].trim();
        let mut malformed = |message: String| {
            findings.push(Finding {
                rule: Rule::Suppression,
                file: rel_path.to_string(),
                line: comment.line,
                col: 1,
                message,
                suppressed_by: None,
            });
        };
        let Some(args) = body.strip_prefix("allow") else {
            malformed(format!(
                "malformed lint comment (expected `lint: allow(<rule>) — <reason>`): {:?}",
                comment.text
            ));
            continue;
        };
        let args = args.trim_start();
        let (Some(open), Some(close)) = (args.find('('), args.find(')')) else {
            malformed("suppression is missing its (<rule>) list".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut bad_rule = false;
        for part in args[open + 1..close].split(',') {
            match Rule::from_str_any(part.trim()) {
                Some(rule) => rules.push(rule),
                None => {
                    malformed(format!(
                        "suppression names an unknown rule {:?}",
                        part.trim()
                    ));
                    bad_rule = true;
                }
            }
        }
        if bad_rule {
            continue;
        }
        if rules.is_empty() {
            malformed("suppression allows no rules".to_string());
            continue;
        }
        // Everything after the `)` — minus a leading dash of any flavour —
        // is the justification, and it must exist.
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-'])
            .trim();
        if reason.is_empty() {
            malformed(
                "suppression is missing its written justification \
                 (`lint: allow(<rule>) — <reason>`)"
                    .to_string(),
            );
            continue;
        }
        // Coverage extends to the first code line after the comment: a
        // justification may continue across further comment lines (or sit in a
        // stack of suppressions), and the line it guards is the one below the
        // whole block. Continuation lines that aren't themselves suppressions
        // are folded into the justification text.
        let mut reason = reason.to_string();
        let mut to_line = comment.end_line + 1;
        while let Some(next) = comments.iter().find(|c| c.line == to_line) {
            if !next.text.contains("lint:") {
                reason.push(' ');
                reason.push_str(next.text.trim());
            }
            to_line = next.end_line + 1;
        }
        sites.push(SuppressionSite {
            rules,
            reason,
            file: rel_path.to_string(),
            line: comment.line,
            from_line: comment.line,
            to_line,
        });
    }
    (sites, findings)
}

/// Marks findings covered by a suppression site (same rule, finding line
/// within the site's covered range). `S0` findings are never suppressible.
pub(crate) fn apply_suppressions(findings: &mut [Finding], sites: &[SuppressionSite]) {
    for finding in findings.iter_mut() {
        if finding.rule == Rule::Suppression {
            continue;
        }
        if let Some(site) = sites.iter().find(|s| {
            s.rules.contains(&finding.rule)
                && finding.line >= s.from_line
                && finding.line <= s.to_line
        }) {
            finding.suppressed_by = Some(site.reason.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
        findings
            .iter()
            .filter(|f| f.suppressed_by.is_none())
            .collect()
    }

    #[test]
    fn rule_ids_round_trip_through_allow_syntax() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_str_any(rule.name()), Some(rule));
            assert_eq!(Rule::from_str_any(rule.code()), Some(rule));
            assert_eq!(Rule::from_str_any(&rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_str_any("nonsense"), None);
    }

    #[test]
    fn wall_clock_flagged_only_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let (findings, _) = lint_source("maxsat", "x.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoWallClock);
        assert_eq!((findings[0].line, findings[0].col), (1, 18));
        let (findings, _) = lint_source("obs", "x.rs", src, false);
        assert!(findings.is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_and_without_reason_errors() {
        let good = "// lint: allow(no-wall-clock) — timing seam, stats only\n\
                    let t = Instant::now();\n";
        let (findings, sites) = lint_source("maxsat", "x.rs", good, false);
        assert_eq!(unsuppressed(&findings).len(), 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].reason, "timing seam, stats only");

        let bare = "// lint: allow(no-wall-clock)\nlet t = Instant::now();\n";
        let (findings, _) = lint_source("maxsat", "x.rs", bare, false);
        assert!(findings.iter().any(|f| f.rule == Rule::Suppression));
        assert!(findings
            .iter()
            .any(|f| f.rule == Rule::NoWallClock && f.suppressed_by.is_none()));
    }

    #[test]
    fn hash_iteration_found_and_lookup_is_clean() {
        let src = "\
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _ = m.get(&1);
    for (k, v) in m.iter() { let _ = (k, v); }
}
";
        let (findings, _) = lint_source("circuit", "x.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoHashIter);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { let i = Instant::now(); let r = thread_rng(); }
}
";
        let (findings, _) = lint_source("maxsat", "x.rs", src, false);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "const DOC: &str = \"Instant::now() thread_rng()\"; // Instant::now()\n";
        let (findings, _) = lint_source("maxsat", "x.rs", src, false);
        assert!(findings.is_empty());
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let (findings, _) = lint_source("obs", "lib.rs", "pub fn f() {}\n", true);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::ForbidUnsafe);
        let (findings, _) = lint_source(
            "obs",
            "lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            true,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn unwrap_in_cli_flagged_unwrap_or_else_is_not() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3); x.unwrap() }\n";
        let (findings, _) = lint_source("cli", "x.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unwrap"));
        let (findings, _) = lint_source("qec", "x.rs", src, false);
        assert!(findings.is_empty(), "D6 only constrains cli/formats");
    }
}
