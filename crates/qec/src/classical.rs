//! Classical linear codes used as ingredients of product constructions.

use prophunt_gf2::BitMatrix;
use rand::Rng;

/// A classical binary linear code described by a parity-check matrix `H`.
///
/// Classical codes enter the PropHunt suite as the factors of hypergraph-product and
/// lifted-product constructions ([`crate::product`]).
///
/// # Example
///
/// ```
/// use prophunt_qec::ClassicalCode;
///
/// let rep = ClassicalCode::repetition(5);
/// assert_eq!((rep.n(), rep.k()), (5, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalCode {
    h: BitMatrix,
}

impl ClassicalCode {
    /// Wraps an arbitrary parity-check matrix.
    pub fn from_parity_check(h: BitMatrix) -> Self {
        ClassicalCode { h }
    }

    /// The `[n, 1, n]` repetition code with a chain of `n − 1` weight-2 checks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn repetition(n: usize) -> Self {
        assert!(n >= 2, "repetition code needs n >= 2");
        let mut h = BitMatrix::zeros(n - 1, n);
        for i in 0..n - 1 {
            h.set(i, i, true);
            h.set(i, i + 1, true);
        }
        ClassicalCode { h }
    }

    /// The cyclic (ring) repetition code: `n` weight-2 checks with wrap-around, rank `n − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring_repetition(n: usize) -> Self {
        assert!(n >= 2, "ring repetition code needs n >= 2");
        let mut h = BitMatrix::zeros(n, n);
        for i in 0..n {
            h.set(i, i, true);
            h.set(i, (i + 1) % n, true);
        }
        ClassicalCode { h }
    }

    /// The `[7, 4, 3]` Hamming code.
    pub fn hamming_7_4() -> Self {
        ClassicalCode {
            h: BitMatrix::from_rows_u8(&[
                &[1, 0, 1, 0, 1, 0, 1],
                &[0, 1, 1, 0, 0, 1, 1],
                &[0, 0, 0, 1, 1, 1, 1],
            ]),
        }
    }

    /// A random (column-weight ≈ `col_weight`) LDPC parity-check matrix with `rows`
    /// checks over `n` bits. Intended for generating hypergraph-product test inputs; no
    /// distance guarantee is made.
    pub fn random_ldpc<R: Rng>(n: usize, rows: usize, col_weight: usize, rng: &mut R) -> Self {
        let mut h = BitMatrix::zeros(rows, n);
        for c in 0..n {
            let mut placed = 0;
            let mut attempts = 0;
            while placed < col_weight && attempts < 100 {
                let r = rng.gen_range(0..rows);
                if !h.get(r, c) {
                    h.set(r, c, true);
                    placed += 1;
                }
                attempts += 1;
            }
        }
        ClassicalCode { h }
    }

    /// Returns the parity-check matrix.
    pub fn parity_check(&self) -> &BitMatrix {
        &self.h
    }

    /// Returns the block length `n`.
    pub fn n(&self) -> usize {
        self.h.num_cols()
    }

    /// Returns the code dimension `k = n − rank(H)`.
    pub fn k(&self) -> usize {
        self.n() - self.h.rank()
    }

    /// Returns the number of parity checks (rows of `H`, possibly redundant).
    pub fn num_checks(&self) -> usize {
        self.h.num_rows()
    }

    /// Computes the exact minimum distance by exhaustive search over codewords.
    ///
    /// Only feasible for small `k`; returns `None` when `k > 20` or the code has
    /// dimension zero.
    pub fn exact_distance(&self) -> Option<usize> {
        let k = self.k();
        if k == 0 || k > 20 {
            return None;
        }
        let basis = self.h.kernel_basis();
        let mut best = usize::MAX;
        for mask in 1u64..(1u64 << k) {
            let mut v = prophunt_gf2::BitVec::zeros(self.n());
            for (i, row) in basis.rows_iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    v.xor_assign_with(row);
                }
            }
            best = best.min(v.weight());
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repetition_parameters() {
        let c = ClassicalCode::repetition(7);
        assert_eq!(c.n(), 7);
        assert_eq!(c.k(), 1);
        assert_eq!(c.num_checks(), 6);
        assert_eq!(c.exact_distance(), Some(7));
    }

    #[test]
    fn ring_repetition_has_redundant_check() {
        let c = ClassicalCode::ring_repetition(6);
        assert_eq!(c.n(), 6);
        assert_eq!(c.k(), 1);
        assert_eq!(c.num_checks(), 6);
        assert_eq!(c.parity_check().rank(), 5);
    }

    #[test]
    fn hamming_code_parameters() {
        let c = ClassicalCode::hamming_7_4();
        assert_eq!(c.n(), 7);
        assert_eq!(c.k(), 4);
        assert_eq!(c.exact_distance(), Some(3));
    }

    #[test]
    fn random_ldpc_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = ClassicalCode::random_ldpc(20, 10, 3, &mut rng);
        assert_eq!(c.n(), 20);
        assert_eq!(c.num_checks(), 10);
        // Every column has the requested weight (10 rows >> 3, so placement succeeds).
        for col in 0..20 {
            assert_eq!(c.parity_check().column(col).weight(), 3);
        }
    }

    #[test]
    fn exact_distance_bails_on_large_dimension() {
        let h = BitMatrix::zeros(1, 30);
        let c = ClassicalCode::from_parity_check(h);
        assert_eq!(c.exact_distance(), None);
    }
}
