//! Dense linear algebra over the two-element field GF(2).
//!
//! Quantum error correction over CSS codes is, at the classical-processing level, linear
//! algebra modulo two: parity-check matrices, logical-observable matrices, syndromes,
//! error vectors, row spaces and kernels. Every higher-level crate of the PropHunt suite
//! ([`prophunt-qec`](https://docs.rs/prophunt-qec), `prophunt-circuit`, `prophunt`)
//! builds on the two types exported here:
//!
//! * [`BitVec`] — a fixed-length vector over GF(2), packed 64 bits per word, and
//! * [`BitMatrix`] — a dense matrix over GF(2) stored as a list of [`BitVec`] rows.
//!
//! The matrix type provides the operations the paper's ambiguity analysis needs:
//! Gaussian elimination ([`BitMatrix::row_echelon`]), [`BitMatrix::rank`], row-space
//! membership ([`BitMatrix::row_space_contains`]), kernel bases
//! ([`BitMatrix::kernel_basis`]) and linear solving ([`BitMatrix::solve`]).
//!
//! # Example
//!
//! ```
//! use prophunt_gf2::{BitMatrix, BitVec};
//!
//! // The Z-type parity checks of the distance-3 rotated surface code.
//! let hz = BitMatrix::from_rows_u8(&[
//!     &[0, 1, 1, 0, 1, 1, 0, 0, 0],
//!     &[0, 0, 0, 1, 1, 0, 1, 1, 0],
//!     &[1, 1, 0, 0, 0, 0, 0, 0, 0],
//!     &[0, 0, 0, 0, 0, 0, 0, 1, 1],
//! ]);
//! // An X error on the central data qubit flips the first two checks.
//! let mut e = BitVec::zeros(9);
//! e.set(4, true);
//! let syndrome = hz.mul_vec(&e);
//! assert_eq!(syndrome.ones().collect::<Vec<_>>(), vec![0, 1]);
//! assert_eq!(hz.rank(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod matrix;

pub use bitvec::{transpose_lane_words, BitVec};
pub use matrix::{BitMatrix, RowEchelon};

/// Errors produced by GF(2) linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gf2Error {
    /// Two operands had incompatible dimensions.
    ///
    /// The fields are the offending dimensions in the order they were encountered.
    DimensionMismatch {
        /// Dimension supplied by the left-hand / first operand.
        left: usize,
        /// Dimension supplied by the right-hand / second operand.
        right: usize,
    },
}

impl std::fmt::Display for Gf2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gf2Error::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for Gf2Error {}
