//! Simulated annealing over commutation-preserving schedule mutations.

use crate::moves::MoveSet;
use crate::strategy::{Incumbent, Proposal, SearchContext, Strategy};
use prophunt_circuit::schedule::eval::ScheduleEval;
use prophunt_obs::Counter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated annealing over the shared move neighborhood (reorders, same-kind
/// swaps, paired cross-kind swaps, stabilizer promotion — see the `moves`
/// module).
///
/// Each round evaluates `proposals_per_round` seeded random moves by mutating
/// one [`ScheduleEval`] in place: an accepted move keeps the incrementally
/// relayered state, a rejected one is undone with
/// [`ScheduleEval::revert`] — no per-proposal schedule clone or from-scratch
/// validation. Non-worsening moves are always taken, worsening moves with
/// probability `exp(-Δdepth / T)`, and the temperature decays by the
/// configured `cooling` factor per round — the classic schedule-free
/// exploration arm of the portfolio, after Sato & Suzuki's observation that
/// permuted-ordering restarts escape the minima greedy descent gets stuck in.
///
/// Incumbent policy: re-anneals *from* the incumbent when the incumbent is
/// strictly shallower than the instance's own best — exploration continues,
/// but never from a point the portfolio has already beaten.
#[derive(Debug)]
pub struct Annealing {
    moves: MoveSet,
    eval: ScheduleEval,
    best: Proposal,
    temperature: f64,
    cooling: f64,
    proposals_per_round: usize,
    /// Hoisted `search.anneal.accepts` / `.reverts` counter handles (None when
    /// the context's observability is disabled).
    accepts: Option<Counter>,
    reverts: Option<Counter>,
}

impl Annealing {
    /// Creates an instance annealing from the context's initial schedule.
    pub fn new(ctx: &SearchContext) -> Annealing {
        let eval =
            ScheduleEval::new(ctx.initial.clone()).expect("search context schedules are validated");
        let depth = eval.depth();
        Annealing {
            moves: MoveSet::new(&ctx.initial),
            eval,
            best: Proposal {
                schedule: ctx.initial.clone(),
                depth,
            },
            temperature: ctx.params.initial_temperature,
            cooling: ctx.params.cooling,
            proposals_per_round: ctx.params.proposals_per_round,
            accepts: ctx.obs.counter("search.anneal.accepts"),
            reverts: ctx.obs.counter("search.anneal.reverts"),
        }
    }
}

impl Strategy for Annealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn propose(&mut self, _round: usize, seed: u64) -> Proposal {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current_depth = self.eval.depth();
        for _ in 0..self.proposals_per_round {
            let Some(mv) = self.moves.draw(self.eval.spec(), &mut rng) else {
                continue;
            };
            let Some(depth) = self.eval.try_apply(&mv) else {
                continue;
            };
            let accept = depth <= current_depth || {
                let delta = (depth - current_depth) as f64;
                rng.gen_range(0.0..1.0) < (-delta / self.temperature.max(1e-6)).exp()
            };
            if accept {
                self.eval.commit();
                if let Some(c) = &self.accepts {
                    c.inc();
                }
                current_depth = depth;
                if depth < self.best.depth {
                    self.best = Proposal {
                        schedule: self.eval.spec().clone(),
                        depth,
                    };
                }
            } else {
                self.eval.revert();
                if let Some(c) = &self.reverts {
                    c.inc();
                }
            }
        }
        self.temperature *= self.cooling;
        self.best.clone()
    }

    fn observe(&mut self, incumbent: &Incumbent, accepted: bool) {
        if !accepted && incumbent.depth < self.best.depth {
            self.eval = ScheduleEval::new(incumbent.schedule.clone())
                .expect("portfolio incumbents are valid schedules");
            self.best = Proposal {
                schedule: incumbent.schedule.clone(),
                depth: incumbent.depth,
            };
        }
    }
}
