//! Shared helpers for the PropHunt benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the data behind every table and figure of the
//! paper's evaluation (see the root `README.md` for the experiment index and
//! recorded results); the Criterion benches in `benches/` measure the performance-
//! critical kernels (detector-error-model construction, ambiguity checking, subgraph
//! MaxSAT solving, decoding throughput).
//!
//! Since the Session/Job redesign the harness is a thin layer over
//! [`prophunt_api`]: each figure binary opens one [`Session`] (so memory
//! experiments, detector error models and decoders are shared across its grid
//! points) and runs [`prophunt_api::LerJob`]s / [`prophunt_api::OptimizeJob`]s,
//! whose [`LerOutcome`]s carry the wall-clock and shots/sec throughput recorded
//! in `BENCH_*.jsonl`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prophunt_api::{
    BasisSelection, ExperimentSpec, LerJob, LerOutcome, NoiseSpec, ScheduleSource, SearchJob,
    Session, ShotBudget, StrategyKind,
};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_decoders::LogicalErrorEstimate;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::write_report;
use prophunt_qec::product::{bivariate_bicycle, generalized_bicycle};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;
use prophunt_runtime::{RuntimeConfig, SeedStream};
use std::path::PathBuf;

/// Builds the shared [`RuntimeConfig`] used by every bench binary.
///
/// Defaults to 8 worker threads, the default chunk size and seed 0; the
/// environment variables `PROPHUNT_THREADS`, `PROPHUNT_CHUNK_SIZE` and
/// `PROPHUNT_SEED` override the respective fields. Only `PROPHUNT_THREADS`
/// may change wall-clock time — results are a function of
/// `(seed, chunk_size)` alone. The base seed is mixed with each stage's
/// fixed label through [`stage_seed`], so `PROPHUNT_SEED` rotates every
/// random stream a binary draws while stages stay decorrelated.
pub fn runtime_config_from_env() -> RuntimeConfig {
    fn env_parse(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }
    let mut config = RuntimeConfig::new(8, RuntimeConfig::DEFAULT_CHUNK_SIZE, 0);
    if let Some(threads) = env_parse("PROPHUNT_THREADS") {
        config.threads = threads as usize;
    }
    if let Some(chunk) = env_parse("PROPHUNT_CHUNK_SIZE") {
        config.chunk_size = chunk as usize;
    }
    if let Some(seed) = env_parse("PROPHUNT_SEED") {
        config.seed = seed;
    }
    config
}

/// Opens the one [`Session`] a bench binary shares across all of its jobs.
pub fn bench_session() -> Session {
    Session::new(runtime_config_from_env())
}

/// Derives the effective seed for one benchmark stage: the runtime's base
/// seed (e.g. `PROPHUNT_SEED`) mixed with the stage's fixed `label`.
///
/// Every figure/table binary labels its stages with small constants, so a
/// single base seed rotates all of their streams coherently while keeping the
/// stages decorrelated from each other.
pub fn stage_seed(runtime: &RuntimeConfig, label: u64) -> u64 {
    SeedStream::new(runtime.seed).substream(label).seed_for(0)
}

/// Writes one benchmark binary's data rows as `BENCH_<name>.jsonl` in the current
/// directory and returns the path.
///
/// This is the single code path through which every figure/table binary persists
/// its recorded outputs (the human-readable `println!` tables remain on stdout);
/// the files round-trip through [`prophunt_formats::parse_report`].
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn write_bench_report(name: &str, records: &[ReportRecord]) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.jsonl"));
    std::fs::write(&path, write_report(records))?;
    Ok(path)
}

/// A benchmark code together with its optional hand-designed schedule.
pub struct BenchmarkCode {
    /// The code.
    pub code: CssCode,
    /// The surface layout, when the code has one (unlocks hand-designed
    /// schedules and the search portfolio's permuted-ordering restarts).
    pub layout: Option<prophunt_qec::surface::SurfaceLayout>,
    /// A hand-designed schedule, when one is known (surface codes).
    pub hand_designed: Option<ScheduleSpec>,
    /// Number of syndrome-measurement rounds used in simulations (the paper uses `d`).
    pub rounds: usize,
}

/// The benchmark suite of Table 1, with the LDPC substitutions documented in `README.md`:
/// rotated surface codes d = 3, 5, 7, 9 plus generalized-bicycle and bivariate-bicycle
/// codes standing in for the paper's LP / RQT instances.
pub fn benchmark_suite(include_large: bool) -> Vec<BenchmarkCode> {
    let mut out = Vec::new();
    let distances: &[usize] = if include_large {
        &[3, 5, 7, 9]
    } else {
        &[3, 5]
    };
    for &d in distances {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let hand = ScheduleSpec::surface_hand_designed(&code, &layout);
        out.push(BenchmarkCode {
            code,
            layout: Some(layout),
            hand_designed: Some(hand),
            rounds: d.min(5),
        });
    }
    // LP-class substitute: [[18, 2]] generalized bicycle code (weight-4 stabilizers).
    out.push(BenchmarkCode {
        code: generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2"),
        layout: None,
        hand_designed: None,
        rounds: 3,
    });
    // LP-class substitute with larger block: [[36, 2]] generalized bicycle code.
    out.push(BenchmarkCode {
        code: generalized_bicycle(18, &[0, 1], &[0, 5], "gb_36_2"),
        layout: None,
        hand_designed: None,
        rounds: 3,
    });
    if include_large {
        // RQT-class substitute: the [[72, 12, 6]] bivariate bicycle code (weight-6).
        out.push(BenchmarkCode {
            code: bivariate_bicycle(
                6,
                6,
                &[(3, 0), (0, 1), (0, 2)],
                &[(0, 3), (1, 0), (2, 0)],
                "bb_72_12",
            ),
            layout: None,
            hand_designed: None,
            rounds: 3,
        });
    }
    out
}

/// Runs one combined (X + Z memory) sweep point as a [`LerJob`] through
/// `session`, seeded with [`stage_seed`]`(session runtime, stage)` — the
/// recorded outcome reproduces its failure count bit-for-bit at any thread
/// count, and carries the wall-clock/throughput fields for `BENCH_*.jsonl`.
///
/// # Panics
///
/// Panics when the schedule is invalid for the code (benchmark inputs are
/// trusted constructions).
pub fn run_ler_point(
    session: &mut Session,
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    noise: NoiseSpec,
    budget: ShotBudget,
    stage: u64,
) -> LerOutcome {
    let spec = ExperimentSpec::builder()
        .code(code.clone())
        .schedule(ScheduleSource::Explicit(schedule.clone()))
        .noise(noise)
        .rounds(rounds)
        .basis(BasisSelection::Both)
        .build()
        .expect("benchmark schedule must be valid for its code");
    let seed = stage_seed(session.runtime().config(), stage);
    let job = LerJob::new(spec).with_seed(seed).with_budget(budget);
    session
        .run_ler_quiet(&job)
        .expect("benchmark job must be runnable")
}

/// One row of the portfolio-vs-single-strategy schedule-search comparison
/// (`search_bench`, recorded in `BENCH_search.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchComparison {
    /// Code name.
    pub code: String,
    /// CNOT depth of the shared coloration starting schedule.
    pub initial_depth: usize,
    /// Final depth of the single-strategy MaxSAT-descent run.
    pub maxsat_depth: usize,
    /// Wall-clock seconds of the MaxSAT-descent run.
    pub maxsat_wall_s: f64,
    /// Final depth of the full-portfolio run.
    pub portfolio_depth: usize,
    /// Wall-clock seconds of the portfolio run.
    pub portfolio_wall_s: f64,
    /// Strategy that produced the portfolio's best schedule.
    pub portfolio_best_strategy: String,
}

impl SearchComparison {
    /// Builds the `search_comparison` table record for `BENCH_search.json`.
    pub fn to_record(&self) -> ReportRecord {
        ReportRecord::Table {
            name: "search_comparison".into(),
            fields: vec![
                (
                    "code".into(),
                    prophunt_formats::Json::Str(self.code.clone()),
                ),
                (
                    "initial_depth".into(),
                    prophunt_formats::Json::UInt(self.initial_depth as u64),
                ),
                (
                    "maxsat_depth".into(),
                    prophunt_formats::Json::UInt(self.maxsat_depth as u64),
                ),
                (
                    "maxsat_wall_s".into(),
                    prophunt_formats::Json::Float(self.maxsat_wall_s),
                ),
                (
                    "portfolio_depth".into(),
                    prophunt_formats::Json::UInt(self.portfolio_depth as u64),
                ),
                (
                    "portfolio_wall_s".into(),
                    prophunt_formats::Json::Float(self.portfolio_wall_s),
                ),
                (
                    "portfolio_best_strategy".into(),
                    prophunt_formats::Json::Str(self.portfolio_best_strategy.clone()),
                ),
            ],
        }
    }
}

/// Races the full strategy portfolio against single-strategy MaxSAT descent on
/// `code`, both starting from the same coloration schedule with the same
/// per-round budgets, seeded with [`stage_seed`]`(session runtime, stage)`.
///
/// The portfolio run *contains* a MaxSAT-descent arm, so with equal round
/// budgets its final depth is expected at or below the single-strategy run's —
/// the "answer quality scales with compute" claim `search_bench` records.
///
/// # Panics
///
/// Panics when the coloration schedule cannot be built or a job fails
/// (benchmark inputs are trusted constructions).
pub fn compare_search_strategies(
    session: &mut Session,
    bench: &BenchmarkCode,
    memory_rounds: usize,
    search_rounds: usize,
    samples: usize,
    stage: u64,
) -> SearchComparison {
    let builder = match &bench.layout {
        Some(layout) => {
            ExperimentSpec::builder().code_with_layout(bench.code.clone(), layout.clone())
        }
        None => ExperimentSpec::builder().code(bench.code.clone()),
    };
    let spec = builder
        .rounds(memory_rounds)
        .build()
        .expect("coloration schedules are valid for their code");
    let seed = stage_seed(session.runtime().config(), stage);
    let base = SearchJob::new(spec)
        .with_rounds(search_rounds)
        .with_samples(samples)
        .with_seed(seed);
    let maxsat = session
        .run_search_quiet(
            &base
                .clone()
                .with_strategies(vec![StrategyKind::MaxSatDescent])
                .with_portfolio_size(1),
        )
        .expect("benchmark search job must be runnable");
    let portfolio = session
        .run_search_quiet(
            &base
                .with_strategies(StrategyKind::ALL.to_vec())
                .with_portfolio_size(StrategyKind::ALL.len()),
        )
        .expect("benchmark search job must be runnable");
    SearchComparison {
        code: bench.code.name().to_string(),
        initial_depth: portfolio.result.initial_depth,
        maxsat_depth: maxsat.result.best.depth,
        maxsat_wall_s: maxsat.wall.as_secs_f64(),
        portfolio_depth: portfolio.result.best.depth,
        portfolio_wall_s: portfolio.wall.as_secs_f64(),
        portfolio_best_strategy: portfolio.result.best.strategy.to_string(),
    }
}

/// Estimates the combined (X + Z memory) logical error rate of a schedule.
pub fn combined_logical_error_rate(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> LogicalErrorEstimate {
    combined_logical_error_rate_with_idle(code, schedule, rounds, p, 0.0, shots, seed, runtime)
}

/// Estimates the combined logical error rate with an additional idle-error strength
/// (Figure 15's sensitivity study).
#[allow(clippy::too_many_arguments)]
pub fn combined_logical_error_rate_with_idle(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    idle: f64,
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> LogicalErrorEstimate {
    // `seed` acts as this call site's stage label; the runtime's base seed
    // (e.g. PROPHUNT_SEED) rotates the actual stream.
    let mut session = Session::new(*runtime);
    run_ler_point(
        &mut session,
        code,
        schedule,
        rounds,
        NoiseSpec::Depolarizing { p, idle },
        ShotBudget::fixed(shots),
        seed,
    )
    .combined
}

/// Sweeps the combined logical error rate of one schedule over several physical
/// error rates through one shared session, returning `(p, estimate)` pairs in
/// input order.
///
/// Each sweep point seeds its Monte-Carlo chunks from `seed` alone, so a sweep
/// returns the same estimates as pointwise [`combined_logical_error_rate`]
/// calls.
pub fn sweep_logical_error_rates(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    ps: &[f64],
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> Vec<(f64, LogicalErrorEstimate)> {
    let mut session = Session::new(*runtime);
    ps.iter()
        .map(|&p| {
            (
                p,
                run_ler_point(
                    &mut session,
                    code,
                    schedule,
                    rounds,
                    NoiseSpec::uniform(p),
                    ShotBudget::fixed(shots),
                    seed,
                )
                .combined,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_contains_surface_and_ldpc_codes() {
        let suite = benchmark_suite(false);
        assert!(suite.len() >= 4);
        assert!(suite.iter().any(|b| b.code.name().starts_with("surface")));
        assert!(suite.iter().any(|b| b.code.name().starts_with("gb_")));
        for bench in &suite {
            if let Some(hand) = &bench.hand_designed {
                hand.validate(&bench.code).unwrap();
            }
        }
    }

    #[test]
    fn combined_ler_is_a_probability() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let runtime = RuntimeConfig::new(2, 64, 0);
        let est = combined_logical_error_rate(&bench.code, &schedule, 2, 2e-3, 200, 1, &runtime);
        assert!(est.rate() >= 0.0 && est.rate() <= 1.0);
        assert_eq!(est.shots, 400);
    }

    #[test]
    fn sweeps_match_pointwise_estimates_and_preserve_order() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let runtime = RuntimeConfig::new(4, 64, 0);
        let ps = [2e-3, 8e-3];
        let sweep = sweep_logical_error_rates(&bench.code, &schedule, 2, &ps, 150, 5, &runtime);
        assert_eq!(sweep.len(), 2);
        for ((p, est), expected_p) in sweep.iter().zip(ps) {
            assert_eq!(*p, expected_p);
            let point =
                combined_logical_error_rate(&bench.code, &schedule, 2, *p, 150, 5, &runtime);
            assert_eq!(
                est.failures, point.failures,
                "sweep must match pointwise run"
            );
        }
    }

    #[test]
    fn ler_points_share_experiments_across_noise_and_record_throughput() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let mut session = Session::new(RuntimeConfig::new(2, 64, 0));
        let a = run_ler_point(
            &mut session,
            &bench.code,
            &schedule,
            2,
            NoiseSpec::uniform(2e-3),
            ShotBudget::fixed(128),
            1,
        );
        run_ler_point(
            &mut session,
            &bench.code,
            &schedule,
            2,
            NoiseSpec::uniform(8e-3),
            ShotBudget::fixed(128),
            1,
        );
        let stats = session.stats();
        assert_eq!(
            stats.experiments_built, 2,
            "one experiment per basis, shared across the two noise points"
        );
        assert_eq!(stats.dems_built, 4, "one model per (basis, noise)");
        // The recorded outcome carries the throughput fields for BENCH_*.jsonl.
        let record = a.to_record("point");
        let ReportRecord::Ler { wall_s, .. } = record else {
            panic!("expected a ler record");
        };
        assert!(wall_s >= 0.0);
    }
}
