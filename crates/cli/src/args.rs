//! A small `--flag value` argument parser with typed accessors.
//!
//! Every flag takes exactly one value; unknown flags, repeated flags and missing
//! values are usage errors (exit code 2). No third-party parser is used because the
//! vendor tree is offline-only.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A CLI failure, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself is wrong (unknown flag, missing argument): exit 2.
    Usage(String),
    /// The invocation is well-formed but the operation failed (parse error,
    /// invalid schedule, I/O): exit 1.
    Failure(String),
}

impl CliError {
    /// Convenience constructor for [`CliError::Failure`].
    pub fn failure(message: impl fmt::Display) -> CliError {
        CliError::Failure(message.to_string())
    }

    /// Convenience constructor for [`CliError::Usage`].
    pub fn usage(message: impl fmt::Display) -> CliError {
        CliError::Usage(message.to_string())
    }
}

/// Parsed `--flag value` pairs.
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `args`, accepting only flags named in `allowed` (canonical long names
    /// without the leading `--`; `-o` is an alias for `--out`).
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, CliError> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let name = match arg.as_str() {
                "-o" => "out",
                s => s.strip_prefix("--").ok_or_else(|| {
                    CliError::usage(format!("unexpected positional argument {s:?}"))
                })?,
            };
            if !allowed.contains(&name) {
                return Err(CliError::usage(format!(
                    "unknown flag --{name} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?;
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(CliError::usage(format!("flag --{name} given twice")));
            }
        }
        Ok(Flags { values })
    }

    /// Returns a flag's value if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Returns a required flag's value.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::usage(format!("missing required flag --{name}")))
    }

    /// Parses an optional numeric flag, falling back to `default`.
    pub fn num<T>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T: FromStr + Copy,
    {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text.parse::<T>().map_err(|_| {
                CliError::usage(format!("flag --{name} has an invalid value {text:?}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_aliases() {
        let flags = Flags::parse(
            &strings(&["--code", "surface:3", "-o", "x.dem"]),
            &["code", "out"],
        )
        .expect("--code/-o pairs are well-formed and accepted");
        assert_eq!(flags.get("code"), Some("surface:3"));
        assert_eq!(flags.get("out"), Some("x.dem"));
        assert_eq!(
            flags
                .num("shots", 500u64)
                .expect("absent flag falls back to default"),
            500
        );
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(matches!(
            Flags::parse(&strings(&["positional"]), &[]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Flags::parse(&strings(&["--nope", "1"]), &["code"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Flags::parse(&strings(&["--code"]), &["code"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Flags::parse(&strings(&["--code", "a", "--code", "b"]), &["code"]),
            Err(CliError::Usage(_))
        ));
        let flags = Flags::parse(&strings(&["--shots", "abc"]), &["shots"])
            .expect("parse accepts any value text; only num() rejects it");
        assert!(matches!(flags.num("shots", 1u64), Err(CliError::Usage(_))));
        assert!(matches!(flags.require("seed"), Err(CliError::Usage(_))));
    }
}
