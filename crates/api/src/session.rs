//! [`Session`]: the stateful execution context jobs run in.
//!
//! A session owns the deterministic parallel [`Runtime`] and memoizes the
//! expensive intermediate artifacts of experiment evaluation — built
//! [`MemoryExperiment`]s, [`DetectorErrorModel`]s and decoder instances — keyed
//! by the exact `(code, schedule, rounds, basis, noise)` combination, so a sweep
//! over decoders reuses the model, a sweep over noise reuses the experiment, and
//! repeated jobs on the same grid point are free.
//!
//! Every session carries an enabled `prophunt-obs` registry (shared with its
//! runtime, the LER engines and search, so one [`Session::metrics`] snapshot
//! covers all four layers). Cache accounting lives in the registry as
//! `session.cache.<kind>.hit` / `.miss` counters plus `session.jobs`;
//! [`SessionStats`] survives as a thin compatibility view over those counters.

use crate::decoder::DecoderRegistry;
use crate::error::ApiError;
use crate::job::{
    BasisEstimate, Event, JobKind, LerJob, LerOutcome, OptimizeJob, OptimizeOutcome, StopReason,
};
use crate::search::{SearchJob, SearchOutcome};
use crate::spec::ExperimentSpec;
use prophunt::{PropHunt, PropHuntConfig};
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment};
use prophunt_decoders::{
    estimate_with_budget_engine_cached, DecodeCache, Decoder, Engine, LogicalErrorEstimate,
};
use prophunt_formats::write_schedule;
use prophunt_obs::{Obs, Snapshot};
use prophunt_runtime::{Runtime, RuntimeConfig};
use prophunt_search::{Portfolio, PortfolioConfig, SearchParams};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key identifying a built memory experiment.
///
/// The code is fingerprinted by name and dimensions; the schedule by its
/// canonical `prophunt-schedule v1` text (exact, not name-based). Distinct codes
/// sharing a name *and* dimensions would alias — give custom codes distinct
/// names.
type ExperimentKey = (String, String, usize, u8);

/// Cache key identifying a detector error model: an experiment plus a canonical
/// noise spec string.
type DemKey = (ExperimentKey, String);

/// Cache key identifying a decoder instance: a model plus the decoder name.
type DecoderKey = (DemKey, String);

fn basis_tag(basis: MemoryBasis) -> u8 {
    match basis {
        MemoryBasis::Z => 0,
        MemoryBasis::X => 1,
    }
}

/// Cache hit/miss counters of a session (observability for sweeps and tests).
///
/// Deprecated in favour of the session's `prophunt-obs` registry: the same
/// numbers live there as `session.cache.<kind>.hit` / `.miss` and
/// `session.jobs` counters, alongside everything the runtime, LER engines and
/// search record. [`Session::stats`] now rebuilds this struct from a registry
/// snapshot; prefer [`Session::metrics`] for new code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Memory experiments built.
    pub experiments_built: usize,
    /// Memory-experiment cache hits.
    pub experiment_hits: usize,
    /// Detector error models built.
    pub dems_built: usize,
    /// Detector-error-model cache hits.
    pub dem_hits: usize,
    /// Decoder instances built.
    pub decoders_built: usize,
    /// Decoder cache hits.
    pub decoder_hits: usize,
    /// Jobs run to completion.
    pub jobs_run: usize,
}

/// The stateful execution context of the experiment API. See the module docs.
pub struct Session {
    runtime: Runtime,
    registry: DecoderRegistry,
    experiments: HashMap<ExperimentKey, Arc<MemoryExperiment>>,
    dems: HashMap<DemKey, Arc<DetectorErrorModel>>,
    decoders: HashMap<DecoderKey, Arc<dyn Decoder>>,
    obs: Obs,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("runtime", self.runtime.config())
            .field("registry", &self.registry)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates a session with the default decoder registry.
    pub fn new(config: RuntimeConfig) -> Session {
        Session::with_registry(config, DecoderRegistry::with_defaults())
    }

    /// Creates a session with a custom decoder registry.
    pub fn with_registry(config: RuntimeConfig, registry: DecoderRegistry) -> Session {
        Session::with_obs(config, registry, Obs::enabled())
    }

    /// Creates a session recording into a caller-supplied observability handle
    /// (e.g. a registry shared with other sessions). A disabled handle turns the
    /// session's metrics off wholesale; [`Session::stats`] then reads all zeros.
    pub fn with_obs(config: RuntimeConfig, registry: DecoderRegistry, obs: Obs) -> Session {
        Session {
            runtime: Runtime::with_obs(config, obs.clone()),
            registry,
            experiments: HashMap::new(),
            dems: HashMap::new(),
            decoders: HashMap::new(),
            obs,
        }
    }

    /// Returns the shared parallel runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Returns the decoder registry.
    pub fn registry(&self) -> &DecoderRegistry {
        &self.registry
    }

    /// Registers (or replaces) a decoder constructor; see
    /// [`DecoderRegistry::register`]. Replacing a name also evicts every decoder
    /// instance cached under it, so later jobs use the new constructor.
    pub fn register_decoder(
        &mut self,
        name: impl Into<String>,
        builder: impl Fn(&DetectorErrorModel) -> Arc<dyn Decoder> + Send + Sync + 'static,
    ) {
        let name = name.into();
        // lint: allow(no-hash-iter) — order-insensitive: retain applies an
        // independent per-entry predicate; no output depends on visit order.
        self.decoders.retain(|(_, cached), _| cached != &name);
        self.registry.register(name, builder);
    }

    /// Returns the observability handle shared by the session, its runtime, the
    /// LER engines and search.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Returns a point-in-time snapshot of every instrument recorded so far
    /// (empty when the session was built with a disabled [`Obs`]).
    pub fn metrics(&self) -> Snapshot {
        self.obs.snapshot().unwrap_or_default()
    }

    /// Returns the cache statistics, rebuilt from the metrics registry
    /// (`session.cache.<kind>.hit` / `.miss` and `session.jobs` counters).
    pub fn stats(&self) -> SessionStats {
        let snap = self.metrics();
        SessionStats {
            experiments_built: snap.counter("session.cache.experiment.miss") as usize,
            experiment_hits: snap.counter("session.cache.experiment.hit") as usize,
            dems_built: snap.counter("session.cache.dem.miss") as usize,
            dem_hits: snap.counter("session.cache.dem.hit") as usize,
            decoders_built: snap.counter("session.cache.decoder.miss") as usize,
            decoder_hits: snap.counter("session.cache.decoder.hit") as usize,
            jobs_run: snap.counter("session.jobs") as usize,
        }
    }

    fn experiment_key(spec: &ExperimentSpec, basis: MemoryBasis) -> ExperimentKey {
        (
            format!(
                "{}[{},{}]",
                spec.code().name(),
                spec.code().n(),
                spec.code().k()
            ),
            write_schedule(spec.schedule()),
            spec.rounds(),
            basis_tag(basis),
        )
    }

    /// Returns the (cached) memory experiment for one basis of `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Circuit`] when the experiment cannot be built.
    pub fn experiment(
        &mut self,
        spec: &ExperimentSpec,
        basis: MemoryBasis,
    ) -> Result<Arc<MemoryExperiment>, ApiError> {
        let key = Self::experiment_key(spec, basis);
        if let Some(experiment) = self.experiments.get(&key) {
            self.obs.inc("session.cache.experiment.hit");
            return Ok(Arc::clone(experiment));
        }
        let experiment = Arc::new(MemoryExperiment::build(
            spec.code(),
            spec.schedule(),
            spec.rounds(),
            basis,
        )?);
        self.obs.inc("session.cache.experiment.miss");
        self.experiments.insert(key, Arc::clone(&experiment));
        Ok(experiment)
    }

    /// Returns the (cached) detector error model for one basis of `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Circuit`] when the underlying experiment cannot be
    /// built.
    pub fn dem(
        &mut self,
        spec: &ExperimentSpec,
        basis: MemoryBasis,
    ) -> Result<Arc<DetectorErrorModel>, ApiError> {
        let key = (Self::experiment_key(spec, basis), spec.noise().to_string());
        if let Some(dem) = self.dems.get(&key) {
            self.obs.inc("session.cache.dem.hit");
            return Ok(Arc::clone(dem));
        }
        let experiment = self.experiment(spec, basis)?;
        let dem = Arc::new(DetectorErrorModel::from_experiment(
            &experiment,
            &spec.noise().build(),
        ));
        self.obs.inc("session.cache.dem.miss");
        self.dems.insert(key, Arc::clone(&dem));
        Ok(dem)
    }

    /// Returns the (cached) decoder instance for one basis of `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnknownDecoder`] when the spec's decoder name is not
    /// registered, and [`ApiError::Circuit`] when the model cannot be built.
    pub fn decoder(
        &mut self,
        spec: &ExperimentSpec,
        basis: MemoryBasis,
    ) -> Result<Arc<dyn Decoder>, ApiError> {
        let dem_key = (Self::experiment_key(spec, basis), spec.noise().to_string());
        let key = (dem_key, spec.decoder().to_string());
        if let Some(decoder) = self.decoders.get(&key) {
            self.obs.inc("session.cache.decoder.hit");
            return Ok(Arc::clone(decoder));
        }
        let dem = self.dem(spec, basis)?;
        let decoder = self.registry.build(spec.decoder(), &dem)?;
        self.obs.inc("session.cache.decoder.miss");
        self.decoders.insert(key, Arc::clone(&decoder));
        Ok(decoder)
    }

    /// Runs a [`LerJob`], emitting [`Event`]s through `observer`.
    ///
    /// The estimate is a pure function of the job and the session's
    /// `(seed, chunk_size)` plus the spec's [`Engine`]; thread count changes
    /// wall-clock time only, including for adaptively stopped budgets (decisions
    /// are made at chunk granularity in chunk order).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnknownDecoder`] or [`ApiError::Circuit`]; no events
    /// are emitted in that case beyond those already delivered.
    pub fn run_ler(
        &mut self,
        job: &LerJob,
        mut observer: impl FnMut(&Event),
    ) -> Result<LerOutcome, ApiError> {
        let span = self.obs.span("job.ler.ns");
        let _trace = self.obs.tracer().map(|t| t.span("job.ler", "job"));
        let seed = job.seed.unwrap_or(self.runtime.config().seed);
        observer(&Event::JobStarted {
            kind: JobKind::Ler,
            label: job.label().to_string(),
        });
        let mut per_basis = Vec::new();
        let mut combined = LogicalErrorEstimate::ZERO;
        let mut stop = StopReason::ShotsExhausted;
        for &basis in job.spec.basis().bases() {
            let dem = self.dem(&job.spec, basis)?;
            let decoder = self.decoder(&job.spec, basis)?;
            let runtime = self.runtime.clone();
            let (estimate, reason) = estimate_with_budget_engine_cached(
                &dem,
                decoder.as_ref(),
                job.budget,
                seed,
                job.spec.engine(),
                job.spec.decode_cache(),
                &runtime,
                &mut |progress| {
                    observer(&Event::ShotChunk {
                        basis,
                        chunk: progress.chunk,
                        shots: progress.shots,
                        failures: progress.failures,
                    });
                },
            );
            let reason = StopReason::from(reason);
            if reason.stopped_early() && !stop.stopped_early() {
                stop = reason;
            }
            per_basis.push(BasisEstimate {
                basis,
                estimate,
                stop: reason,
            });
            combined = combined.combined(estimate);
        }
        observer(&Event::JobFinished { stop });
        self.obs.inc("session.jobs");
        Ok(LerOutcome {
            per_basis,
            combined,
            stop,
            seed,
            chunk_size: self.runtime.chunk_size(),
            decoder: job.spec.decoder().to_string(),
            noise: Some(job.spec.noise()),
            p: job.spec.noise().p(),
            idle: job.spec.noise().idle(),
            engine: job.spec.engine(),
            wall: span.finish(),
        })
    }

    /// Runs a [`LerJob`] without observing progress events.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run_ler`].
    pub fn run_ler_quiet(&mut self, job: &LerJob) -> Result<LerOutcome, ApiError> {
        self.run_ler(job, |_| {})
    }

    /// Runs an [`OptimizeJob`], emitting [`Event::Iteration`] as iterations
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Circuit`] when the starting schedule fails validation.
    pub fn run_optimize(
        &mut self,
        job: &OptimizeJob,
        mut observer: impl FnMut(&Event),
    ) -> Result<OptimizeOutcome, ApiError> {
        let span = self.obs.span("job.optimize.ns");
        let _trace = self.obs.tracer().map(|t| t.span("job.optimize", "job"));
        let seed = job.seed.unwrap_or(self.runtime.config().seed);
        let mut config = PropHuntConfig::quick(job.spec.rounds());
        config.iterations = job.iterations;
        config.samples_per_iteration = job.samples_per_iteration;
        config.maxsat_budget = job.maxsat_budget;
        config.max_subgraph_steps = job.max_subgraph_steps;
        config.max_subgraphs_per_iteration = job.max_subgraphs_per_iteration;
        config.physical_error_rate = job.spec.noise().p();
        config.noise = Some(job.spec.noise().build());
        config.runtime = self.runtime.config().with_seed(seed);
        observer(&Event::JobStarted {
            kind: JobKind::Optimize,
            label: job.label().to_string(),
        });
        let prophunt = PropHunt::new(job.spec.code().clone(), config);
        let result =
            prophunt.try_optimize_with_observer(job.spec.schedule().clone(), |record| {
                observer(&Event::Iteration(record.clone()));
            })?;
        let iterations = result.records.len();
        let converged = result
            .records
            .last()
            .is_some_and(|record| record.subgraphs_found == 0);
        let stop = if converged {
            StopReason::Converged { iterations }
        } else {
            StopReason::IterationLimit { iterations }
        };
        observer(&Event::JobFinished { stop });
        self.obs.inc("session.jobs");
        Ok(OptimizeOutcome {
            result,
            stop,
            seed,
            wall: span.finish(),
        })
    }

    /// Runs an [`OptimizeJob`] without observing progress events.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run_optimize`].
    pub fn run_optimize_quiet(&mut self, job: &OptimizeJob) -> Result<OptimizeOutcome, ApiError> {
        self.run_optimize(job, |_| {})
    }

    /// Runs a [`SearchJob`], emitting one [`Event::Incumbent`] per portfolio
    /// round (with per-strategy provenance) between the usual
    /// [`Event::JobStarted`] / [`Event::JobFinished`] pair.
    ///
    /// The event sequence and the returned best schedule are pure functions of
    /// the job and the session's `(seed, chunk_size)` — the portfolio inherits
    /// the runtime determinism contract, so thread count changes wall-clock
    /// time only.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Circuit`] when the spec's schedule fails validation
    /// or the portfolio shape is degenerate (no strategies/instances/rounds).
    pub fn run_search(
        &mut self,
        job: &SearchJob,
        mut observer: impl FnMut(&Event),
    ) -> Result<SearchOutcome, ApiError> {
        let span = self.obs.span("job.search.ns");
        let _trace = self.obs.tracer().map(|t| t.span("job.search", "job"));
        let seed = job.seed.unwrap_or(self.runtime.config().seed);
        observer(&Event::JobStarted {
            kind: JobKind::Search,
            label: job.label().to_string(),
        });
        let params = SearchParams {
            proposals_per_round: job.proposals_per_round,
            memory_rounds: job.spec.rounds(),
            noise: job.spec.noise().build(),
            samples_per_iteration: job.samples_per_iteration,
            maxsat_budget: job.maxsat_budget,
            ..SearchParams::default()
        };
        let config = PortfolioConfig {
            strategies: job.strategies.clone(),
            portfolio_size: job.portfolio_size,
            rounds: job.rounds,
            runtime: self.runtime.config().with_seed(seed),
            params,
        };
        let result = Portfolio::with_obs(config, self.obs.clone()).run(
            job.spec.code(),
            job.spec.layout(),
            job.spec.schedule(),
            |record| {
                observer(&Event::Incumbent {
                    round: record.round,
                    strategy: record.incumbent.strategy.to_string(),
                    instance: record.incumbent.instance,
                    depth: record.incumbent.depth,
                    improved: record.improved,
                    schedule: record.incumbent.schedule.clone(),
                });
            },
        )?;
        let stop = StopReason::RoundLimit {
            rounds: result.rounds.len(),
        };
        observer(&Event::JobFinished { stop });
        self.obs.inc("session.jobs");
        Ok(SearchOutcome {
            result,
            stop,
            seed,
            chunk_size: self.runtime.chunk_size(),
            wall: span.finish(),
        })
    }

    /// Runs a [`SearchJob`] without observing progress events.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run_search`].
    pub fn run_search_quiet(&mut self, job: &SearchJob) -> Result<SearchOutcome, ApiError> {
        self.run_search(job, |_| {})
    }

    /// Estimates a pre-built detector error model (e.g. parsed from a `.dem`
    /// file) under `decoder_name`, `budget`, `engine` and `decode_cache` — the
    /// Session entry point for model-only workloads, bypassing the spec caches.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnknownDecoder`] when the decoder is not registered.
    #[allow(clippy::too_many_arguments)]
    pub fn run_ler_on_dem(
        &mut self,
        dem: &DetectorErrorModel,
        decoder_name: &str,
        budget: prophunt_decoders::ShotBudget,
        seed: u64,
        engine: Engine,
        decode_cache: DecodeCache,
        mut observer: impl FnMut(&Event),
    ) -> Result<LerOutcome, ApiError> {
        let span = self.obs.span("job.ler.ns");
        let _trace = self.obs.tracer().map(|t| t.span("job.ler", "job"));
        let decoder = self.registry.build(decoder_name, dem)?;
        observer(&Event::JobStarted {
            kind: JobKind::Ler,
            label: "dem".to_string(),
        });
        let (estimate, reason) = estimate_with_budget_engine_cached(
            dem,
            decoder.as_ref(),
            budget,
            seed,
            engine,
            decode_cache,
            &self.runtime,
            &mut |progress| {
                observer(&Event::ShotChunk {
                    basis: MemoryBasis::Z,
                    chunk: progress.chunk,
                    shots: progress.shots,
                    failures: progress.failures,
                });
            },
        );
        let stop = StopReason::from(reason);
        observer(&Event::JobFinished { stop });
        self.obs.inc("session.jobs");
        Ok(LerOutcome {
            per_basis: vec![BasisEstimate {
                basis: MemoryBasis::Z,
                estimate,
                stop,
            }],
            combined: estimate,
            stop,
            seed,
            chunk_size: self.runtime.chunk_size(),
            decoder: decoder_name.to_string(),
            // A .dem file has its error distribution baked in; there is no noise
            // spec to report (the record's noise field stays empty).
            noise: None,
            p: 0.0,
            idle: 0.0,
            engine,
            wall: span.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BasisSelection, ExperimentSpec};
    use prophunt_decoders::ShotBudget;

    fn d3_spec() -> ExperimentSpec {
        ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap()
    }

    fn session() -> Session {
        Session::new(RuntimeConfig::new(2, 64, 7))
    }

    #[test]
    fn dems_and_decoders_are_cached_across_jobs() {
        let mut session = session();
        let spec = d3_spec();
        let job = LerJob::new(spec.clone()).with_budget(ShotBudget::fixed(128));
        let first = session.run_ler_quiet(&job).unwrap();
        let stats = session.stats();
        assert_eq!(stats.dems_built, 1);
        assert_eq!(stats.decoders_built, 1);
        let second = session.run_ler_quiet(&job).unwrap();
        assert_eq!(first.combined, second.combined, "cached rerun must agree");
        let stats = session.stats();
        assert_eq!(stats.dems_built, 1, "model must be reused");
        assert_eq!(stats.decoders_built, 1, "decoder must be reused");
        assert!(stats.dem_hits >= 1 && stats.decoder_hits >= 1);
        // A different decoder on the same model reuses the DEM but builds a new
        // decoder instance.
        let union = LerJob::new(spec.with_decoder("unionfind")).with_budget(ShotBudget::fixed(128));
        session.run_ler_quiet(&union).unwrap();
        let stats = session.stats();
        assert_eq!(stats.dems_built, 1);
        assert_eq!(stats.decoders_built, 2);
        assert_eq!(stats.jobs_run, 3);
    }

    #[test]
    fn noise_changes_rebuild_the_model_but_reuse_the_experiment() {
        let mut session = session();
        let spec = d3_spec();
        session
            .run_ler_quiet(&LerJob::new(spec.clone()).with_budget(ShotBudget::fixed(64)))
            .unwrap();
        let si = spec.with_noise(crate::noise::NoiseSpec::parse("si1000:0.001").unwrap());
        session
            .run_ler_quiet(&LerJob::new(si).with_budget(ShotBudget::fixed(64)))
            .unwrap();
        let stats = session.stats();
        assert_eq!(stats.experiments_built, 1, "experiment shared across noise");
        assert_eq!(stats.dems_built, 2, "each noise spec gets its own model");
    }

    #[test]
    fn replacing_a_decoder_evicts_its_cached_instances() {
        use prophunt_gf2::BitVec;
        struct AlwaysZero {
            detectors: usize,
            observables: usize,
        }
        impl prophunt_decoders::Decoder for AlwaysZero {
            fn decode(&self, _detectors: &BitVec) -> BitVec {
                BitVec::zeros(self.observables)
            }
            fn num_detectors(&self) -> usize {
                self.detectors
            }
            fn num_observables(&self) -> usize {
                self.observables
            }
        }
        let mut session = session();
        // Populate the cache under "bposd" with a high-p job that has failures.
        let spec = d3_spec().with_noise(crate::noise::NoiseSpec::uniform(2e-2));
        let job = LerJob::new(spec).with_budget(ShotBudget::fixed(256));
        let before = session.run_ler_quiet(&job).unwrap();
        assert!(before.combined.failures > 0);
        // Replace "bposd" with a decoder that never predicts a flip: the cached
        // instance must be evicted, so the rerun uses the new constructor.
        session.register_decoder("bposd", |dem| {
            std::sync::Arc::new(AlwaysZero {
                detectors: dem.num_detectors(),
                observables: dem.num_observables(),
            })
        });
        let after = session.run_ler_quiet(&job).unwrap();
        assert_ne!(
            after.combined.failures, before.combined.failures,
            "replaced decoder must actually be used"
        );
    }

    #[test]
    fn unknown_decoder_surfaces_as_a_typed_error() {
        let mut session = session();
        let job = LerJob::new(d3_spec().with_decoder("nope"));
        let err = session.run_ler_quiet(&job).unwrap_err();
        assert!(matches!(err, ApiError::UnknownDecoder { .. }), "{err}");
    }

    #[test]
    fn ler_jobs_emit_started_chunks_finished_in_order() {
        let mut session = session();
        let job = LerJob::new(d3_spec())
            .with_budget(ShotBudget::fixed(128))
            .with_label("probe");
        let mut events = Vec::new();
        session.run_ler(&job, |e| events.push(e.clone())).unwrap();
        assert!(
            matches!(&events[0], Event::JobStarted { kind: JobKind::Ler, label } if label == "probe")
        );
        assert!(matches!(events.last(), Some(Event::JobFinished { .. })));
        let chunks: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::ShotChunk { chunk, shots, .. } => Some((*chunk, *shots)),
                _ => None,
            })
            .collect();
        assert_eq!(chunks, vec![(0, 64), (1, 128)]);
    }

    #[test]
    fn both_bases_combine_estimates() {
        let mut session = session();
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .basis(BasisSelection::Both)
            .build()
            .unwrap();
        let outcome = session
            .run_ler_quiet(&LerJob::new(spec).with_budget(ShotBudget::fixed(100)))
            .unwrap();
        assert_eq!(outcome.per_basis.len(), 2);
        assert_eq!(outcome.combined.shots, 200);
        assert_eq!(
            outcome.combined.failures,
            outcome.per_basis.iter().map(|b| b.estimate.failures).sum()
        );
    }

    #[test]
    fn frame_engine_jobs_run_and_record_their_engine() {
        let mut session = session();
        let spec = d3_spec().with_engine(Engine::Frames);
        let outcome = session
            .run_ler_quiet(&LerJob::new(spec).with_budget(ShotBudget::fixed(128)))
            .unwrap();
        assert_eq!(outcome.engine, Engine::Frames);
        assert_eq!(outcome.combined.shots, 128);
    }

    #[test]
    fn stats_are_backed_by_the_metrics_registry() {
        let mut session = session();
        let job = LerJob::new(d3_spec()).with_budget(ShotBudget::fixed(128));
        session.run_ler_quiet(&job).unwrap();
        session.run_ler_quiet(&job).unwrap();
        let snap = session.metrics();
        assert_eq!(snap.counter("session.cache.dem.miss"), 1);
        // First run: dem() misses, then decoder()'s build path re-reads it (one
        // hit). Second run: dem() hits, decoder() hits without touching dems.
        assert_eq!(snap.counter("session.cache.dem.hit"), 2);
        assert_eq!(snap.counter("session.cache.decoder.miss"), 1);
        assert_eq!(snap.counter("session.cache.decoder.hit"), 1);
        assert_eq!(snap.counter("session.jobs"), 2);
        // The compat view reads the same counters back.
        let stats = session.stats();
        assert_eq!(stats.dems_built, 1);
        assert_eq!(stats.dem_hits, 2);
        assert_eq!(stats.jobs_run, 2);
        // The shared registry also carries the runtime / LER-engine instruments.
        assert!(snap.counter("ler.shots") >= 256);
        assert!(snap.histogram("job.ler.ns").is_some_and(|h| h.count == 2));
        assert!(snap.histogram("runtime.task.ns").is_some());
    }

    #[test]
    fn a_disabled_obs_handle_turns_session_metrics_off() {
        let mut session = Session::with_obs(
            RuntimeConfig::new(2, 64, 7),
            DecoderRegistry::with_defaults(),
            Obs::disabled(),
        );
        let job = LerJob::new(d3_spec()).with_budget(ShotBudget::fixed(64));
        let outcome = session.run_ler_quiet(&job).unwrap();
        assert_eq!(outcome.combined.shots, 64);
        assert!(outcome.wall.as_nanos() > 0, "wall clock still measured");
        assert_eq!(session.stats(), SessionStats::default());
        assert_eq!(session.metrics(), Snapshot::default());
    }

    #[test]
    fn optimize_jobs_stream_iterations_and_reuse_the_session_runtime_seed() {
        let mut session = session();
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        let job = OptimizeJob::new(spec).with_iterations(2).with_samples(15);
        let mut iterations = 0usize;
        let outcome = session
            .run_optimize(&job, |e| {
                if matches!(e, Event::Iteration(_)) {
                    iterations += 1;
                }
            })
            .unwrap();
        assert_eq!(outcome.result.records.len(), iterations);
        assert_eq!(outcome.seed, 7, "session runtime seed is the default");
        assert!(matches!(
            outcome.stop,
            StopReason::Converged { .. } | StopReason::IterationLimit { .. }
        ));
        outcome
            .result
            .final_schedule
            .validate(job.spec.code())
            .unwrap();
    }
}
