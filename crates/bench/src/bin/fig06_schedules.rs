//! Figure 6: logical performance of a d = 3 surface code under a good (hand-designed)
//! vs poor CNOT schedule, over a sweep of physical error rates.

use prophunt_bench::{
    ler_record, runtime_config_from_env, sweep_logical_error_rates, write_bench_report,
};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_qec::surface::rotated_surface_code_with_layout;

fn main() {
    let quick = std::env::var("PROPHUNT_FULL").is_err();
    let shots = if quick { 1_500 } else { 20_000 };
    let runtime = runtime_config_from_env();
    let (code, layout) = rotated_surface_code_with_layout(3);
    let good = ScheduleSpec::surface_hand_designed(&code, &layout);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    println!("Figure 6: d = 3 surface code, good vs poor schedule ({shots} shots/point/basis)");
    println!("{:>10} {:>14} {:>14}", "p", "LER(good)", "LER(poor)");
    let ps = [2e-3, 5e-3, 1e-2, 2e-2];
    let good_sweep = sweep_logical_error_rates(&code, &good, 3, &ps, shots, 11, &runtime);
    let poor_sweep = sweep_logical_error_rates(&code, &poor, 3, &ps, shots, 11, &runtime);
    let mut records = Vec::new();
    for ((p, g), (_, b)) in good_sweep.into_iter().zip(poor_sweep) {
        println!("{p:>10.4} {:>14.5} {:>14.5}", g.rate(), b.rate());
        records.push(ler_record("good", p, 0.0, &g, 11, &runtime));
        records.push(ler_record("poor", p, 0.0, &b, 11, &runtime));
    }
    let path = write_bench_report("fig06_schedules", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
