//! `prophunt check` — re-parse any emitted file, auto-detecting its format.
//!
//! Used by CI (and humans) to confirm that every artifact the tool wrote can be
//! read back. Detection is by content: the `prophunt-code v1` /
//! `prophunt-schedule v1` headers, a leading `{` for JSON-lines reports, and the
//! Stim DEM instruction set otherwise.

use crate::args::CliError;
use crate::common::read_file;
use prophunt_formats::{
    code::CODE_SPEC_HEADER, parse_code_spec, parse_dem, parse_report, parse_schedule,
    schedule::SCHEDULE_HEADER,
};

pub const USAGE: &str = "\
prophunt check <file>...

  Re-parses each file (code spec, schedule, .dem, or JSON-lines report,
  auto-detected by content) and prints a one-line summary. Exits non-zero on the
  first file that fails to parse.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::usage("check needs at least one file"));
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(CliError::usage(format!(
            "check takes file paths only, got {flag:?}"
        )));
    }
    for path in args {
        let content = read_file(path)?;
        let summary = check_one(&content).map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
        println!("{path}: {summary}");
    }
    Ok(())
}

fn check_one(content: &str) -> Result<String, String> {
    let first_line = content
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .unwrap_or("");
    if first_line == CODE_SPEC_HEADER {
        let spec = parse_code_spec(content).map_err(|e| e.to_string())?;
        let code = spec.to_code().map_err(|e| e.to_string())?;
        Ok(format!("code spec, {code}"))
    } else if first_line == SCHEDULE_HEADER {
        let schedule = parse_schedule(content).map_err(|e| e.to_string())?;
        Ok(format!(
            "schedule, {} stabilizers, CNOT depth {}",
            schedule.num_stabilizers(),
            schedule
                .depth()
                .map_err(|e| format!("schedule does not lay out: {e}"))?
        ))
    } else if first_line.starts_with('{') {
        let records = parse_report(content).map_err(|e| e.to_string())?;
        Ok(format!("report, {} records", records.len()))
    } else {
        let dem = parse_dem(content).map_err(|e| e.to_string())?;
        Ok(format!(
            "detector error model, {} detectors, {} observables, {} error mechanisms",
            dem.num_detectors(),
            dem.num_observables(),
            dem.num_errors()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_formats::ReportRecord;

    fn incumbent_line(round: u64) -> String {
        ReportRecord::Incumbent {
            round,
            strategy: "beam".into(),
            instance: 1,
            depth: 5,
            improved: true,
            schedule: "prophunt-schedule v1\n".into(),
        }
        .to_json_line()
    }

    #[test]
    fn search_reports_validate_like_any_other_report() {
        let text = format!("{}\n{}\n", incumbent_line(0), incumbent_line(1));
        assert_eq!(
            check_one(&text).expect("two well-formed incumbent records validate"),
            "report, 2 records"
        );
    }

    #[test]
    fn truncated_search_record_mid_stream_is_a_failure_naming_the_line() {
        // A report cut off mid-write (e.g. a killed `prophunt search`): the
        // trailing half-record must fail the check — which `run` maps to
        // `CliError::Failure`, i.e. exit code 1, not a panic (2 stays reserved
        // for usage errors).
        let good = incumbent_line(0);
        let truncated = &good[..good.len() / 2];
        let err = check_one(&format!("{good}\n{truncated}\n")).unwrap_err();
        assert!(err.contains("line 2"), "error must name the line: {err}");
    }
}
