//! The schedule text format — the paper's Figure 11 representation as a file.
//!
//! A schedule file records exactly the two ingredients of an abstract CNOT schedule:
//!
//! ```text
//! prophunt-schedule v1
//! x-stabilizers 4
//! z-stabilizers 4
//! order 0 : 0 1 3 4
//! order 1 : 4 5 7 8
//! ...
//! first 1 : 0 4        # on data qubit 1, stabilizer 0 acts before stabilizer 4
//! ```
//!
//! * `order s : q...` — the interaction order of stabilizer `s` (X stabilizers are
//!   ids `0..num_x`, Z stabilizers `num_x..num_x+num_z`, matching
//!   [`ScheduleSpec::stabilizer_id`]).
//! * `first q : a b` — on shared data qubit `q`, stabilizer `a` interacts before `b`
//!   (one line per ordered pair; the writer emits them in deterministic
//!   `(qubit, min, max)` order).
//!
//! `#` comments and blank lines are ignored. Parsing rebuilds the schedule through
//! [`ScheduleSpec::from_components`], so structural inconsistencies (out-of-range
//! ids, a pair on a qubit neither stabilizer touches) are rejected; whether the
//! schedule is *valid for a given code* (coverage, commutation, schedulability)
//! remains a separate [`ScheduleSpec::validate_for_code`] call (which the CLI runs
//! whenever a schedule file meets a code).

use crate::error::{parse_usize, tokens, FormatError};
use prophunt_circuit::schedule::ScheduleSpec;
use std::fmt::Write as _;

/// The header line every schedule file starts with.
pub const SCHEDULE_HEADER: &str = "prophunt-schedule v1";

/// Serializes a schedule to the `prophunt-schedule v1` text format.
pub fn write_schedule(schedule: &ScheduleSpec) -> String {
    let mut out = String::new();
    out.push_str(SCHEDULE_HEADER);
    out.push('\n');
    let _ = writeln!(out, "x-stabilizers {}", schedule.num_x_stabilizers());
    let _ = writeln!(out, "z-stabilizers {}", schedule.num_z_stabilizers());
    for s in 0..schedule.num_stabilizers() {
        let _ = write!(out, "order {s} :");
        for &q in schedule.order(s) {
            let _ = write!(out, " {q}");
        }
        out.push('\n');
    }
    for (qubit, a, b, first) in schedule.relative_entries() {
        let second = if first == a { b } else { a };
        let _ = writeln!(out, "first {qubit} : {first} {second}");
    }
    out
}

/// Parses the `prophunt-schedule v1` text format.
///
/// # Errors
///
/// Returns a located [`FormatError`] for header/key/token problems, and a
/// whole-input error wrapping [`prophunt_circuit::CircuitError::InvalidSchedule`]
/// when the components are structurally inconsistent.
pub fn parse_schedule(input: &str) -> Result<ScheduleSpec, FormatError> {
    let mut num_x: Option<usize> = None;
    let mut num_z: Option<usize> = None;
    // (line, stabilizer, qubits)
    let mut orders: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let mut firsts: Vec<(usize, usize, usize)> = Vec::new();
    let mut saw_header = false;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let toks = tokens(line);
        let Some(&(col, key)) = toks.first() else {
            continue;
        };
        if !saw_header {
            if line.trim() == SCHEDULE_HEADER {
                saw_header = true;
                continue;
            }
            return Err(FormatError::at_line(
                line_no,
                format!("expected header {SCHEDULE_HEADER:?}, got {:?}", line.trim()),
            ));
        }
        match key {
            "x-stabilizers" | "z-stabilizers" => {
                let &(vcol, v) = toks
                    .get(1)
                    .ok_or_else(|| FormatError::at(line_no, col, format!("{key} needs a value")))?;
                let value = parse_usize(v, line_no, vcol)?;
                let slot = if key == "x-stabilizers" {
                    &mut num_x
                } else {
                    &mut num_z
                };
                if slot.is_some() {
                    return Err(FormatError::at(
                        line_no,
                        col,
                        format!("duplicate {key} field"),
                    ));
                }
                *slot = Some(value);
            }
            "order" => {
                let &(scol, s) = toks
                    .get(1)
                    .ok_or_else(|| FormatError::at(line_no, col, "order needs a stabilizer id"))?;
                let s = parse_usize(s, line_no, scol)?;
                let sep = toks.get(2).copied();
                if sep.map(|(_, t)| t) != Some(":") {
                    return Err(FormatError::at(
                        line_no,
                        sep.map_or(col, |(c, _)| c),
                        "order lines have the form: order <stabilizer> : <qubits...>",
                    ));
                }
                let mut qubits = Vec::with_capacity(toks.len() - 3);
                for &(qcol, q) in &toks[3..] {
                    qubits.push(parse_usize(q, line_no, qcol)?);
                }
                orders.push((line_no, s, qubits));
            }
            "first" => {
                let args: Vec<(usize, &str)> = toks[1..].to_vec();
                if args.len() != 4 || args[1].1 != ":" {
                    return Err(FormatError::at(
                        line_no,
                        col,
                        "first lines have the form: first <qubit> : <first-stab> <second-stab>",
                    ));
                }
                let qubit = parse_usize(args[0].1, line_no, args[0].0)?;
                let a = parse_usize(args[2].1, line_no, args[2].0)?;
                let b = parse_usize(args[3].1, line_no, args[3].0)?;
                firsts.push((qubit, a, b));
            }
            other => {
                return Err(FormatError::at(
                    line_no,
                    col,
                    format!("unknown schedule key {other:?}"),
                ))
            }
        }
    }

    if !saw_header {
        return Err(FormatError::whole_input("empty schedule file"));
    }
    let num_x =
        num_x.ok_or_else(|| FormatError::whole_input("schedule is missing x-stabilizers"))?;
    let num_z =
        num_z.ok_or_else(|| FormatError::whole_input("schedule is missing z-stabilizers"))?;
    let num_stabs = num_x + num_z;

    let mut order_table: Vec<Option<Vec<usize>>> = vec![None; num_stabs];
    for (line_no, s, qubits) in orders {
        if s >= num_stabs {
            return Err(FormatError::at_line(
                line_no,
                format!("order names stabilizer {s} but the schedule has {num_stabs}"),
            ));
        }
        if order_table[s].is_some() {
            return Err(FormatError::at_line(
                line_no,
                format!("duplicate order line for stabilizer {s}"),
            ));
        }
        order_table[s] = Some(qubits);
    }
    let mut order_vec = Vec::with_capacity(num_stabs);
    for (s, slot) in order_table.into_iter().enumerate() {
        order_vec.push(slot.ok_or_else(|| {
            FormatError::whole_input(format!("schedule is missing the order of stabilizer {s}"))
        })?);
    }

    ScheduleSpec::from_components(num_x, num_z, order_vec, firsts)
        .map_err(|e| FormatError::whole_input(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hand_designed_surface_schedule_round_trips() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let text = write_schedule(&schedule);
        let parsed = parse_schedule(&text).unwrap();
        assert_eq!(parsed, schedule);
        parsed.validate_for_code(&code).unwrap();
        assert_eq!(write_schedule(&parsed), text);
    }

    #[test]
    fn coloration_schedules_round_trip_for_several_codes() {
        for code in [
            quantum_repetition_code(5),
            rotated_surface_code_with_layout(5).0,
        ] {
            let schedule = ScheduleSpec::coloration(&code);
            let parsed = parse_schedule(&write_schedule(&schedule)).unwrap();
            assert_eq!(parsed, schedule);
        }
    }

    #[test]
    fn random_schedules_round_trip() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let schedule = ScheduleSpec::random(&code, &mut rng);
            let parsed = parse_schedule(&write_schedule(&schedule)).unwrap();
            assert_eq!(parsed, schedule);
        }
    }

    #[test]
    fn parse_errors_are_located_and_typed() {
        assert!(parse_schedule("").is_err());
        let err = parse_schedule("bogus\n").unwrap_err();
        assert_eq!(err.line, 1);
        let text = "prophunt-schedule v1\nx-stabilizers 1\nz-stabilizers 0\norder 0 : 0 1\nfirst 9 : 0 0\n";
        let err = parse_schedule(text).unwrap_err();
        assert!(err.message.contains("ordered against itself"));
        let text = "prophunt-schedule v1\nx-stabilizers 1\nz-stabilizers 0\norder 5 : 0\n";
        let err = parse_schedule(text).unwrap_err();
        assert_eq!(err.line, 4);
        let text = "prophunt-schedule v1\nx-stabilizers 1\nz-stabilizers 0\n";
        let err = parse_schedule(text).unwrap_err();
        assert!(err.message.contains("missing the order"));
        let text = "prophunt-schedule v1\nx-stabilizers 1\nz-stabilizers 0\norder 0 0 1\n";
        assert!(parse_schedule(text).is_err());
    }

    #[test]
    fn conflicting_first_lines_are_rejected() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let mut text = write_schedule(&schedule);
        // Re-state the first `first` line with the opposite orientation: the parser
        // must refuse rather than let the later line silently win.
        let line = text
            .lines()
            .find(|l| l.starts_with("first"))
            .unwrap()
            .to_string();
        let toks: Vec<&str> = line.split_whitespace().collect();
        text.push_str(&format!("first {} : {} {}\n", toks[1], toks[4], toks[3]));
        let err = parse_schedule(&text).unwrap_err();
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn mismatched_code_is_rejected_by_validate_not_parse() {
        let (d3, _) = rotated_surface_code_with_layout(3);
        let (d5, _) = rotated_surface_code_with_layout(5);
        let schedule = ScheduleSpec::coloration(&d3);
        let parsed = parse_schedule(&write_schedule(&schedule)).unwrap();
        assert!(parsed.validate_for_code(&d5).is_err());
        parsed.validate_for_code(&d3).unwrap();
    }
}
