//! Belief propagation with ordered-statistics post-processing (BP+OSD).

use crate::Decoder;
use prophunt_circuit::DetectorErrorModel;
use prophunt_gf2::BitVec;

/// Min-sum belief propagation over a detector error model's Tanner graph, followed by
/// ordered-statistics decoding (OSD-0) when BP alone does not reproduce the syndrome.
///
/// This is the decoder family the paper uses for LP and RQT codes (BP-LSD); it also
/// decodes matchable surface-code graphs, so the benchmark harness can use one decoder
/// implementation everywhere.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    /// error -> detectors
    error_detectors: Vec<Vec<usize>>,
    /// error -> observables
    error_observables: Vec<Vec<usize>>,
    /// prior log-likelihood ratios log((1-p)/p) per error
    priors: Vec<f64>,
    /// detector-signature -> most likely single mechanism with exactly that signature
    signature_lookup: std::collections::HashMap<Vec<usize>, usize>,
    num_detectors: usize,
    num_observables: usize,
    max_iterations: usize,
    scaling: f64,
}

impl BpOsdDecoder {
    /// Builds a decoder for the given detector error model with default parameters
    /// (30 min-sum iterations, normalization factor 0.8).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        Self::with_parameters(dem, 30, 0.8)
    }

    /// Builds a decoder with explicit iteration count and min-sum normalization factor.
    pub fn with_parameters(dem: &DetectorErrorModel, max_iterations: usize, scaling: f64) -> Self {
        let error_detectors: Vec<Vec<usize>> =
            dem.errors().iter().map(|e| e.detectors.clone()).collect();
        let error_observables: Vec<Vec<usize>> =
            dem.errors().iter().map(|e| e.observables.clone()).collect();
        let priors: Vec<f64> = dem
            .errors()
            .iter()
            .map(|e| {
                let p = e.probability.clamp(1e-12, 0.5 - 1e-12);
                ((1.0 - p) / p).ln()
            })
            .collect();
        let mut signature_lookup = std::collections::HashMap::new();
        for (i, err) in dem.errors().iter().enumerate() {
            signature_lookup
                .entry(err.detectors.clone())
                .and_modify(|best: &mut usize| {
                    if dem.error(*best).probability < err.probability {
                        *best = i;
                    }
                })
                .or_insert(i);
        }
        BpOsdDecoder {
            error_detectors,
            error_observables,
            priors,
            signature_lookup,
            num_detectors: dem.num_detectors(),
            num_observables: dem.num_observables(),
            max_iterations,
            scaling,
        }
    }

    /// Runs min-sum BP; returns `(hard decision, posterior LLRs, converged)`.
    fn belief_propagation(&self, syndrome: &BitVec) -> (BitVec, Vec<f64>, bool) {
        let num_errors = self.priors.len();
        // Messages indexed by (error, position in error's detector list).
        let mut var_to_check: Vec<Vec<f64>> = self
            .error_detectors
            .iter()
            .enumerate()
            .map(|(e, dets)| vec![self.priors[e]; dets.len()])
            .collect();
        let mut check_to_var: Vec<Vec<f64>> = self
            .error_detectors
            .iter()
            .map(|dets| vec![0.0; dets.len()])
            .collect();
        // For check-side iteration we need, per detector, the list of (error, slot).
        let mut check_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_detectors];
        for (e, dets) in self.error_detectors.iter().enumerate() {
            for (slot, &d) in dets.iter().enumerate() {
                check_adj[d].push((e, slot));
            }
        }

        let mut llr = vec![0.0f64; num_errors];
        let mut decision = BitVec::zeros(num_errors);
        for _ in 0..self.max_iterations {
            // Check update (min-sum with normalization).
            for (d, adj) in check_adj.iter().enumerate() {
                let target = if syndrome.get(d) { -1.0 } else { 1.0 };
                // Product of signs and two smallest magnitudes of incoming messages.
                let mut sign_product = target;
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min_idx = usize::MAX;
                for (k, &(e, slot)) in adj.iter().enumerate() {
                    let m = var_to_check[e][slot];
                    if m < 0.0 {
                        sign_product = -sign_product;
                    }
                    let mag = m.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min_idx = k;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for (k, &(e, slot)) in adj.iter().enumerate() {
                    let m = var_to_check[e][slot];
                    let sign = sign_product * if m < 0.0 { -1.0 } else { 1.0 };
                    let mag = if k == min_idx { min2 } else { min1 };
                    let mag = if mag.is_finite() { mag } else { 0.0 };
                    check_to_var[e][slot] = self.scaling * sign * mag;
                }
            }
            // Variable update and hard decision.
            for e in 0..num_errors {
                let total: f64 = self.priors[e] + check_to_var[e].iter().sum::<f64>();
                llr[e] = total;
                decision.set(e, total < 0.0);
                for (slot, _) in self.error_detectors[e].iter().enumerate() {
                    var_to_check[e][slot] = total - check_to_var[e][slot];
                }
            }
            if self.syndrome_of(&decision) == *syndrome {
                return (decision, llr, true);
            }
        }
        (decision, llr, false)
    }

    fn syndrome_of(&self, errors: &BitVec) -> BitVec {
        let mut s = BitVec::zeros(self.num_detectors);
        self.syndrome_of_into(errors, &mut s);
        s
    }

    fn syndrome_of_into(&self, errors: &BitVec, out: &mut BitVec) {
        out.clear();
        for e in errors.ones() {
            for &d in &self.error_detectors[e] {
                out.flip(d);
            }
        }
    }

    /// OSD-0: order columns by BP reliability (most likely error first), Gaussian
    /// eliminate to find a pivot basis, and solve for an error supported on the pivots.
    fn osd_zero(&self, syndrome: &BitVec, llr: &[f64]) -> BitVec {
        let num_errors = self.priors.len();
        let mut order: Vec<usize> = (0..num_errors).collect();
        order.sort_by(|&a, &b| {
            llr[a]
                .partial_cmp(&llr[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Gaussian elimination over the column-permuted check matrix, carrying the
        // syndrome as an augmented column. Rows are detectors.
        // We store each row sparsely as a BitVec over the *ordered* columns, built lazily
        // column by column to avoid materialising the full matrix: standard elimination
        // on columns, keeping track of pivot rows.
        let mut pivot_row_of_col: Vec<Option<usize>> = Vec::with_capacity(self.num_detectors);
        let mut row_used = vec![false; self.num_detectors];
        // Row representation: for elimination we need full row operations; operate on the
        // transposed problem instead. Build matrix rows = detectors over ordered columns.
        let mut rows: Vec<BitVec> = vec![BitVec::zeros(num_errors); self.num_detectors];
        for (new_col, &e) in order.iter().enumerate() {
            for &d in &self.error_detectors[e] {
                rows[d].set(new_col, true);
            }
        }
        let mut rhs = syndrome.clone();
        let mut pivot_cols: Vec<(usize, usize)> = Vec::new(); // (column, pivot row)
        for col in 0..num_errors {
            if pivot_cols.len() == self.num_detectors {
                break;
            }
            // Find an unused row with a one in this column.
            let Some(pr) = (0..self.num_detectors).find(|&r| !row_used[r] && rows[r].get(col))
            else {
                pivot_row_of_col.push(None);
                continue;
            };
            row_used[pr] = true;
            pivot_cols.push((col, pr));
            pivot_row_of_col.push(Some(pr));
            let pivot = rows[pr].clone();
            let pivot_rhs = rhs.get(pr);
            for r in 0..self.num_detectors {
                if r != pr && rows[r].get(col) {
                    rows[r].xor_assign_with(&pivot);
                    if pivot_rhs {
                        rhs.flip(r);
                    }
                }
            }
        }
        // Solution: pivot column value = reduced rhs of its pivot row; others zero.
        let mut solution = BitVec::zeros(num_errors);
        for &(col, pr) in &pivot_cols {
            if rhs.get(pr) {
                solution.set(order[col], true);
            }
        }
        solution
    }

    /// Total prior weight of an error set (sum of `log((1-p)/p)`); lower is more likely.
    fn weight_of(&self, errors: &BitVec) -> f64 {
        errors.ones().map(|e| self.priors[e]).sum()
    }

    /// Predicts the physical error pattern (over error-mechanism indices) for a syndrome.
    ///
    /// Several candidate explanations are produced — the single mechanism with exactly
    /// this detector signature (if one exists), the BP hard decision when it reproduces
    /// the syndrome, and the OSD-0 solution — and the most likely (lowest prior weight)
    /// syndrome-consistent candidate is returned.
    pub fn decode_to_errors(&self, detectors: &BitVec) -> BitVec {
        if detectors.is_zero() {
            return BitVec::zeros(self.priors.len());
        }
        let mut candidates: Vec<BitVec> = Vec::with_capacity(3);
        let signature: Vec<usize> = detectors.ones().collect();
        if let Some(&single) = self.signature_lookup.get(&signature) {
            candidates.push(BitVec::from_indices(self.priors.len(), &[single]));
        }
        let (decision, llr, converged) = self.belief_propagation(detectors);
        if converged {
            candidates.push(decision);
        } else {
            candidates.push(self.osd_zero(detectors, &llr));
        }
        candidates
            .into_iter()
            .filter(|c| &self.syndrome_of(c) == detectors)
            .min_by(|a, b| {
                self.weight_of(a)
                    .partial_cmp(&self.weight_of(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| BitVec::zeros(self.priors.len()))
    }

    fn observables_of(&self, errors: &BitVec) -> BitVec {
        let mut obs = BitVec::zeros(self.num_observables);
        for e in errors.ones() {
            for &o in &self.error_observables[e] {
                obs.flip(o);
            }
        }
        obs
    }

    /// Batch variant of [`BpOsdDecoder::decode_to_errors`] over reusable
    /// scratch; produces exactly the per-shot result (same candidate set, same
    /// weight tie-breaking).
    fn decode_to_errors_with_scratch(&self, detectors: &BitVec, s: &mut BpScratch) -> BitVec {
        if detectors.is_zero() {
            return BitVec::zeros(self.priors.len());
        }
        let mut candidates: Vec<BitVec> = Vec::with_capacity(2);
        let signature: Vec<usize> = detectors.ones().collect();
        if let Some(&single) = self.signature_lookup.get(&signature) {
            candidates.push(BitVec::from_indices(self.priors.len(), &[single]));
        }
        let converged = self.belief_propagation_with_scratch(detectors, s);
        if converged {
            candidates.push(s.decision.clone());
        } else {
            let osd = self.osd_zero_with_scratch(detectors, s);
            candidates.push(osd);
        }
        candidates
            .into_iter()
            .filter(|c| &self.syndrome_of(c) == detectors)
            .min_by(|a, b| {
                self.weight_of(a)
                    .partial_cmp(&self.weight_of(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| BitVec::zeros(self.priors.len()))
    }

    /// Min-sum BP over flattened scratch buffers: the same message updates as
    /// [`BpOsdDecoder::belief_propagation`], applied in the same order (checks
    /// in detector order, slots in each error's detector-list order), so the
    /// floating-point operation sequence per shot — and hence the hard decision
    /// and posterior LLRs left in the scratch — is identical to the per-shot
    /// path. Returns whether BP converged.
    fn belief_propagation_with_scratch(&self, syndrome: &BitVec, s: &mut BpScratch) -> bool {
        let num_errors = self.priors.len();
        let BpScratch {
            slot_base,
            var_to_check,
            check_to_var,
            check_adj,
            llr,
            decision,
            syndrome_buf,
            ..
        } = s;
        for e in 0..num_errors {
            for k in slot_base[e]..slot_base[e + 1] {
                var_to_check[k] = self.priors[e];
            }
        }
        check_to_var.fill(0.0);
        llr.fill(0.0);
        decision.clear();
        for _ in 0..self.max_iterations {
            // Check update (min-sum with normalization).
            for (d, adj) in check_adj.iter().enumerate() {
                let target = if syndrome.get(d) { -1.0 } else { 1.0 };
                let mut sign_product = target;
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min_idx = usize::MAX;
                for (k, &(_, flat)) in adj.iter().enumerate() {
                    let m = var_to_check[flat];
                    if m < 0.0 {
                        sign_product = -sign_product;
                    }
                    let mag = m.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min_idx = k;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for (k, &(_, flat)) in adj.iter().enumerate() {
                    let m = var_to_check[flat];
                    let sign = sign_product * if m < 0.0 { -1.0 } else { 1.0 };
                    let mag = if k == min_idx { min2 } else { min1 };
                    let mag = if mag.is_finite() { mag } else { 0.0 };
                    check_to_var[flat] = self.scaling * sign * mag;
                }
            }
            // Variable update and hard decision.
            for e in 0..num_errors {
                let slots = slot_base[e]..slot_base[e + 1];
                let total: f64 = self.priors[e] + check_to_var[slots.clone()].iter().sum::<f64>();
                llr[e] = total;
                decision.set(e, total < 0.0);
                for k in slots {
                    var_to_check[k] = total - check_to_var[k];
                }
            }
            self.syndrome_of_into(decision, syndrome_buf);
            if *syndrome_buf == *syndrome {
                return true;
            }
        }
        false
    }

    /// OSD-0 over reusable scratch: the same column ordering (stable sort on
    /// the scratch LLRs), elimination order and pivot choices as
    /// [`BpOsdDecoder::osd_zero`], with the detector-row matrix and rhs reused
    /// across shots instead of reallocated.
    fn osd_zero_with_scratch(&self, syndrome: &BitVec, s: &mut BpScratch) -> BitVec {
        let num_errors = self.priors.len();
        let BpScratch {
            llr,
            order,
            rows,
            pivot,
            row_used,
            rhs,
            pivot_cols,
            ..
        } = s;
        order.clear();
        order.extend(0..num_errors);
        order.sort_by(|&a, &b| {
            llr[a]
                .partial_cmp(&llr[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for row in rows.iter_mut() {
            row.clear();
        }
        for (new_col, &e) in order.iter().enumerate() {
            for &d in &self.error_detectors[e] {
                rows[d].set(new_col, true);
            }
        }
        rhs.clone_from(syndrome);
        row_used.fill(false);
        pivot_cols.clear();
        for col in 0..num_errors {
            if pivot_cols.len() == self.num_detectors {
                break;
            }
            // Find an unused row with a one in this column.
            let Some(pr) = (0..self.num_detectors).find(|&r| !row_used[r] && rows[r].get(col))
            else {
                continue;
            };
            row_used[pr] = true;
            pivot_cols.push((col, pr));
            pivot.clone_from(&rows[pr]);
            let pivot_rhs = rhs.get(pr);
            for r in 0..self.num_detectors {
                if r != pr && rows[r].get(col) {
                    rows[r].xor_assign_with(pivot);
                    if pivot_rhs {
                        rhs.flip(r);
                    }
                }
            }
        }
        let mut solution = BitVec::zeros(num_errors);
        for &(col, pr) in pivot_cols.iter() {
            if rhs.get(pr) {
                solution.set(order[col], true);
            }
        }
        solution
    }
}

/// Reusable per-batch working memory for [`BpOsdDecoder`]: the BP messages in
/// one flattened array each (slot `k` of error `e` lives at `slot_base[e] + k`
/// instead of its own heap vector), the per-detector check adjacency built once
/// per batch instead of once per shot, and the OSD-0 elimination matrix.
struct BpScratch {
    /// `slot_base[e]..slot_base[e + 1]` spans error `e`'s message slots.
    slot_base: Vec<usize>,
    var_to_check: Vec<f64>,
    check_to_var: Vec<f64>,
    /// Per detector: `(error, flattened slot index)`, in the same order the
    /// per-shot path builds its adjacency (errors ascending).
    check_adj: Vec<Vec<(usize, usize)>>,
    llr: Vec<f64>,
    decision: BitVec,
    syndrome_buf: BitVec,
    order: Vec<usize>,
    rows: Vec<BitVec>,
    pivot: BitVec,
    row_used: Vec<bool>,
    rhs: BitVec,
    pivot_cols: Vec<(usize, usize)>,
}

impl BpScratch {
    fn new(decoder: &BpOsdDecoder) -> Self {
        let num_errors = decoder.priors.len();
        let mut slot_base = Vec::with_capacity(num_errors + 1);
        let mut total = 0usize;
        for dets in &decoder.error_detectors {
            slot_base.push(total);
            total += dets.len();
        }
        slot_base.push(total);
        let mut check_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); decoder.num_detectors];
        for (e, dets) in decoder.error_detectors.iter().enumerate() {
            for (slot, &d) in dets.iter().enumerate() {
                check_adj[d].push((e, slot_base[e] + slot));
            }
        }
        BpScratch {
            slot_base,
            var_to_check: vec![0.0; total],
            check_to_var: vec![0.0; total],
            check_adj,
            llr: vec![0.0; num_errors],
            decision: BitVec::zeros(num_errors),
            syndrome_buf: BitVec::zeros(decoder.num_detectors),
            order: Vec::with_capacity(num_errors),
            rows: vec![BitVec::zeros(num_errors); decoder.num_detectors],
            pivot: BitVec::zeros(num_errors),
            row_used: vec![false; decoder.num_detectors],
            rhs: BitVec::zeros(decoder.num_detectors),
            pivot_cols: Vec::new(),
        }
    }
}

impl Decoder for BpOsdDecoder {
    fn decode(&self, detectors: &BitVec) -> BitVec {
        let errors = self.decode_to_errors(detectors);
        self.observables_of(&errors)
    }

    /// Batch path of the frame engine: flattened BP message buffers, the check
    /// adjacency and the OSD elimination matrix are built once and reused
    /// across every shot of the batch. Per-shot results are pinned equal to
    /// [`Decoder::decode`] by the equality tests in this crate and the
    /// `frame_engine` suite tests.
    fn decode_batch(&self, shots: &[BitVec]) -> Vec<BitVec> {
        let mut scratch = BpScratch::new(self);
        shots
            .iter()
            .map(|shot| {
                let errors = self.decode_to_errors_with_scratch(shot, &mut scratch);
                self.observables_of(&errors)
            })
            .collect()
    }

    fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    fn num_observables(&self) -> usize {
        self.num_observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn surface_dem(d: usize, p: f64) -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, d, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn zero_syndrome_decodes_to_zero() {
        let dem = surface_dem(3, 1e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let zero = BitVec::zeros(dem.num_detectors());
        assert!(decoder.decode(&zero).is_zero());
    }

    #[test]
    fn single_error_syndromes_are_corrected() {
        // Feeding a single mechanism's syndrome to the decoder should almost always
        // reproduce its observable effect. Mechanisms whose syndrome has an alternative
        // multi-error explanation of comparable likelihood are allowed to disagree (that
        // near-degeneracy is exactly what sets the logical error floor), so the test
        // tolerates a small fraction of mismatches overall but none for single-detector
        // (boundary-like) mechanisms.
        let dem = surface_dem(3, 1e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let mut failures = 0;
        let mut boundary_failures = 0;
        for err in dem.errors() {
            let mut syndrome = BitVec::zeros(dem.num_detectors());
            for &d in &err.detectors {
                syndrome.set(d, true);
            }
            let mut expected = BitVec::zeros(dem.num_observables());
            for &o in &err.observables {
                expected.set(o, true);
            }
            if decoder.decode(&syndrome) != expected {
                failures += 1;
                if err.detectors.len() <= 1 {
                    boundary_failures += 1;
                }
            }
        }
        assert_eq!(
            boundary_failures, 0,
            "single-detector syndromes must never misdecode"
        );
        let limit = dem.num_errors() / 20;
        assert!(
            failures <= limit,
            "too many single-fault misdecodes: {failures}/{}",
            dem.num_errors()
        );
    }

    #[test]
    fn decoded_errors_reproduce_the_syndrome() {
        let dem = surface_dem(3, 2e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(11);
        for _ in 0..50 {
            let (dets, _) = sampler.sample();
            let errors = decoder.decode_to_errors(&dets);
            assert_eq!(
                decoder.syndrome_of(&errors),
                dets,
                "correction must explain the syndrome"
            );
        }
    }

    #[test]
    fn decode_batch_equals_per_shot_decode_including_osd_shots() {
        // High enough noise that some shots fail BP convergence and fall
        // through to OSD-0, exercising the reused elimination matrix.
        let dem = surface_dem(3, 3e-2);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(29);
        let shots: Vec<BitVec> = (0..60).map(|_| sampler.sample().0).collect();
        let batch = decoder.decode_batch(&shots);
        assert_eq!(batch.len(), shots.len());
        for (i, (shot, prediction)) in shots.iter().zip(&batch).enumerate() {
            assert_eq!(&decoder.decode(shot), prediction, "shot {i}");
        }
    }

    #[test]
    fn repetition_code_sampled_shots_decode_mostly_correctly() {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(3);
        let mut failures = 0;
        let shots = 300;
        for _ in 0..shots {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        // At p = 0.5% a distance-5 repetition code should essentially never fail in 300 shots.
        assert!(failures <= 3, "too many failures: {failures}/{shots}");
    }
}
