//! Traced-vs-untraced overhead of the `prophunt-obs` trace-event layer on the
//! frames-engine LER workload, plus the search-identity gate.
//!
//! This is the bench behind the trace layer's acceptance claim: attaching a
//! [`Tracer`] to the production registry (span begin/end around every runtime
//! task, LER chunk and pipeline stage) must cost at most a few percent of
//! frames-engine throughput, and a registry *without* a tracer — the default,
//! tracing-disabled configuration — must be indistinguishable from the
//! pre-trace baseline. For every benchmark code it runs the same fixed shot
//! budget through [`estimate_with_budget_engine`] with [`Engine::Frames`],
//! alternating three configurations: the untraced enabled registry (the
//! baseline), a second untraced enabled registry (the tracing-disabled
//! control — byte-for-byte the same configuration, so its measured "overhead"
//! bounds timer noise and proves disabled tracing adds nothing), and the
//! enabled registry with a tracer attached (full tracing).
//!
//! Deterministic gates always run, smoke profile included:
//!
//! * tracing must not perturb results — the failure counts of the untraced
//!   and traced runs must be identical (the tracer is out-of-band of the
//!   splitmix64 seed streams), and a traced portfolio search must produce the
//!   bit-identical incumbent (depth, strategy, instance, round, schedule and
//!   per-round depth sequence) as the untraced run;
//! * the tracer must actually observe the run — every traced rep must record
//!   the same, nonzero number of events with none dropped, and the traced
//!   search must emit convergence-diagnostic records.
//!
//! The timing gates (suite-aggregate overhead <= 5% with full tracing, <= 1%
//! for the tracing-disabled control) only run at the full profile: the smoke
//! budget's windows are short enough that timer noise, not the tracer, would
//! dominate. The committed `BENCH_trace.json` records the full-profile run;
//! `PROPHUNT_SMOKE=1` trims the budget and skips the file write.

use prophunt_api::{DecoderRegistry, ExperimentSpec, SearchJob, Session, StrategyKind};
use prophunt_bench::{benchmark_suite, runtime_config_from_env, stage_seed};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{
    estimate_with_budget_engine, BpOsdDecoder, Decoder, Engine, ShotBudget, UnionFindDecoder,
};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{write_report, write_schedule, Json};
use prophunt_obs::{Obs, Tracer, DIAG_CATEGORY};
use prophunt_runtime::Runtime;
use std::time::{Duration, Instant};

struct TraceRow {
    code: String,
    shots: usize,
    baseline: Duration,
    control: Duration,
    traced: Duration,
    events: usize,
}

impl TraceRow {
    fn sps(&self, wall: Duration) -> f64 {
        self.shots as f64 / wall.as_secs_f64().max(1e-12)
    }

    fn overhead_pct(&self, wall: Duration) -> f64 {
        100.0 * (wall.as_secs_f64() / self.baseline.as_secs_f64().max(1e-12) - 1.0)
    }

    fn to_record(&self) -> ReportRecord {
        ReportRecord::Table {
            name: "trace_bench".into(),
            fields: vec![
                ("code".into(), Json::Str(self.code.clone())),
                ("shots".into(), Json::UInt(self.shots as u64)),
                ("events".into(), Json::UInt(self.events as u64)),
                (
                    "untraced_shots_per_sec".into(),
                    Json::Float(self.sps(self.baseline)),
                ),
                (
                    "traced_shots_per_sec".into(),
                    Json::Float(self.sps(self.traced)),
                ),
                (
                    "traced_overhead_pct".into(),
                    Json::Float(self.overhead_pct(self.traced)),
                ),
                (
                    "disabled_overhead_pct".into(),
                    Json::Float(self.overhead_pct(self.control)),
                ),
            ],
        }
    }
}

/// The search-identity gate: the full portfolio on the smallest suite code,
/// once untraced and once traced, must agree bit-for-bit on the incumbent —
/// and the traced run must have emitted convergence diagnostics.
fn search_identity_gate(smoke: bool) -> ReportRecord {
    let runtime = runtime_config_from_env();
    let bench = benchmark_suite(false)
        .into_iter()
        .next()
        .expect("benchmark suite is never empty");
    let builder = match &bench.layout {
        Some(layout) => {
            ExperimentSpec::builder().code_with_layout(bench.code.clone(), layout.clone())
        }
        None => ExperimentSpec::builder().code(bench.code.clone()),
    };
    let spec = builder
        .rounds(bench.rounds.min(3))
        .build()
        .expect("coloration schedules are valid for their code");
    let (rounds, samples) = if smoke { (2, 4) } else { (4, 12) };
    let job = SearchJob::new(spec)
        .with_strategies(StrategyKind::ALL.to_vec())
        .with_portfolio_size(StrategyKind::ALL.len())
        .with_rounds(rounds)
        .with_samples(samples)
        .with_seed(stage_seed(&runtime, 300));

    let mut untraced = Session::new(runtime);
    let plain = untraced
        .run_search_quiet(&job)
        .expect("benchmark search job must be runnable");

    let tracer = Tracer::new();
    let obs = Obs::enabled().with_tracer(tracer.clone());
    let mut traced_session = Session::with_obs(runtime, DecoderRegistry::with_defaults(), obs);
    let traced = traced_session
        .run_search_quiet(&job)
        .expect("benchmark search job must be runnable");

    let (a, b) = (&plain.result.best, &traced.result.best);
    assert!(
        a.depth == b.depth
            && a.strategy == b.strategy
            && a.instance == b.instance
            && a.round == b.round
            && write_schedule(&a.schedule) == write_schedule(&b.schedule),
        "tracing changed the search incumbent on {}: depth {} vs {}",
        bench.code.name(),
        a.depth,
        b.depth
    );
    let depths = |r: &prophunt_api::SearchOutcome| -> Vec<usize> {
        r.result
            .rounds
            .iter()
            .map(|round| round.incumbent.depth)
            .collect()
    };
    assert_eq!(
        depths(&plain),
        depths(&traced),
        "tracing changed the per-round incumbent-depth sequence"
    );
    let log = tracer.drain();
    assert_eq!(log.dropped, 0, "search trace dropped events");
    let diags = log.events.iter().filter(|e| e.cat == DIAG_CATEGORY).count();
    assert!(
        diags > 0,
        "traced search must emit convergence-diagnostic records"
    );
    println!(
        "search identity: {} depth {} ({} rounds) identical traced vs untraced, {} diag records",
        bench.code.name(),
        b.depth,
        rounds,
        diags
    );
    ReportRecord::Table {
        name: "trace_bench".into(),
        fields: vec![
            ("code".into(), Json::Str(bench.code.name().to_string())),
            ("search_depth".into(), Json::UInt(b.depth as u64)),
            ("search_diag_records".into(), Json::UInt(diags as u64)),
            ("search_identical".into(), Json::Bool(true)),
        ],
    }
}

fn main() {
    let smoke = std::env::var("PROPHUNT_SMOKE").is_ok();
    let runtime = runtime_config_from_env();
    let shots = if smoke { 512 } else { 4096 };
    let reps = if smoke { 2 } else { 5 };
    println!("prophunt-obs trace layer overhead: frames-engine LER, traced vs untraced registry");
    println!(
        "  {shots} shots per code and configuration, best of {reps} alternating reps, \
         {} threads, chunk {}, seed {} (PROPHUNT_SMOKE=1 trims the budget)",
        runtime.threads, runtime.chunk_size, runtime.seed
    );
    println!(
        "{:<14} {:>6} {:>7} {:>14} {:>14} {:>9} {:>9}",
        "code", "shots", "events", "untraced sh/s", "traced sh/s", "traced", "disabled"
    );
    let mut records = Vec::new();
    let mut baseline_total = Duration::ZERO;
    let mut control_total = Duration::ZERO;
    let mut traced_total = Duration::ZERO;
    for (stage, bench) in benchmark_suite(true).into_iter().enumerate() {
        // The obs_bench workload: Table 1 operating point, production decoder
        // per family, frames engine. The tracer rides along out of band, so
        // every configuration consumes identical RNG streams.
        let p = 1e-3;
        let schedule = bench
            .hand_designed
            .clone()
            .unwrap_or_else(|| ScheduleSpec::coloration(&bench.code));
        let exp = MemoryExperiment::build(&bench.code, &schedule, bench.rounds, MemoryBasis::Z)
            .expect("benchmark schedule must be valid for its code");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder: Box<dyn Decoder> = if bench.code.name().starts_with("surface") {
            Box::new(UnionFindDecoder::new(&dem))
        } else {
            Box::new(BpOsdDecoder::new(&dem))
        };
        let decoder = &*decoder;
        let seed = stage_seed(&runtime, 200 + stage as u64);

        let run = |obs: &Obs| {
            let rt = Runtime::with_obs(runtime, obs.clone());
            let t = Instant::now();
            let (estimate, _) = estimate_with_budget_engine(
                &dem,
                decoder,
                ShotBudget::fixed(shots),
                seed,
                Engine::Frames,
                &rt,
                &mut |_| {},
            );
            (estimate.failures, t.elapsed())
        };

        let mut baseline = Duration::MAX;
        let mut control = Duration::MAX;
        let mut traced = Duration::MAX;
        let mut events: Option<usize> = None;
        for _ in 0..reps {
            let (baseline_failures, wall) = run(&Obs::enabled());
            baseline = baseline.min(wall);
            let (control_failures, wall) = run(&Obs::enabled());
            control = control.min(wall);
            let tracer = Tracer::new();
            let (traced_failures, wall) = run(&Obs::enabled().with_tracer(tracer.clone()));
            traced = traced.min(wall);
            // Deterministic gate, always on: tracing is out-of-band of the
            // seed streams, so it must not change a single failure count.
            assert!(
                baseline_failures == traced_failures && baseline_failures == control_failures,
                "{}: attaching a tracer changed the failure count",
                bench.code.name()
            );
            // Deterministic gate, always on: the traced run must record the
            // same, nonzero number of events every rep (the span structure is
            // a function of the deterministic chunking) and drop none.
            let log = tracer.drain();
            assert_eq!(
                log.dropped,
                0,
                "{}: trace dropped events",
                bench.code.name()
            );
            assert!(!log.events.is_empty());
            match events {
                None => events = Some(log.events.len()),
                Some(n) => assert_eq!(
                    n,
                    log.events.len(),
                    "{}: traced event count varies across identical reps",
                    bench.code.name()
                ),
            }
        }

        let row = TraceRow {
            code: bench.code.name().to_string(),
            shots,
            baseline,
            control,
            traced,
            events: events.unwrap_or(0),
        };
        println!(
            "{:<14} {:>6} {:>7} {:>14.0} {:>14.0} {:>8.2}% {:>8.2}%",
            row.code,
            row.shots,
            row.events,
            row.sps(row.baseline),
            row.sps(row.traced),
            row.overhead_pct(row.traced),
            row.overhead_pct(row.control)
        );
        baseline_total += baseline;
        control_total += control;
        traced_total += traced;
        records.push(row.to_record());
    }
    let pct = |wall: Duration| {
        100.0 * (wall.as_secs_f64() / baseline_total.as_secs_f64().max(1e-12) - 1.0)
    };
    let traced_overhead = pct(traced_total);
    let disabled_overhead = pct(control_total);
    println!(
        "{:<14} {:>6} {:>7} {:>14} {:>14} {:>8.2}% {:>8.2}%",
        "suite", "", "", "", "", traced_overhead, disabled_overhead
    );

    records.push(search_identity_gate(smoke));

    // The timing gates only run at the full budget: the smoke profile's
    // windows are short enough that timer noise would dominate. (The
    // failure-count, event-count and search-identity asserts above are the
    // deterministic gates and always run.)
    if !smoke {
        assert!(
            traced_overhead <= 5.0,
            "full tracing must cost <= 5% of frames-engine throughput on the \
             suite aggregate (got {traced_overhead:.2}%)"
        );
        assert!(
            disabled_overhead.abs() <= 1.0,
            "a trace-disabled registry is the baseline configuration; the \
             control run must agree within 1% (got {disabled_overhead:.2}%)"
        );
    }
    records.push(ReportRecord::Table {
        name: "trace_bench".into(),
        fields: vec![
            ("code".into(), Json::Str("suite".into())),
            ("traced_overhead_pct".into(), Json::Float(traced_overhead)),
            (
                "disabled_overhead_pct".into(),
                Json::Float(disabled_overhead),
            ),
        ],
    });
    if smoke {
        // Never clobber the committed full-profile baseline with trimmed
        // smoke numbers.
        println!("smoke mode: skipping BENCH_trace.json (baseline is the full profile)");
    } else {
        std::fs::write("BENCH_trace.json", write_report(&records))
            .expect("cannot write BENCH_trace.json");
        println!("wrote BENCH_trace.json ({} rows)", records.len());
    }
}
