//! [`ExperimentSpec`]: the declarative description of one experiment — code,
//! schedule, noise, decoder, rounds and basis — built through a validating
//! builder and consumed by jobs.

use crate::error::ApiError;
use crate::noise::NoiseSpec;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::MemoryBasis;
use prophunt_decoders::{DecodeCache, Engine};
use prophunt_formats::{resolve_family, ResolvedCode};
use prophunt_qec::surface::SurfaceLayout;
use prophunt_qec::CssCode;

/// Where the initial/analysed schedule comes from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ScheduleSource {
    /// The coloration-circuit baseline (every code has one).
    #[default]
    Coloration,
    /// The hand-designed surface-code schedule (requires a layout).
    HandDesigned,
    /// An explicit schedule (e.g. parsed from a file or produced by a previous
    /// optimization job).
    Explicit(ScheduleSpec),
}

impl ScheduleSource {
    /// A short label for records and event streams.
    pub fn label(&self) -> &'static str {
        match self {
            ScheduleSource::Coloration => "coloration",
            ScheduleSource::HandDesigned => "hand",
            ScheduleSource::Explicit(_) => "explicit",
        }
    }
}

/// Which memory bases an estimation job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BasisSelection {
    /// Z-basis memory experiment only.
    #[default]
    Z,
    /// X-basis memory experiment only.
    X,
    /// Both bases, combined into one estimate (the paper's per-shot logical error).
    Both,
}

impl BasisSelection {
    /// The concrete bases to run, in order.
    pub fn bases(&self) -> &'static [MemoryBasis] {
        match self {
            BasisSelection::Z => &[MemoryBasis::Z],
            BasisSelection::X => &[MemoryBasis::X],
            BasisSelection::Both => &[MemoryBasis::Z, MemoryBasis::X],
        }
    }
}

/// A fully resolved experiment description.
///
/// Built via [`ExperimentSpec::builder`], which validates everything up front:
/// the code exists, the schedule is valid *for that code*, the noise parameters
/// are in range, rounds are positive. A spec is immutable and reusable — run it
/// under different budgets, seeds or sessions without re-validating.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    code: CssCode,
    layout: Option<SurfaceLayout>,
    schedule: ScheduleSpec,
    schedule_label: String,
    noise: NoiseSpec,
    decoder: String,
    rounds: usize,
    basis: BasisSelection,
    engine: Engine,
    decode_cache: DecodeCache,
}

impl ExperimentSpec {
    /// Starts a builder with the defaults: coloration schedule, uniform
    /// depolarizing noise at `p = 0.001`, the `bposd` decoder, 3 rounds, Z basis.
    pub fn builder() -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::default()
    }

    /// Returns the code under test.
    pub fn code(&self) -> &CssCode {
        &self.code
    }

    /// Returns the surface layout when the code has one.
    pub fn layout(&self) -> Option<&SurfaceLayout> {
        self.layout.as_ref()
    }

    /// Returns the resolved, validated schedule.
    pub fn schedule(&self) -> &ScheduleSpec {
        &self.schedule
    }

    /// Returns a short label describing the schedule source.
    pub fn schedule_label(&self) -> &str {
        &self.schedule_label
    }

    /// Returns the noise specification.
    pub fn noise(&self) -> NoiseSpec {
        self.noise
    }

    /// Returns the registry name of the decoder.
    pub fn decoder(&self) -> &str {
        &self.decoder
    }

    /// Returns the number of syndrome-measurement rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Returns the basis selection.
    pub fn basis(&self) -> BasisSelection {
        self.basis
    }

    /// Returns the estimation engine (default: [`Engine::Scalar`]).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Returns the syndrome-dedup decode-cache setting (default:
    /// [`DecodeCache::On`]). Only the frame engine consults it; results are
    /// bit-identical either way — the knob exists for A/B timing and as a
    /// belt-and-braces escape hatch.
    pub fn decode_cache(&self) -> DecodeCache {
        self.decode_cache
    }

    /// Returns a derived spec with a different schedule (revalidated against the
    /// code) — the cheap way to evaluate an optimized schedule under the same
    /// noise/decoder settings.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Circuit`] when the schedule is invalid for the code.
    pub fn with_schedule(&self, schedule: ScheduleSpec) -> Result<ExperimentSpec, ApiError> {
        schedule.validate_for_code(&self.code)?;
        let mut spec = self.clone();
        spec.schedule = schedule;
        spec.schedule_label = "explicit".to_string();
        Ok(spec)
    }

    /// Returns a derived spec with a different noise model.
    pub fn with_noise(&self, noise: NoiseSpec) -> ExperimentSpec {
        let mut spec = self.clone();
        spec.noise = noise;
        spec
    }

    /// Returns a derived spec with a different decoder name. The name is resolved
    /// against the session's registry at run time.
    pub fn with_decoder(&self, decoder: impl Into<String>) -> ExperimentSpec {
        let mut spec = self.clone();
        spec.decoder = decoder.into();
        spec
    }

    /// Returns a derived spec with a different estimation engine.
    pub fn with_engine(&self, engine: Engine) -> ExperimentSpec {
        let mut spec = self.clone();
        spec.engine = engine;
        spec
    }

    /// Returns a derived spec with a different decode-cache setting.
    pub fn with_decode_cache(&self, cache: DecodeCache) -> ExperimentSpec {
        let mut spec = self.clone();
        spec.decode_cache = cache;
        spec
    }
}

/// Builder for [`ExperimentSpec`]; see [`ExperimentSpec::builder`].
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    code: Option<(CssCode, Option<SurfaceLayout>)>,
    schedule: ScheduleSource,
    noise: NoiseSpec,
    decoder: String,
    rounds: usize,
    basis: BasisSelection,
    engine: Engine,
    decode_cache: DecodeCache,
}

impl Default for ExperimentSpecBuilder {
    fn default() -> Self {
        ExperimentSpecBuilder {
            code: None,
            schedule: ScheduleSource::Coloration,
            noise: NoiseSpec::uniform(1e-3),
            decoder: "bposd".to_string(),
            rounds: 3,
            basis: BasisSelection::Z,
            engine: Engine::Scalar,
            decode_cache: DecodeCache::On,
        }
    }
}

impl ExperimentSpecBuilder {
    /// Sets the code from a family string (`surface:3`, `steane`,
    /// `generalized_bicycle:9:0,1:0,3`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Format`] when the family string does not resolve.
    pub fn code_family(mut self, family: &str) -> Result<Self, ApiError> {
        let ResolvedCode { code, layout } = resolve_family(family)?;
        self.code = Some((code, layout));
        Ok(self)
    }

    /// Sets an explicitly constructed code (no layout: `hand` schedules are
    /// unavailable).
    pub fn code(mut self, code: CssCode) -> Self {
        self.code = Some((code, None));
        self
    }

    /// Sets a code together with its surface layout.
    pub fn code_with_layout(mut self, code: CssCode, layout: SurfaceLayout) -> Self {
        self.code = Some((code, Some(layout)));
        self
    }

    /// Sets an already resolved code (e.g. from a parsed spec file).
    pub fn resolved_code(mut self, resolved: ResolvedCode) -> Self {
        self.code = Some((resolved.code, resolved.layout));
        self
    }

    /// Sets the schedule source (default: coloration).
    pub fn schedule(mut self, schedule: ScheduleSource) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the noise model (default: uniform depolarizing at `p = 0.001`).
    pub fn noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the noise model from a spec string (`si1000:0.002`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidNoise`] when the string does not parse.
    pub fn noise_str(self, spec: &str) -> Result<Self, ApiError> {
        Ok(self.noise(NoiseSpec::parse(spec)?))
    }

    /// Sets the decoder registry name (default: `bposd`). Resolution against the
    /// registry happens when a job runs in a session.
    pub fn decoder(mut self, name: impl Into<String>) -> Self {
        self.decoder = name.into();
        self
    }

    /// Sets the number of syndrome-measurement rounds (default: 3).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the basis selection (default: Z).
    pub fn basis(mut self, basis: BasisSelection) -> Self {
        self.basis = basis;
        self
    }

    /// Sets the estimation engine (default: [`Engine::Scalar`]). The frame
    /// engine samples and decodes 64 shots per machine word; see
    /// [`prophunt_decoders::Engine`] for the determinism contract.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the frame engine's syndrome-dedup decode cache (default:
    /// [`DecodeCache::On`]). Results are bit-identical either way; see
    /// [`prophunt_decoders::decode_shots_cached`].
    pub fn decode_cache(mut self, cache: DecodeCache) -> Self {
        self.decode_cache = cache;
        self
    }

    /// Resolves and validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidSpec`] when no code was given, rounds are zero,
    /// or a hand-designed schedule is requested without a layout, and
    /// [`ApiError::Circuit`] when the schedule fails validation against the code.
    pub fn build(self) -> Result<ExperimentSpec, ApiError> {
        let (code, layout) = self
            .code
            .ok_or_else(|| ApiError::InvalidSpec("no code given (set code_family/code)".into()))?;
        if self.rounds == 0 {
            return Err(ApiError::InvalidSpec("rounds must be at least 1".into()));
        }
        let schedule_label = self.schedule.label().to_string();
        let schedule = match self.schedule {
            ScheduleSource::Coloration => ScheduleSpec::coloration(&code),
            ScheduleSource::HandDesigned => {
                let layout = layout.as_ref().ok_or_else(|| {
                    ApiError::InvalidSpec(
                        "hand-designed schedules need a code with a layout (surface:<d>)".into(),
                    )
                })?;
                ScheduleSpec::surface_hand_designed(&code, layout)
            }
            ScheduleSource::Explicit(schedule) => schedule,
        };
        schedule.validate_for_code(&code)?;
        Ok(ExperimentSpec {
            code,
            layout,
            schedule,
            schedule_label,
            noise: self.noise,
            decoder: self.decoder,
            rounds: self.rounds,
            basis: self.basis,
            engine: self.engine,
            decode_cache: self.decode_cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_a_valid_surface_spec() {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(spec.decoder(), "bposd");
        assert_eq!(spec.rounds(), 3);
        assert_eq!(spec.schedule_label(), "coloration");
        assert_eq!(spec.noise(), NoiseSpec::uniform(1e-3));
        assert!(spec.layout().is_some());
        spec.schedule().validate_for_code(spec.code()).unwrap();
    }

    #[test]
    fn hand_designed_schedules_need_a_layout() {
        let err = ExperimentSpec::builder()
            .code_family("steane")
            .unwrap()
            .schedule(ScheduleSource::HandDesigned)
            .build()
            .unwrap_err();
        assert!(matches!(err, ApiError::InvalidSpec(_)), "{err}");
        let ok = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .schedule(ScheduleSource::HandDesigned)
            .build()
            .unwrap();
        assert_eq!(ok.schedule_label(), "hand");
    }

    #[test]
    fn builder_rejects_missing_code_and_zero_rounds() {
        assert!(matches!(
            ExperimentSpec::builder().build(),
            Err(ApiError::InvalidSpec(_))
        ));
        assert!(matches!(
            ExperimentSpec::builder()
                .code_family("surface:3")
                .unwrap()
                .rounds(0)
                .build(),
            Err(ApiError::InvalidSpec(_))
        ));
        assert!(ExperimentSpec::builder().code_family("nope:1").is_err());
    }

    #[test]
    fn derived_specs_revalidate_schedules() {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        // A schedule for a different code must be rejected.
        let other = ExperimentSpec::builder()
            .code_family("steane")
            .unwrap()
            .build()
            .unwrap();
        assert!(spec.with_schedule(other.schedule().clone()).is_err());
        // The code's own hand-designed schedule is accepted.
        let layout = spec.layout().unwrap().clone();
        let hand = ScheduleSpec::surface_hand_designed(spec.code(), &layout);
        let derived = spec.with_schedule(hand).unwrap();
        assert_eq!(derived.schedule_label(), "explicit");
        // Noise/decoder derivation preserves the rest of the spec.
        let si = derived.with_noise(NoiseSpec::parse("si1000:0.002").unwrap());
        assert_eq!(si.noise().p(), 2e-3);
        assert_eq!(si.with_decoder("unionfind").decoder(), "unionfind");
    }

    #[test]
    fn engine_defaults_to_scalar_and_derives_like_the_other_knobs() {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(spec.engine(), Engine::Scalar);
        let frames = spec.with_engine(Engine::Frames);
        assert_eq!(frames.engine(), Engine::Frames);
        assert_eq!(frames.decoder(), spec.decoder());
        let built = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .engine(Engine::Frames)
            .build()
            .unwrap();
        assert_eq!(built.engine(), Engine::Frames);
    }

    #[test]
    fn decode_cache_defaults_on_and_derives_like_the_other_knobs() {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(spec.decode_cache(), DecodeCache::On);
        let off = spec.with_decode_cache(DecodeCache::Off);
        assert_eq!(off.decode_cache(), DecodeCache::Off);
        assert_eq!(off.engine(), spec.engine());
        let built = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .decode_cache(DecodeCache::Off)
            .build()
            .unwrap();
        assert_eq!(built.decode_cache(), DecodeCache::Off);
    }
}
