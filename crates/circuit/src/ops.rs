//! The physical-circuit intermediate representation: moments of Clifford operations.

use std::fmt;

/// A single physical operation on one or two qubits.
///
/// Only the gate set needed for CSS syndrome-measurement circuits is modelled:
/// computational/Hadamard-basis resets and measurements, the Hadamard gate and CNOT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Reset a qubit to `|0⟩`.
    ResetZ(usize),
    /// Reset a qubit to `|+⟩`.
    ResetX(usize),
    /// Hadamard gate.
    H(usize),
    /// Controlled-NOT with `(control, target)`.
    Cnot(usize, usize),
    /// Measure a qubit in the Z basis.
    MeasureZ(usize),
    /// Measure a qubit in the X basis.
    MeasureX(usize),
}

impl Op {
    /// Returns the qubits this operation acts on (one or two entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::ResetZ(q) | Op::ResetX(q) | Op::H(q) | Op::MeasureZ(q) | Op::MeasureX(q) => vec![q],
            Op::Cnot(c, t) => vec![c, t],
        }
    }

    /// Returns `true` if this is a measurement operation.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Op::MeasureZ(_) | Op::MeasureX(_))
    }

    /// Returns `true` if this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Op::Cnot(_, _))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::ResetZ(q) => write!(f, "RZ {q}"),
            Op::ResetX(q) => write!(f, "RX {q}"),
            Op::H(q) => write!(f, "H {q}"),
            Op::Cnot(c, t) => write!(f, "CNOT {c} {t}"),
            Op::MeasureZ(q) => write!(f, "MZ {q}"),
            Op::MeasureX(q) => write!(f, "MX {q}"),
        }
    }
}

/// A physical circuit organised as a sequence of *moments* (parallel layers).
///
/// Within a moment every qubit participates in at most one operation; the builder
/// enforces this invariant via [`Circuit::push_moment`]. Measurement operations are
/// assigned consecutive measurement indices in circuit order, which detectors and
/// observables refer to.
///
/// # Example
///
/// ```
/// use prophunt_circuit::ops::{Circuit, Op};
///
/// let mut circuit = Circuit::new(3);
/// circuit.push_moment(vec![Op::ResetZ(0), Op::ResetZ(1), Op::ResetZ(2)]);
/// circuit.push_moment(vec![Op::Cnot(0, 1)]);
/// circuit.push_moment(vec![Op::MeasureZ(1)]);
/// assert_eq!(circuit.num_moments(), 3);
/// assert_eq!(circuit.num_measurements(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    num_qubits: usize,
    moments: Vec<Vec<Op>>,
    num_measurements: usize,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            moments: Vec::new(),
            num_measurements: 0,
        }
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the number of moments (parallel layers).
    pub fn num_moments(&self) -> usize {
        self.moments.len()
    }

    /// Returns the total number of measurement operations.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Returns the operations of moment `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn moment(&self, m: usize) -> &[Op] {
        &self.moments[m]
    }

    /// Returns an iterator over the moments.
    pub fn moments(&self) -> impl Iterator<Item = &[Op]> {
        self.moments.iter().map(Vec::as_slice)
    }

    /// Appends a moment of parallel operations.
    ///
    /// # Panics
    ///
    /// Panics if two operations in the moment touch the same qubit or reference a qubit
    /// outside the circuit.
    pub fn push_moment(&mut self, ops: Vec<Op>) {
        let mut used = vec![false; self.num_qubits];
        for op in &ops {
            for q in op.qubits() {
                assert!(
                    q < self.num_qubits,
                    "operation {op} references qubit {q} >= {}",
                    self.num_qubits
                );
                assert!(!used[q], "qubit {q} used twice in one moment");
                used[q] = true;
            }
            if op.is_measurement() {
                self.num_measurements += 1;
            }
        }
        self.moments.push(ops);
    }

    /// Returns the total number of CNOT gates.
    pub fn num_cnots(&self) -> usize {
        self.moments
            .iter()
            .flat_map(|m| m.iter())
            .filter(|op| op.is_two_qubit())
            .count()
    }

    /// Returns the number of moments that contain at least one CNOT — the circuit's
    /// two-qubit-gate depth, the secondary optimization target of the paper.
    pub fn cnot_depth(&self) -> usize {
        self.moments
            .iter()
            .filter(|m| m.iter().any(Op::is_two_qubit))
            .count()
    }

    /// Returns, for each measurement index, the `(moment, qubit)` where it occurs.
    pub fn measurement_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_measurements);
        for (mi, moment) in self.moments.iter().enumerate() {
            for op in moment {
                match op {
                    Op::MeasureZ(q) | Op::MeasureX(q) => out.push((mi, *q)),
                    _ => {}
                }
            }
        }
        out
    }

    /// Returns the qubits that are idle (no operation) in moment `m`.
    pub fn idle_qubits(&self, m: usize) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for op in &self.moments[m] {
            for q in op.qubits() {
                used[q] = true;
            }
        }
        (0..self.num_qubits).filter(|&q| !used[q]).collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} moments",
            self.num_qubits,
            self.moments.len()
        )?;
        for (i, moment) in self.moments.iter().enumerate() {
            write!(f, "moment {i}:")?;
            for op in moment {
                write!(f, " [{op}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_qubits_and_kind_queries() {
        assert_eq!(Op::Cnot(2, 5).qubits(), vec![2, 5]);
        assert_eq!(Op::H(3).qubits(), vec![3]);
        assert!(Op::MeasureX(0).is_measurement());
        assert!(!Op::ResetZ(0).is_measurement());
        assert!(Op::Cnot(0, 1).is_two_qubit());
        assert!(!Op::H(0).is_two_qubit());
    }

    #[test]
    fn circuit_counts_measurements_and_cnots() {
        let mut c = Circuit::new(4);
        c.push_moment(vec![Op::ResetZ(0), Op::ResetX(1)]);
        c.push_moment(vec![Op::Cnot(0, 1), Op::Cnot(2, 3)]);
        c.push_moment(vec![Op::Cnot(1, 2)]);
        c.push_moment(vec![Op::MeasureZ(1), Op::MeasureX(0)]);
        assert_eq!(c.num_cnots(), 3);
        assert_eq!(c.cnot_depth(), 2);
        assert_eq!(c.num_measurements(), 2);
        assert_eq!(c.measurement_positions(), vec![(3, 1), (3, 0)]);
        assert_eq!(c.idle_qubits(2), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn overlapping_ops_in_moment_panic() {
        let mut c = Circuit::new(3);
        c.push_moment(vec![Op::Cnot(0, 1), Op::H(1)]);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.push_moment(vec![Op::H(2)]);
    }

    #[test]
    fn display_lists_moments() {
        let mut c = Circuit::new(2);
        c.push_moment(vec![Op::H(0)]);
        let text = format!("{c}");
        assert!(text.contains("moment 0: [H 0]"));
    }
}
