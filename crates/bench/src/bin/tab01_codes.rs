//! Table 1: the benchmark code suite, with the substituted LDPC instances' actual
//! parameters computed on the fly, and one quick reference `LerJob` per code run
//! through a shared `Session` (so the table carries a decoder sanity point with
//! throughput alongside the static parameters).

use prophunt_api::{NoiseSpec, ShotBudget};
use prophunt_bench::{bench_session, benchmark_suite, run_ler_point, write_bench_report};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::Json;
use prophunt_qec::distance::code_parameters;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let include_large = std::env::var("PROPHUNT_FULL").is_ok();
    let mut rng = StdRng::seed_from_u64(1);
    let mut session = bench_session();
    println!("Table 1: benchmark QEC codes (substitutions documented in README.md)");
    println!(
        "{:<14} {:>5} {:>4} {:>6} {:>12} {:>10}",
        "code", "n", "k", "d_est", "max weight", "params s"
    );
    let mut records = Vec::new();
    for bench in benchmark_suite(include_large) {
        let start = Instant::now();
        let params = code_parameters(&bench.code, 150, &mut rng);
        let wall_s = start.elapsed().as_secs_f64();
        println!(
            "{:<14} {:>5} {:>4} {:>6} {:>12} {:>10.3}",
            bench.code.name(),
            params.n,
            params.k,
            params.d_estimate,
            params.max_stabilizer_weight,
            wall_s
        );
        records.push(ReportRecord::Table {
            name: "code_parameters".into(),
            fields: vec![
                ("code".into(), Json::Str(bench.code.name().to_string())),
                ("n".into(), Json::UInt(params.n as u64)),
                ("k".into(), Json::UInt(params.k as u64)),
                ("d_est".into(), Json::UInt(params.d_estimate as u64)),
                (
                    "max_weight".into(),
                    Json::UInt(params.max_stabilizer_weight as u64),
                ),
                ("wall_s".into(), Json::Float(wall_s)),
            ],
        });
        // A quick coloration-schedule reference point per code: pins decoder
        // compatibility and records shots/sec throughput for the suite.
        let schedule = ScheduleSpec::coloration(&bench.code);
        let outcome = run_ler_point(
            &mut session,
            &bench.code,
            &schedule,
            bench.rounds.min(3),
            NoiseSpec::uniform(1e-3),
            ShotBudget::fixed(400),
            31,
        );
        records.push(outcome.to_record(format!("{}/reference", bench.code.name())));
    }
    let path = write_bench_report("tab01_codes", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
