//! D5 positive: a crate root with no `#![forbid(unsafe_code)]` attribute.
//! (The phrase in this doc comment must not satisfy the check.)

pub fn answer() -> u64 {
    42
}
