//! `prophunt report` — render a human-readable summary of a metrics stream
//! written by `--metrics` (or any report file containing `metrics` records):
//! counter totals, cache hit rates, and histogram quantiles. With a second
//! file, also prints a diff of the deterministic counters, the gauges and the
//! histogram shapes against that baseline.

use crate::args::CliError;
use crate::common::read_file;
use prophunt_formats::parse_report;
use prophunt_formats::report::{MetricsHistogram, ReportRecord};

pub const USAGE: &str = "\
prophunt report <metrics.jsonl> [<baseline.jsonl>]

Summarizes a JSON-lines metrics file (written by the --metrics flag of
ler/optimize/search/sweep, or any report stream carrying a `metrics` record):

  * the `meta` provenance line (crate version, seed, threads, chunk size, engine)
  * counter totals — the deterministic subset, bit-identical at any thread count
  * hit rates for every `<name>.hit` / `<name>.miss` counter pair
  * gauges, and histogram count / p50 / p90 / p99 / mean (`.ns` names are
    rendered as durations)

With a second path the counters, gauges and histograms of <metrics.jsonl> are
diffed against <baseline.jsonl>: counters should match exactly across thread
counts at a fixed seed; gauges and timing histograms are expected to differ.";

/// Everything `report` reads out of one metrics file.
struct MetricsFile {
    meta: Option<(String, u64, u64, u64, String)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<MetricsHistogram>,
}

fn load(path: &str) -> Result<MetricsFile, CliError> {
    let records =
        parse_report(&read_file(path)?).map_err(|e| CliError::failure(format!("{path}: {e}")))?;
    let meta = records.iter().find_map(|r| match r {
        ReportRecord::Meta {
            version,
            seed,
            threads,
            chunk_size,
            engine,
            ..
        } => Some((
            version.clone(),
            *seed,
            *threads,
            *chunk_size,
            engine.clone(),
        )),
        _ => None,
    });
    // The last metrics record wins: a stream that snapshots repeatedly ends
    // with the most complete registry state.
    let metrics = records
        .iter()
        .rev()
        .find_map(|r| match r {
            ReportRecord::Metrics {
                counters,
                gauges,
                histograms,
            } => Some((counters.clone(), gauges.clone(), histograms.clone())),
            _ => None,
        })
        .ok_or_else(|| {
            CliError::failure(format!(
                "{path}: no metrics record found (was this written with --metrics?)"
            ))
        })?;
    Ok(MetricsFile {
        meta,
        counters: metrics.0,
        gauges: metrics.1,
        histograms: metrics.2,
    })
}

/// Formats a value that may be a duration: `.ns`-suffixed instruments render
/// as human-readable times, everything else as a plain count.
fn fmt_value(name: &str, v: f64) -> String {
    if !name.ends_with(".ns") {
        return format!("{v:.0}");
    }
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

fn print_summary(path: &str, file: &MetricsFile) {
    println!("{path}");
    if let Some((version, seed, threads, chunk_size, engine)) = &file.meta {
        let engine = if engine.is_empty() { "-" } else { engine };
        println!(
            "  meta: v{version} seed={seed} threads={threads} chunk_size={chunk_size} \
             engine={engine}"
        );
    }
    if !file.counters.is_empty() {
        println!("  counters (deterministic at fixed seed/chunk-size):");
        for (name, value) in &file.counters {
            println!("    {name:<36} {value:>14}");
        }
        // Derived hit rates for every .hit/.miss sibling pair.
        let lookup = |name: &str| {
            file.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        for (name, hits) in &file.counters {
            let Some(prefix) = name.strip_suffix(".hit") else {
                continue;
            };
            let misses = lookup(&format!("{prefix}.miss")).unwrap_or(0);
            let total = hits + misses;
            if total > 0 {
                println!(
                    "    {:<36} {:>13.1}%",
                    format!("{prefix} hit rate"),
                    100.0 * *hits as f64 / total as f64
                );
            }
        }
    }
    if !file.gauges.is_empty() {
        println!("  gauges:");
        for (name, value) in &file.gauges {
            println!("    {name:<36} {value:>14}");
        }
    }
    if !file.histograms.is_empty() {
        println!(
            "  histograms: {:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "p50", "p90", "p99", "mean"
        );
        for h in &file.histograms {
            println!(
                "    {:<36} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.name,
                h.count,
                fmt_value(&h.name, h.quantile(0.5) as f64),
                fmt_value(&h.name, h.quantile(0.9) as f64),
                fmt_value(&h.name, h.quantile(0.99) as f64),
                fmt_value(&h.name, h.mean()),
            );
        }
    }
}

fn print_diff(current: &MetricsFile, baseline: &MetricsFile) {
    println!("diff (current vs baseline):");
    let mut names: Vec<&String> = current
        .counters
        .iter()
        .chain(baseline.counters.iter())
        .map(|(n, _)| n)
        .collect();
    names.sort();
    names.dedup();
    let value_in = |file: &MetricsFile, name: &str| {
        file.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let mut identical = 0usize;
    for name in names {
        let (a, b) = (value_in(current, name), value_in(baseline, name));
        if a == b {
            identical += 1;
        } else {
            println!(
                "  counter {name:<28} {b:>12} -> {a:>12} ({:+})",
                a as i128 - b as i128
            );
        }
    }
    println!("  {identical} counters identical");
    // Gauge deltas, mirroring the counter loop. Gauges are thread-dependent
    // (occupancy, peaks), so differences are expected — the diff makes them
    // visible instead of silently dropping the class.
    let mut gauge_names: Vec<&String> = current
        .gauges
        .iter()
        .chain(baseline.gauges.iter())
        .map(|(n, _)| n)
        .collect();
    gauge_names.sort();
    gauge_names.dedup();
    let gauge_in = |file: &MetricsFile, name: &str| {
        file.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let mut gauges_identical = 0usize;
    for name in gauge_names {
        let (a, b) = (gauge_in(current, name), gauge_in(baseline, name));
        if a == b {
            gauges_identical += 1;
        } else {
            println!(
                "  gauge   {name:<28} {b:>12} -> {a:>12} ({:+})",
                a as i128 - b as i128
            );
        }
    }
    println!("  {gauges_identical} gauges identical");
    for h in &current.histograms {
        let Some(base) = baseline.histograms.iter().find(|b| b.name == h.name) else {
            continue;
        };
        println!(
            "  hist {:<31} count {} -> {}, mean {} -> {}",
            h.name,
            base.count,
            h.count,
            fmt_value(&h.name, base.mean()),
            fmt_value(&h.name, h.mean()),
        );
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    // `report` takes positional paths, not `--flag value` pairs.
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(CliError::usage(format!(
            "report takes file paths, not flags (got {flag:?})"
        )));
    }
    let (path, baseline_path) = match args {
        [path] => (path, None),
        [path, baseline] => (path, Some(baseline)),
        _ => {
            return Err(CliError::usage(
                "report needs one metrics file (and optionally a baseline to diff against)",
            ))
        }
    };
    let current = load(path)?;
    print_summary(path, &current);
    if let Some(baseline_path) = baseline_path {
        let baseline = load(baseline_path)?;
        println!();
        print_summary(baseline_path, &baseline);
        println!();
        print_diff(&current, &baseline);
    }
    Ok(())
}
