//! Figure 16: (a) the noise-amplification range Hook-ZNE can reach at fixed distance for
//! different suppression factors, and (b) the estimator-bias comparison between DS-ZNE
//! and Hook-ZNE over three distance ranges.

use prophunt_zne::{amplification_range, compare_protocols};

fn main() {
    println!("Figure 16a: noise amplification at fixed d = 9");
    println!("{:>8} {:>12}", "lambda", "max amp");
    for lambda in [1.5, 2.0, 2.14, 3.0, 4.0] {
        let range = amplification_range(lambda, 9.0, 5.0, 0.5);
        println!("{lambda:>8.2} {:>11.1}x", range.last().unwrap());
    }
    println!();
    println!("Figure 16b: estimator bias, DS-ZNE vs Hook-ZNE (lambda = 2, depth 50, 20k shots)");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "range", "DS-ZNE", "Hook-ZNE", "ratio"
    );
    let trials = if std::env::var("PROPHUNT_FULL").is_ok() {
        400
    } else {
        80
    };
    for d_max in [13usize, 11, 9] {
        let cmp = compare_protocols(d_max, 2.0, 50, 20_000, trials, 77);
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>7.1}x",
            cmp.label,
            cmp.ds_zne_bias,
            cmp.hook_zne_bias,
            cmp.ds_zne_bias / cmp.hook_zne_bias.max(1e-9)
        );
    }
}
