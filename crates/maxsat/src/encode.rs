//! Higher-level constraint encodings: XOR trees and totalizer cardinality constraints.
//!
//! The XOR encoding follows the paper's Section 5.2: naively expanding a multivariate
//! XOR into CNF is exponential, so auxiliary variables are introduced in a balanced tree
//! (a Tseitin transformation) giving a linear number of clauses. The totalizer encoding
//! is used by the MaxSAT linear search to bound the number of violated soft clauses.

use crate::cnf::{CnfBuilder, Lit};

impl CnfBuilder {
    /// Returns a literal equivalent to the XOR of `lits`, introducing auxiliary
    /// variables in a balanced tree.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn xor_to_lit(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "cannot take the XOR of zero literals");
        if lits.len() == 1 {
            return lits[0];
        }
        let mid = lits.len() / 2;
        let a = self.xor_to_lit(&lits[..mid]);
        let b = self.xor_to_lit(&lits[mid..]);
        let c = self.new_var().positive();
        // c <-> a XOR b
        self.add_clause(&[!a, !b, !c]);
        self.add_clause(&[a, b, !c]);
        self.add_clause(&[a, !b, c]);
        self.add_clause(&[!a, b, c]);
        c
    }

    /// Adds the hard constraint `XOR(lits) = parity`.
    ///
    /// An empty `lits` with `parity == true` makes the formula unsatisfiable (an empty
    /// clause is added); with `parity == false` it is a no-op.
    pub fn add_xor_constraint(&mut self, lits: &[Lit], parity: bool) {
        if lits.is_empty() {
            if parity {
                self.add_clause(&[]);
            }
            return;
        }
        let x = self.xor_to_lit(lits);
        self.add_unit(if parity { x } else { !x });
    }

    /// Builds a totalizer over `lits` and returns its output literals.
    ///
    /// Output literal `out[i]` is implied to be true whenever at least `i + 1` of the
    /// inputs are true, so asserting `!out[k]` enforces "at most `k` inputs true". Only
    /// the direction needed for upper bounds is encoded.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn totalizer(&mut self, lits: &[Lit]) -> Vec<Lit> {
        assert!(!lits.is_empty(), "totalizer needs at least one input");
        if lits.len() == 1 {
            return vec![lits[0]];
        }
        let mid = lits.len() / 2;
        let left = self.totalizer(&lits[..mid]);
        let right = self.totalizer(&lits[mid..]);
        let outputs: Vec<Lit> = (0..lits.len()).map(|_| self.new_var().positive()).collect();
        // sum(left) >= i and sum(right) >= j implies sum >= i + j.
        for i in 0..=left.len() {
            for j in 0..=right.len() {
                if i + j == 0 {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!left[i - 1]);
                }
                if j > 0 {
                    clause.push(!right[j - 1]);
                }
                clause.push(outputs[i + j - 1]);
                self.add_clause(&clause);
            }
        }
        outputs
    }

    /// Adds the constraint "at most `k` of `lits` are true" via a totalizer.
    pub fn add_at_most_k(&mut self, lits: &[Lit], k: usize) {
        if lits.is_empty() || k >= lits.len() {
            return;
        }
        let outputs = self.totalizer(lits);
        self.add_unit(!outputs[k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use crate::solver::{SolveBudget, SolveResult};

    /// Enumerates every assignment of `vars` and checks that the formula's satisfying
    /// assignments (projected to `vars`) are exactly those where `predicate` holds.
    fn assert_projection_matches(
        builder: &CnfBuilder,
        vars: &[Var],
        predicate: impl Fn(&[bool]) -> bool,
    ) {
        for mask in 0u64..(1 << vars.len()) {
            let values: Vec<bool> = (0..vars.len()).map(|i| (mask >> i) & 1 == 1).collect();
            // Fix the projection with unit clauses and check satisfiability.
            let mut fixed = builder.clone();
            for (v, &val) in vars.iter().zip(values.iter()) {
                fixed.add_unit(if val { v.positive() } else { v.negative() });
            }
            let mut solver = fixed.build_solver();
            let sat = solver.solve(SolveBudget::Unlimited).is_sat();
            assert_eq!(
                sat,
                predicate(&values),
                "projection {values:?} disagreement"
            );
        }
    }

    #[test]
    fn xor_constraint_matches_parity_semantics() {
        for n in 1..6 {
            for parity in [false, true] {
                let mut b = CnfBuilder::new();
                let vars = b.new_vars(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                b.add_xor_constraint(&lits, parity);
                assert_projection_matches(&b, &vars, |vals| {
                    vals.iter().filter(|&&x| x).count() % 2 == usize::from(parity)
                });
            }
        }
    }

    #[test]
    fn xor_with_negated_literals() {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(3);
        let lits = vec![vars[0].positive(), vars[1].negative(), vars[2].positive()];
        b.add_xor_constraint(&lits, true);
        assert_projection_matches(&b, &vars, |v| v[0] ^ !v[1] ^ v[2]);
    }

    #[test]
    fn empty_xor_true_is_unsat() {
        let mut b = CnfBuilder::new();
        b.add_xor_constraint(&[], true);
        assert_eq!(
            b.build_solver().solve(SolveBudget::Unlimited),
            SolveResult::Unsat
        );
        let mut b = CnfBuilder::new();
        let _ = b.new_var();
        b.add_xor_constraint(&[], false);
        assert!(b.build_solver().solve(SolveBudget::Unlimited).is_sat());
    }

    #[test]
    fn xor_tree_uses_linear_clause_count() {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(64);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        b.add_xor_constraint(&lits, false);
        // The tree introduces 63 auxiliary variables and 4 clauses each plus one unit.
        assert_eq!(b.num_vars(), 64 + 63);
        assert_eq!(b.num_clauses(), 63 * 4 + 1);
    }

    #[test]
    fn at_most_k_matches_counting_semantics() {
        for n in 1..6 {
            for k in 0..n {
                let mut b = CnfBuilder::new();
                let vars = b.new_vars(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                b.add_at_most_k(&lits, k);
                assert_projection_matches(&b, &vars, |vals| {
                    vals.iter().filter(|&&x| x).count() <= k
                });
            }
        }
    }

    #[test]
    fn at_most_k_is_noop_when_k_at_least_n() {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        b.add_at_most_k(&lits, 3);
        assert_eq!(b.num_clauses(), 0);
    }
}
