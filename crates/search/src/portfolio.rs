//! The [`Portfolio`] executor: N seeded strategy instances raced in
//! synchronized rounds on the deterministic runtime.

use crate::strategy::{Incumbent, SearchContext, SearchParams, StrategyKind};
use crate::Strategy;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::CircuitError;
use prophunt_obs::{Counter, Obs};
use prophunt_qec::surface::SurfaceLayout;
use prophunt_qec::CssCode;
use prophunt_runtime::{Runtime, RuntimeConfig};
use std::sync::Mutex;

/// Provenance label of the starting schedule while it is still the incumbent.
pub const INITIAL_STRATEGY: &str = "initial";

/// Seed-stream labels, disjoint from the optimizer's stage labels by crate.
mod stream {
    /// Per-instance base seeds (construction-time randomness, inner runtimes).
    pub const INSTANCE: u64 = 101;
    /// Per-round, per-instance proposal seeds.
    pub const ROUND: u64 = 102;
}

/// Configuration of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// The strategy mix. Instance slot `i` runs `strategies[i % len]`, so a
    /// portfolio larger than the mix cycles through it.
    pub strategies: Vec<StrategyKind>,
    /// Number of strategy instances raced in parallel.
    pub portfolio_size: usize,
    /// Number of synchronized rounds.
    pub rounds: usize,
    /// The shared parallel runtime (threads / chunk size / base seed). The
    /// result is a pure function of `(seed, chunk_size)`; `threads` is
    /// wall-clock only.
    pub runtime: RuntimeConfig,
    /// Strategy tuning knobs.
    pub params: SearchParams,
}

impl PortfolioConfig {
    /// A small configuration suitable for tests and examples: the full
    /// strategy mix, one instance each, few rounds.
    pub fn quick() -> PortfolioConfig {
        PortfolioConfig {
            strategies: StrategyKind::ALL.to_vec(),
            portfolio_size: StrategyKind::ALL.len(),
            rounds: 4,
            runtime: RuntimeConfig::new(4, 16, 0x5eed_0004),
            params: SearchParams::default(),
        }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> PortfolioConfig {
        self.runtime.seed = seed;
        self
    }
}

/// One instance's proposal summary within a [`RoundRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceProposal {
    /// Portfolio instance slot.
    pub instance: usize,
    /// Strategy name of that slot.
    pub strategy: &'static str,
    /// Depth of the instance's round proposal.
    pub depth: usize,
}

/// One synchronized round's bookkeeping: every instance's proposal depth plus
/// the incumbent after the round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round number (0-based).
    pub round: usize,
    /// Per-instance proposals, in instance order.
    pub proposals: Vec<InstanceProposal>,
    /// The portfolio incumbent after this round (monotonically improving).
    pub incumbent: Incumbent,
    /// Whether this round's best proposal improved on the previous incumbent.
    pub improved: bool,
    /// Number of this round's proposals whose canonical fingerprint
    /// ([`ScheduleSpec::fingerprint`]) the portfolio had already seen — those
    /// candidates are deduplicated and never re-verified.
    pub duplicates: usize,
}

/// The result of a portfolio run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// CNOT depth of the starting schedule.
    pub initial_depth: usize,
    /// The final incumbent: best schedule, depth, and provenance.
    pub best: Incumbent,
    /// Per-round records, in order (what the observer saw).
    pub rounds: Vec<RoundRecord>,
}

impl SearchResult {
    /// Depth improvement over the starting schedule (0 when none was found).
    pub fn depth_saved(&self) -> usize {
        self.initial_depth.saturating_sub(self.best.depth)
    }
}

/// Runs N seeded strategy instances in synchronized rounds with deterministic
/// incumbent sharing. See the [crate docs](crate) for the protocol and the
/// determinism contract.
#[derive(Debug)]
pub struct Portfolio {
    config: PortfolioConfig,
    runtime: Runtime,
}

impl Portfolio {
    /// Creates a portfolio executor from `config` (observability disabled).
    pub fn new(config: PortfolioConfig) -> Portfolio {
        Portfolio::with_obs(config, Obs::disabled())
    }

    /// Creates a portfolio executor recording into `obs`: round/proposal/dedup
    /// counters, per-arm `search.<arm>.*` counters from the strategies, the
    /// `search.round.ns` span histogram, and the shared runtime's pool metrics.
    /// All search counters are updated either at the single-threaded round
    /// boundary or by deterministic strategy steps, so they stay bit-identical
    /// at any thread count.
    pub fn with_obs(config: PortfolioConfig, obs: Obs) -> Portfolio {
        let runtime = Runtime::with_obs(config.runtime, obs);
        Portfolio { config, runtime }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Runs the portfolio on `code`, starting every instance from `initial`,
    /// invoking `observer` with each completed [`RoundRecord`] as the run
    /// progresses. The observer sees exactly the records collected in the
    /// returned [`SearchResult`], in order.
    ///
    /// `layout` (for codes that have one) unlocks structured
    /// permuted-ordering restarts in the hill-climbing arm; pass `None` for
    /// codes without a surface layout.
    ///
    /// # Errors
    ///
    /// Returns the [`CircuitError`] raised by validating `initial` against
    /// `code`, or [`CircuitError::InvalidSchedule`] when the configuration has
    /// no strategies, no instances or no rounds.
    pub fn run(
        &self,
        code: &CssCode,
        layout: Option<&SurfaceLayout>,
        initial: &ScheduleSpec,
        mut observer: impl FnMut(&RoundRecord),
    ) -> Result<SearchResult, CircuitError> {
        if self.config.strategies.is_empty()
            || self.config.portfolio_size == 0
            || self.config.rounds == 0
        {
            return Err(CircuitError::InvalidSchedule {
                reason: "portfolio needs at least one strategy, one instance and one round"
                    .to_string(),
            });
        }
        initial.validate_for_code(code)?;
        let initial_depth = initial.depth()?;

        let obs = self.runtime.obs();
        let ctx = SearchContext::new(
            code.clone(),
            layout.cloned(),
            initial.clone(),
            self.config.params.clone(),
        )
        .with_obs(obs.clone());
        let root = self.runtime.seed_stream();
        let instance_seeds = root.substream(stream::INSTANCE);
        // Stepping needs `&mut` per strategy from worker threads; one
        // uncontended mutex per instance keeps that safe without per-round
        // state shuffling (task i is the only locker of instance i).
        let instances: Vec<Mutex<Box<dyn Strategy>>> = (0..self.config.portfolio_size)
            .map(|i| {
                let kind = self.config.strategies[i % self.config.strategies.len()];
                Mutex::new(kind.build(&ctx, instance_seeds.seed_for(i as u64)))
            })
            .collect();
        let names: Vec<&'static str> = (0..self.config.portfolio_size)
            .map(|i| self.config.strategies[i % self.config.strategies.len()].name())
            .collect();
        // Hoisted counter handles, all updated at the single-threaded round
        // boundary in instance order (never from workers), so every count is a
        // function of the round records alone — thread-count invariant.
        let rounds_ctr = obs.counter("search.rounds");
        let proposals_ctr = obs.counter("search.proposals");
        let dedup_ctr = obs.counter("search.dedup.hits");
        let improvements_ctr = obs.counter("search.improvements");
        let arm_proposals: Vec<Option<Counter>> = names
            .iter()
            .map(|name| obs.counter(&format!("search.{name}.proposals")))
            .collect();
        let arm_wins: Vec<Option<Counter>> = names
            .iter()
            .map(|name| obs.counter(&format!("search.{name}.wins")))
            .collect();
        // Convergence diagnostics (trace-only): per-arm move-class counters
        // are re-read at each round boundary so the tracer can emit exact
        // per-round deltas. Every value involved — counter totals, dedup
        // flags, plateau streak — is computed after the round's `run_tasks`
        // barrier from thread-count-invariant state, so diag records are
        // bit-identical at any thread count.
        const DIAG_SUFFIXES: [&str; 7] = [
            "proposals",
            "wins",
            "accepts",
            "reverts",
            "restarts",
            "expansions",
            "iterations",
        ];
        let tracer = obs.tracer().cloned();
        let mut distinct_names: Vec<&'static str> = Vec::new();
        for &name in &names {
            if !distinct_names.contains(&name) {
                distinct_names.push(name);
            }
        }
        type DiagEntry = (&'static str, Option<Counter>, u64);
        let mut diag_state: Vec<(&'static str, Vec<DiagEntry>)> = if tracer.is_some() {
            distinct_names
                .iter()
                .map(|&name| {
                    let entries = DIAG_SUFFIXES
                        .iter()
                        .map(|&suffix| (suffix, obs.counter(&format!("search.{name}.{suffix}")), 0))
                        .collect();
                    (name, entries)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut plateau: u64 = 0;

        let mut incumbent = Incumbent {
            schedule: initial.clone(),
            depth: initial_depth,
            strategy: INITIAL_STRATEGY,
            instance: 0,
            round: 0,
        };
        // Canonical-fingerprint dedup: `seen` tracks every distinct candidate
        // the portfolio has been offered, `verified` the ones whose claimed
        // depth and validity have been re-checked. A duplicate candidate —
        // two instances converging on one schedule, or an instance
        // re-proposing its unchanged best round after round — is counted but
        // never re-verified. Both sets are updated in instance order at the
        // (single-threaded) round boundary, so the dedup is deterministic.
        let initial_fingerprint = initial.fingerprint();
        let mut seen: std::collections::HashSet<u64> =
            std::collections::HashSet::from([initial_fingerprint]);
        let mut verified: std::collections::HashSet<u64> =
            std::collections::HashSet::from([initial_fingerprint]);
        let mut rounds = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            let _round_span = obs.span("search.round.ns");
            let _round_trace = tracer.as_ref().map(|t| {
                let mut span = t.span("search.round", "search");
                span.arg("round", round as u64);
                span
            });
            let round_seeds = root.substream(stream::ROUND).substream(round as u64);
            // One runtime task per instance; results return in instance order
            // whatever the completion order, so everything below is
            // thread-count independent.
            let proposals = self.runtime.run_tasks(instances.len(), |i| {
                let mut strategy = instances[i].lock().expect("strategy mutex poisoned");
                strategy.propose(round, round_seeds.seed_for(i as u64))
            });

            // Deterministic fingerprint dedup, in instance order.
            let fingerprints: Vec<u64> =
                proposals.iter().map(|p| p.schedule.fingerprint()).collect();
            let mut duplicates = 0usize;
            let mut dup_flags = vec![false; fingerprints.len()];
            for (i, &fp) in fingerprints.iter().enumerate() {
                if !seen.insert(fp) {
                    duplicates += 1;
                    dup_flags[i] = true;
                }
            }
            if let Some(c) = &rounds_ctr {
                c.inc();
            }
            if let Some(c) = &proposals_ctr {
                c.add(proposals.len() as u64);
            }
            if let Some(c) = &dedup_ctr {
                c.add(duplicates as u64);
            }
            for c in arm_proposals.iter().flatten() {
                c.inc();
            }

            // Deterministic incumbent selection: minimum depth, ties broken by
            // the lowest instance slot; improvement must be strict.
            let (winner, best_proposal) = proposals
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.depth, *i))
                .expect("portfolio has at least one instance");
            let improved = best_proposal.depth < incumbent.depth;
            if improved {
                if let Some(c) = &improvements_ctr {
                    c.inc();
                }
                if let Some(c) = &arm_wins[winner] {
                    c.inc();
                }
                // Re-verify a winning candidate once per distinct schedule:
                // the portfolio does not take a strategy's depth claim on
                // faith, but a fingerprint it has already verified is not
                // re-evaluated.
                if verified.insert(fingerprints[winner]) {
                    best_proposal.schedule.validate_for_code(code)?;
                    let actual = best_proposal.schedule.depth()?;
                    if actual != best_proposal.depth {
                        return Err(CircuitError::InvalidSchedule {
                            reason: format!(
                                "strategy {} proposed depth {} for a schedule of depth {actual}",
                                names[winner], best_proposal.depth
                            ),
                        });
                    }
                }
                incumbent = Incumbent {
                    schedule: best_proposal.schedule.clone(),
                    depth: best_proposal.depth,
                    strategy: names[winner],
                    instance: winner,
                    round,
                };
            }
            for (i, instance) in instances.iter().enumerate() {
                let mut strategy = instance.lock().expect("strategy mutex poisoned");
                strategy.observe(&incumbent, improved && i == winner);
            }

            plateau = if improved { 0 } else { plateau + 1 };
            if let Some(t) = &tracer {
                // Deterministic convergence-diagnostic records: timeless diag
                // events carrying only round-boundary state, emitted from this
                // single thread in a fixed order. Per-slot arm records on lane
                // = slot, per-strategy move-class deltas on the strategy's
                // first slot, and one portfolio-level round record on lane 0.
                for (i, p) in proposals.iter().enumerate() {
                    t.diag(
                        "search.arm",
                        i as u64,
                        &[
                            ("round", round as u64),
                            ("depth", p.depth as u64),
                            ("win", u64::from(improved && i == winner)),
                            ("dup", u64::from(dup_flags[i])),
                        ],
                    );
                }
                for (name, entries) in &mut diag_state {
                    let mut args: Vec<(&str, u64)> = Vec::with_capacity(entries.len());
                    for (suffix, handle, last) in entries.iter_mut() {
                        let now = handle.as_ref().map_or(0, Counter::get);
                        args.push((suffix, now.wrapping_sub(*last)));
                        *last = now;
                    }
                    let lane = names.iter().position(|n| n == name).unwrap_or(0) as u64;
                    t.diag(&format!("search.strategy.{name}"), lane, &args);
                }
                t.diag(
                    "search.round",
                    0,
                    &[
                        ("round", round as u64),
                        ("depth", incumbent.depth as u64),
                        ("improved", u64::from(improved)),
                        ("duplicates", duplicates as u64),
                        ("plateau", plateau),
                        ("seen", seen.len() as u64),
                        ("proposals", proposals.len() as u64),
                    ],
                );
            }

            let record = RoundRecord {
                round,
                proposals: proposals
                    .iter()
                    .enumerate()
                    .map(|(i, p)| InstanceProposal {
                        instance: i,
                        strategy: names[i],
                        depth: p.depth,
                    })
                    .collect(),
                incumbent: incumbent.clone(),
                improved,
                duplicates,
            };
            observer(&record);
            rounds.push(record);
        }
        Ok(SearchResult {
            initial_depth,
            best: incumbent,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn local_config() -> PortfolioConfig {
        // Local-search arms only: fast enough for unit tests.
        PortfolioConfig {
            strategies: vec![
                StrategyKind::Annealing,
                StrategyKind::Beam,
                StrategyKind::HillClimb,
            ],
            portfolio_size: 3,
            rounds: 4,
            runtime: RuntimeConfig::new(3, 16, 11),
            params: SearchParams::default(),
        }
    }

    #[test]
    fn portfolio_improves_the_coloration_depth_of_the_d3_surface_code() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let initial_depth = initial.depth().unwrap();
        let result = Portfolio::new(local_config())
            .run(&code, None, &initial, |_| {})
            .unwrap();
        assert_eq!(result.initial_depth, initial_depth);
        result.best.schedule.validate_for_code(&code).unwrap();
        assert_eq!(result.best.schedule.depth().unwrap(), result.best.depth);
        // The hand-designed depth-4 schedule exists, and the coloration
        // baseline sits well above it: the local-search portfolio must close
        // at least part of that gap.
        assert!(
            result.best.depth < initial_depth,
            "portfolio should improve on coloration depth {initial_depth}"
        );
        assert_eq!(result.rounds.len(), 4);
        // Provenance points at a real instance.
        assert!(result.best.instance < 3);
        assert_ne!(result.best.strategy, INITIAL_STRATEGY);
    }

    #[test]
    fn incumbent_sequence_is_monotone_and_matches_the_observer() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let mut streamed = Vec::new();
        let result = Portfolio::new(local_config())
            .run(&code, None, &initial, |r| streamed.push(r.clone()))
            .unwrap();
        assert_eq!(streamed, result.rounds);
        let mut last = result.initial_depth;
        for record in &result.rounds {
            assert!(record.incumbent.depth <= last, "incumbent must not regress");
            assert_eq!(
                record.improved,
                record.incumbent.depth < last,
                "improved flag must track strict improvement"
            );
            last = record.incumbent.depth;
            assert_eq!(record.proposals.len(), 3);
        }
        assert_eq!(result.best, result.rounds.last().unwrap().incumbent);
    }

    #[test]
    fn fixed_seed_and_chunk_size_give_bit_identical_results_at_any_thread_count() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let run = |threads: usize| {
            let mut config = local_config();
            config.runtime.threads = threads;
            Portfolio::new(config)
                .run(&code, None, &initial, |_| {})
                .unwrap()
        };
        let reference = run(1);
        for threads in [2, 8] {
            let result = run(threads);
            assert_eq!(
                result.best.schedule, reference.best.schedule,
                "best schedule diverged at threads = {threads}"
            );
            assert_eq!(result, reference, "threads = {threads}");
        }
    }

    #[test]
    fn search_counters_are_recorded_and_thread_count_invariant() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let run = |threads: usize| {
            let mut config = local_config();
            config.runtime.threads = threads;
            let obs = Obs::enabled();
            Portfolio::with_obs(config, obs.clone())
                .run(&code, None, &initial, |_| {})
                .unwrap();
            obs.snapshot().unwrap()
        };
        let reference = run(1);
        assert_eq!(reference.counter("search.rounds"), 4);
        assert_eq!(reference.counter("search.proposals"), 12);
        assert_eq!(
            reference.counter("search.anneal.proposals")
                + reference.counter("search.beam.proposals")
                + reference.counter("search.hillclimb.proposals"),
            12
        );
        assert!(
            reference.counter("search.improvements") >= 1,
            "coloration start must improve at least once"
        );
        assert!(
            reference.counter("search.anneal.accepts") + reference.counter("search.anneal.reverts")
                > 0,
            "annealing arm must have stepped"
        );
        assert!(reference.counter("search.beam.expansions") > 0);
        assert!(reference
            .histogram("search.round.ns")
            .is_some_and(|h| h.count == 4));
        for threads in [2, 8] {
            let snap = run(threads);
            assert_eq!(snap.counters, reference.counters, "threads = {threads}");
        }
    }

    #[test]
    fn convergence_diagnostics_are_emitted_and_thread_count_invariant() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let run = |threads: usize| {
            let mut config = local_config();
            config.runtime.threads = threads;
            let tracer = prophunt_obs::Tracer::new();
            let obs = Obs::enabled().with_tracer(tracer.clone());
            let result = Portfolio::with_obs(config, obs)
                .run(&code, None, &initial, |_| {})
                .unwrap();
            let diags: Vec<_> = tracer
                .drain()
                .events
                .into_iter()
                .filter(|e| e.cat == prophunt_obs::DIAG_CATEGORY)
                .collect();
            (result, diags)
        };
        let (result, reference) = run(1);
        // 4 rounds × (3 arm records + 3 strategy records + 1 round record).
        assert_eq!(reference.len(), 4 * 7);
        let rounds: Vec<_> = reference
            .iter()
            .filter(|e| e.name == "search.round")
            .collect();
        assert_eq!(rounds.len(), 4);
        let last = rounds.last().unwrap();
        let args: std::collections::HashMap<&str, u64> =
            last.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(args["depth"], result.best.depth as u64);
        assert_eq!(args["proposals"], 3);
        // Timeless by construction: the deterministic subset carries no clock.
        for e in &reference {
            assert_eq!((e.ts_ns, e.dur_ns, e.id, e.parent), (0, 0, 0, 0));
        }
        // Per-arm records attribute lanes to slots.
        let arm_lanes: std::collections::HashSet<u64> = reference
            .iter()
            .filter(|e| e.name == "search.arm")
            .map(|e| e.tid)
            .collect();
        assert_eq!(arm_lanes, (0..3).collect());
        // Strategy move-class deltas exist for each arm in the mix.
        for name in ["anneal", "beam", "hillclimb"] {
            assert!(reference
                .iter()
                .any(|e| e.name == format!("search.strategy.{name}")));
        }
        for threads in [2, 8] {
            let (other_result, diags) = run(threads);
            assert_eq!(other_result, result, "threads = {threads}");
            assert_eq!(
                diags, reference,
                "diag records diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        for broken in [
            PortfolioConfig {
                strategies: vec![],
                ..local_config()
            },
            PortfolioConfig {
                portfolio_size: 0,
                ..local_config()
            },
            PortfolioConfig {
                rounds: 0,
                ..local_config()
            },
        ] {
            assert!(Portfolio::new(broken)
                .run(&code, None, &initial, |_| {})
                .is_err());
        }
        // A schedule for the wrong code is rejected by validation.
        let (code5, _) = rotated_surface_code_with_layout(5);
        assert!(Portfolio::new(local_config())
            .run(&code5, None, &initial, |_| {})
            .is_err());
    }

    #[test]
    fn portfolio_cycles_the_strategy_mix_across_instances() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let initial = ScheduleSpec::coloration(&code);
        let config = PortfolioConfig {
            strategies: vec![StrategyKind::HillClimb, StrategyKind::Annealing],
            portfolio_size: 5,
            rounds: 1,
            runtime: RuntimeConfig::new(2, 16, 3),
            params: SearchParams::default(),
        };
        let result = Portfolio::new(config)
            .run(&code, None, &initial, |_| {})
            .unwrap();
        let names: Vec<&str> = result.rounds[0]
            .proposals
            .iter()
            .map(|p| p.strategy)
            .collect();
        assert_eq!(
            names,
            vec!["hillclimb", "anneal", "hillclimb", "anneal", "hillclimb"]
        );
    }
}
