//! Shared helpers for the PropHunt benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the data behind every table and figure of the
//! paper's evaluation (see the root `README.md` for the experiment index and
//! recorded results); the Criterion benches in `benches/` measure the performance-
//! critical kernels (detector-error-model construction, ambiguity checking, subgraph
//! MaxSAT solving, decoding throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{estimate_logical_error_rate, BpOsdDecoder, LogicalErrorEstimate};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::write_report;
use prophunt_qec::product::{bivariate_bicycle, generalized_bicycle};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;
use prophunt_runtime::{Runtime, RuntimeConfig, SeedStream};
use std::path::PathBuf;

/// Builds the shared [`RuntimeConfig`] used by every bench binary.
///
/// Defaults to 8 worker threads, the default chunk size and seed 0; the
/// environment variables `PROPHUNT_THREADS`, `PROPHUNT_CHUNK_SIZE` and
/// `PROPHUNT_SEED` override the respective fields. Only `PROPHUNT_THREADS`
/// may change wall-clock time — results are a function of
/// `(seed, chunk_size)` alone. The base seed is mixed with each stage's
/// fixed label through [`stage_seed`], so `PROPHUNT_SEED` rotates every
/// random stream a binary draws while stages stay decorrelated.
pub fn runtime_config_from_env() -> RuntimeConfig {
    fn env_parse(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }
    let mut config = RuntimeConfig::new(8, RuntimeConfig::DEFAULT_CHUNK_SIZE, 0);
    if let Some(threads) = env_parse("PROPHUNT_THREADS") {
        config.threads = threads as usize;
    }
    if let Some(chunk) = env_parse("PROPHUNT_CHUNK_SIZE") {
        config.chunk_size = chunk as usize;
    }
    if let Some(seed) = env_parse("PROPHUNT_SEED") {
        config.seed = seed;
    }
    config
}

/// Derives the effective seed for one benchmark stage: the runtime's base
/// seed (e.g. `PROPHUNT_SEED`) mixed with the stage's fixed `label`.
///
/// Every figure/table binary labels its stages with small constants, so a
/// single base seed rotates all of their streams coherently while keeping the
/// stages decorrelated from each other.
pub fn stage_seed(runtime: &RuntimeConfig, label: u64) -> u64 {
    SeedStream::new(runtime.seed).substream(label).seed_for(0)
}

/// Writes one benchmark binary's data rows as `BENCH_<name>.jsonl` in the current
/// directory and returns the path.
///
/// This is the single code path through which every figure/table binary persists
/// its recorded outputs (the human-readable `println!` tables remain on stdout);
/// the files round-trip through [`prophunt_formats::parse_report`].
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn write_bench_report(name: &str, records: &[ReportRecord]) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.jsonl"));
    std::fs::write(&path, write_report(records))?;
    Ok(path)
}

/// Builds the `ler` report record of one sweep point. `stage` is the stage label
/// the estimate was seeded with (the `seed` argument of
/// [`combined_logical_error_rate`] / [`sweep_logical_error_rates`]); the record
/// stores the *effective* seed `stage_seed(runtime, stage)` — the value that
/// actually reproduces the failure count bit-for-bit at this chunk size.
pub fn ler_record(
    label: impl Into<String>,
    p: f64,
    idle: f64,
    estimate: &LogicalErrorEstimate,
    stage: u64,
    runtime: &RuntimeConfig,
) -> ReportRecord {
    ReportRecord::ler(
        label,
        p,
        idle,
        estimate.shots as u64,
        estimate.failures as u64,
        stage_seed(runtime, stage),
        runtime.chunk_size as u64,
    )
}

/// A benchmark code together with its optional hand-designed schedule.
pub struct BenchmarkCode {
    /// The code.
    pub code: CssCode,
    /// A hand-designed schedule, when one is known (surface codes).
    pub hand_designed: Option<ScheduleSpec>,
    /// Number of syndrome-measurement rounds used in simulations (the paper uses `d`).
    pub rounds: usize,
}

/// The benchmark suite of Table 1, with the LDPC substitutions documented in `README.md`:
/// rotated surface codes d = 3, 5, 7, 9 plus generalized-bicycle and bivariate-bicycle
/// codes standing in for the paper's LP / RQT instances.
pub fn benchmark_suite(include_large: bool) -> Vec<BenchmarkCode> {
    let mut out = Vec::new();
    let distances: &[usize] = if include_large {
        &[3, 5, 7, 9]
    } else {
        &[3, 5]
    };
    for &d in distances {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let hand = ScheduleSpec::surface_hand_designed(&code, &layout);
        out.push(BenchmarkCode {
            code,
            hand_designed: Some(hand),
            rounds: d.min(5),
        });
    }
    // LP-class substitute: [[18, 2]] generalized bicycle code (weight-4 stabilizers).
    out.push(BenchmarkCode {
        code: generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2"),
        hand_designed: None,
        rounds: 3,
    });
    // LP-class substitute with larger block: [[36, 2]] generalized bicycle code.
    out.push(BenchmarkCode {
        code: generalized_bicycle(18, &[0, 1], &[0, 5], "gb_36_2"),
        hand_designed: None,
        rounds: 3,
    });
    if include_large {
        // RQT-class substitute: the [[72, 12, 6]] bivariate bicycle code (weight-6).
        out.push(BenchmarkCode {
            code: bivariate_bicycle(
                6,
                6,
                &[(3, 0), (0, 1), (0, 2)],
                &[(0, 3), (1, 0), (2, 0)],
                "bb_72_12",
            ),
            hand_designed: None,
            rounds: 3,
        });
    }
    out
}

/// Estimates the combined (X + Z memory) logical error rate of a schedule.
pub fn combined_logical_error_rate(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> LogicalErrorEstimate {
    combined_logical_error_rate_with_idle(code, schedule, rounds, p, 0.0, shots, seed, runtime)
}

/// Estimates the combined logical error rate with an additional idle-error strength
/// (Figure 15's sensitivity study).
#[allow(clippy::too_many_arguments)]
pub fn combined_logical_error_rate_with_idle(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    idle: f64,
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> LogicalErrorEstimate {
    // `seed` acts as this call site's stage label; the runtime's base seed
    // (e.g. PROPHUNT_SEED) rotates the actual stream.
    let seed = stage_seed(runtime, seed);
    let runtime = Runtime::new(*runtime);
    let mut total = LogicalErrorEstimate {
        shots: 0,
        failures: 0,
    };
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, rounds, basis).expect("valid schedule");
        let noise = NoiseModel::uniform_depolarizing(p).with_idle(idle);
        let dem = DetectorErrorModel::from_experiment(&exp, &noise);
        let decoder = BpOsdDecoder::new(&dem);
        total = total.combined(estimate_logical_error_rate(
            &dem, &decoder, shots, seed, &runtime,
        ));
    }
    total
}

/// Sweeps the combined logical error rate of one schedule over several physical
/// error rates, evaluating the sweep points as parallel tasks on `runtime` and
/// returning `(p, estimate)` pairs in input order.
///
/// Each sweep point still seeds its Monte-Carlo chunks from `seed` alone, so a
/// sweep returns the same estimates whether its points run in parallel here or
/// one at a time.
pub fn sweep_logical_error_rates(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    ps: &[f64],
    shots: usize,
    seed: u64,
    runtime: &RuntimeConfig,
) -> Vec<(f64, LogicalErrorEstimate)> {
    // Parallelism splits across the nesting levels: the outer sweep fans out
    // over points and each point's estimator gets an equal share of the thread
    // budget, so total concurrency stays ~bounded by `runtime.threads` without
    // idling workers when there are fewer points than threads. Estimates are
    // unchanged because results depend only on (seed, chunk_size), never on
    // where the threads sit.
    let outer = Runtime::new(*runtime);
    let inner = runtime.with_threads(runtime.threads.max(1).div_ceil(ps.len().max(1)));
    outer.par_map(ps, |&p| {
        (
            p,
            combined_logical_error_rate(code, schedule, rounds, p, shots, seed, &inner),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_contains_surface_and_ldpc_codes() {
        let suite = benchmark_suite(false);
        assert!(suite.len() >= 4);
        assert!(suite.iter().any(|b| b.code.name().starts_with("surface")));
        assert!(suite.iter().any(|b| b.code.name().starts_with("gb_")));
        for bench in &suite {
            if let Some(hand) = &bench.hand_designed {
                hand.validate(&bench.code).unwrap();
            }
        }
    }

    #[test]
    fn combined_ler_is_a_probability() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let runtime = RuntimeConfig::new(2, 64, 0);
        let est = combined_logical_error_rate(&bench.code, &schedule, 2, 2e-3, 200, 1, &runtime);
        assert!(est.rate() >= 0.0 && est.rate() <= 1.0);
        assert_eq!(est.shots, 400);
    }

    #[test]
    fn sweeps_match_pointwise_estimates_and_preserve_order() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let runtime = RuntimeConfig::new(4, 64, 0);
        let ps = [2e-3, 8e-3];
        let sweep = sweep_logical_error_rates(&bench.code, &schedule, 2, &ps, 150, 5, &runtime);
        assert_eq!(sweep.len(), 2);
        for ((p, est), expected_p) in sweep.iter().zip(ps) {
            assert_eq!(*p, expected_p);
            let point =
                combined_logical_error_rate(&bench.code, &schedule, 2, *p, 150, 5, &runtime);
            assert_eq!(
                est.failures, point.failures,
                "sweep must match pointwise run"
            );
        }
    }
}
