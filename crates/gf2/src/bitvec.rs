//! Packed bit vectors over GF(2).

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector over GF(2), packed 64 bits per machine word.
///
/// Addition over GF(2) is XOR ([`BitXorAssign`] is implemented), and the inner product is
/// the parity of the bitwise AND ([`BitVec::dot`]).
///
/// # Example
///
/// ```
/// use prophunt_gf2::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// let w = BitVec::from_indices(10, &[3, 4]);
/// assert_eq!((&v ^ &w).ones().collect::<Vec<_>>(), vec![4, 7]);
/// assert!(v.dot(&w));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        BitVec {
            len,
            words: vec![0u64; nwords],
        }
    }

    /// Creates a vector of length `len` with ones at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, ones: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of `0`/`1` bytes (any nonzero byte is treated as one).
    pub fn from_u8(bits: &[u8]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Returns the number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at position `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at position `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        *word ^= mask;
        *word & mask != 0
    }

    /// Returns the Hamming weight (number of one bits).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns the GF(2) inner product with `other` (parity of the bitwise AND).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot product length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Adds (XORs) `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Returns the bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "and length mismatch");
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Returns an iterator over the indices of the set bits, in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            vec: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Collects the vector into a `Vec<u8>` of zeros and ones.
    pub fn to_u8_vec(&self) -> Vec<u8> {
        (0..self.len).map(|i| u8::from(self.get(i))).collect()
    }

    /// Returns a copy extended (with zeros) or truncated to `new_len` bits.
    pub fn resized(&self, new_len: usize) -> BitVec {
        let mut out = BitVec::zeros(new_len);
        for i in self.ones() {
            if i < new_len {
                out.set(i, true);
            }
        }
        out
    }

    /// Concatenates `self` and `other` into a new vector.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in self.ones() {
            out.set(i, true);
        }
        for i in other.ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns the sub-vector given by the listed positions, in order.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn select(&self, positions: &[usize]) -> BitVec {
        let mut out = BitVec::zeros(positions.len());
        for (j, &p) in positions.iter().enumerate() {
            if self.get(p) {
                out.set(j, true);
            }
        }
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign_with(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign_with(rhs);
        out
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

/// Iterator over the indices of set bits of a [`BitVec`], produced by [`BitVec::ones`].
pub struct Ones<'a> {
    vec: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_index * WORD_BITS + bit;
                if idx < self.vec.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_index += 1;
            if self.word_index >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_no_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.weight(), 0);
        assert!(v.is_zero());
        assert_eq!(v.ones().count(), 0);
        assert_eq!(v.first_one(), None);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = BitVec::zeros(200);
        for &i in &[0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.weight(), 8);
        assert_eq!(
            v.ones().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 199]
        );
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 7);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(5);
        assert!(v.flip(2));
        assert!(!v.flip(2));
        assert!(v.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn xor_is_addition_mod_two() {
        let a = BitVec::from_indices(10, &[1, 3, 5]);
        let b = BitVec::from_indices(10, &[3, 4, 5, 9]);
        let c = &a ^ &b;
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn dot_is_parity_of_overlap() {
        let a = BitVec::from_indices(80, &[0, 64, 70]);
        let b = BitVec::from_indices(80, &[64, 70, 79]);
        assert!(!a.dot(&b)); // overlap {64, 70} has even parity
        let c = BitVec::from_indices(80, &[0]);
        assert!(a.dot(&c));
    }

    #[test]
    fn from_u8_and_to_u8_roundtrip() {
        let bits = [1u8, 0, 0, 1, 1, 0, 1];
        let v = BitVec::from_u8(&bits);
        assert_eq!(v.to_u8_vec(), bits.to_vec());
    }

    #[test]
    fn concat_and_select() {
        let a = BitVec::from_indices(3, &[0, 2]);
        let b = BitVec::from_indices(4, &[1]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 7);
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![0, 2, 4]);
        let s = c.select(&[2, 3, 4]);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn resized_truncates_and_extends() {
        let a = BitVec::from_indices(5, &[0, 4]);
        assert_eq!(a.resized(3).ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(a.resized(10).ones().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let v = BitVec::from_indices(4, &[1]);
        assert_eq!(format!("{v}"), "0100");
        assert_eq!(format!("{v:?}"), "BitVec[0100]");
        let empty = BitVec::zeros(0);
        assert_eq!(format!("{empty:?}"), "BitVec[]");
    }

    proptest! {
        #[test]
        fn prop_xor_self_is_zero(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            let z = &v ^ &v;
            prop_assert!(z.is_zero());
        }

        #[test]
        fn prop_weight_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            prop_assert_eq!(v.weight(), bits.iter().filter(|&&b| b).count());
        }

        #[test]
        fn prop_ones_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            let expected: Vec<usize> = bits
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect();
            prop_assert_eq!(v.ones().collect::<Vec<_>>(), expected);
        }

        #[test]
        fn prop_dot_commutes(
            a in proptest::collection::vec(any::<bool>(), 150),
            b in proptest::collection::vec(any::<bool>(), 150),
        ) {
            let va = BitVec::from_bools(&a);
            let vb = BitVec::from_bools(&b);
            prop_assert_eq!(va.dot(&vb), vb.dot(&va));
        }

        #[test]
        fn prop_xor_associative(
            a in proptest::collection::vec(any::<bool>(), 100),
            b in proptest::collection::vec(any::<bool>(), 100),
            c in proptest::collection::vec(any::<bool>(), 100),
        ) {
            let (va, vb, vc) = (BitVec::from_bools(&a), BitVec::from_bools(&b), BitVec::from_bools(&c));
            let left = &(&va ^ &vb) ^ &vc;
            let right = &va ^ &(&vb ^ &vc);
            prop_assert_eq!(left, right);
        }
    }
}
