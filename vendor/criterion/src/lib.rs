//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! interface the workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — backed by a simple but honest measurement loop:
//! warm-up, then timed samples of adaptively sized batches, reporting
//! min / mean / max per-iteration times.
//!
//! It is intentionally not a statistics suite; it exists so `cargo bench`
//! compiles, runs and prints comparable numbers in this offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A single benchmark measurement, in per-iteration nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Minimum observed per-iteration time.
    pub min_ns: f64,
    /// Mean per-iteration time across samples.
    pub mean_ns: f64,
    /// Maximum observed per-iteration time.
    pub max_ns: f64,
}

/// The benchmark driver. Mirrors `criterion::Criterion`'s builder methods.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    results: Vec<(String, Sample)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the filter argument `cargo bench <filter>` forwards to the
        // bench binary, ignoring harness flags such as `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample: None,
        };
        f(&mut bencher);
        match bencher.sample {
            Some(s) => {
                println!(
                    "{name:<45} time: [{} {} {}]",
                    format_ns(s.min_ns),
                    format_ns(s.mean_ns),
                    format_ns(s.max_ns)
                );
                self.results.push((name.to_string(), s));
            }
            None => println!("{name:<45} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Returns the measurements recorded so far (shim extension: real criterion
    /// reports through its own output machinery, this shim lets bench binaries
    /// persist baselines themselves).
    pub fn results(&self) -> &[(String, Sample)] {
        &self.results
    }
}

/// Times a closure inside [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration statistics for the driver to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~ measurement_time /
        // sample_size per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut total_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_ns += ns;
        }
        self.sample = Some(Sample {
            min_ns,
            mean_ns: total_ns / self.sample_size as f64,
            max_ns,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None;
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_and_main_macros_expand() {
        fn target(c: &mut Criterion) {
            let _ = c;
        }
        criterion_group!(smoke_group, target);
        smoke_group();
    }
}
