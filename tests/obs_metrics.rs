//! The observability layer's determinism contract, end to end through the
//! Session API: the counter plane of the `prophunt-obs` registry is a pure
//! function of `(seed, chunk_size)` — bit-identical at any thread count — for
//! LER estimation on both engines and for portfolio search, while timings live
//! in separate gauge/histogram instruments and in separate JSON keys.

use prophunt_suite::api::{
    BasisSelection, Engine, ExperimentSpec, LerJob, SearchJob, Session, ShotBudget,
};
use prophunt_suite::formats::parse_report;
use prophunt_suite::formats::report::ReportRecord;
use prophunt_suite::runtime::RuntimeConfig;

fn spec_d3(p: f64, engine: Engine) -> ExperimentSpec {
    ExperimentSpec::builder()
        .code_family("surface:3")
        .unwrap()
        .noise_str(&format!("depolarizing:{p}"))
        .unwrap()
        .basis(BasisSelection::Both)
        .engine(engine)
        .build()
        .unwrap()
}

#[test]
fn ler_counters_are_bit_identical_across_thread_counts_on_both_engines() {
    for engine in [Engine::Scalar, Engine::Frames] {
        let counters_at = |threads: usize| {
            let mut session = Session::new(RuntimeConfig::new(threads, 64, 9));
            session
                .run_ler_quiet(
                    &LerJob::new(spec_d3(8e-3, engine)).with_budget(ShotBudget::fixed(512)),
                )
                .unwrap();
            session.metrics().counters
        };
        let reference = counters_at(1);
        let counter = |name: &str| {
            reference
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        // 512 shots per basis, two bases, 64-shot chunks.
        assert_eq!(counter("ler.shots"), 1024, "engine {}", engine.as_str());
        assert_eq!(counter("ler.chunks"), 16);
        assert_eq!(counter("session.jobs"), 1);
        for threads in [2, 8] {
            assert_eq!(
                counters_at(threads),
                reference,
                "engine {} threads {threads}",
                engine.as_str()
            );
        }
    }
}

#[test]
fn search_counters_are_bit_identical_across_thread_counts() {
    let counters_at = |threads: usize| {
        let mut session = Session::new(RuntimeConfig::new(threads, 64, 11));
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        session
            .run_search_quiet(
                &SearchJob::new(spec)
                    .with_rounds(3)
                    .with_proposals(8)
                    .with_samples(8),
            )
            .unwrap();
        session.metrics().counters
    };
    let reference = counters_at(1);
    let counter = |name: &str| {
        reference
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("search.rounds"), 3);
    assert!(counter("search.proposals") > 0);
    for threads in [2, 8] {
        assert_eq!(counters_at(threads), reference, "threads {threads}");
    }
}

#[test]
fn metrics_and_meta_records_round_trip_and_separate_counters_from_timings() {
    let mut session = Session::new(RuntimeConfig::new(2, 64, 3));
    session
        .run_ler_quiet(
            &LerJob::new(spec_d3(1e-2, Engine::Scalar)).with_budget(ShotBudget::fixed(128)),
        )
        .unwrap();
    let meta = ReportRecord::meta("0.1.0", 3, 2, 64, "scalar");
    let metrics = ReportRecord::metrics_from_snapshot(&session.metrics());
    let text = format!("{}\n{}\n", meta.to_json_line(), metrics.to_json_line());
    let parsed = parse_report(&text).unwrap();
    assert_eq!(parsed, vec![meta, metrics.clone()]);

    let ReportRecord::Metrics {
        counters,
        histograms,
        ..
    } = metrics
    else {
        panic!("expected a metrics record");
    };
    // The deterministic/timing partition: counts live in `counters`, every
    // span timing lives in a `.ns` histogram, and no timing leaks into the
    // counter plane.
    assert!(counters.iter().any(|(n, v)| n == "ler.shots" && *v == 256));
    assert!(counters.iter().all(|(n, _)| !n.ends_with(".ns")));
    assert!(histograms
        .iter()
        .any(|h| h.name == "job.ler.ns" && h.count == 1));
    assert!(histograms.iter().any(|h| h.name.starts_with("ler.scalar.")));
}
