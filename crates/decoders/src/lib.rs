//! Decoders and logical-error-rate estimation for circuit-level detector error models.
//!
//! The paper decodes surface codes with PyMatching (sparse blossom) and LP/RQT codes with
//! BP-LSD. This crate provides the same decoding capability from scratch:
//!
//! * [`BpOsdDecoder`] — normalized min-sum belief propagation over the detector error
//!   model's Tanner graph, with ordered-statistics (OSD-0) post-processing. BP+OSD is the
//!   decoder family BP-LSD belongs to, and it also handles matchable (surface-code)
//!   decoding graphs, so a single implementation covers every benchmark code.
//! * [`UnionFindDecoder`] — a cluster-growth union-find decoder for graph-like detector
//!   error models (each error mechanism flips at most two detectors after restriction),
//!   used as a faster alternative on surface codes and as an ablation point.
//! * [`estimate_logical_error_rate`] — the Monte-Carlo harness: sample a
//!   [`DemSampler`](prophunt_circuit::DemSampler), decode, and count logical failures,
//!   optionally across threads.
//!
//! # Example
//!
//! ```
//! use prophunt_qec::surface::rotated_surface_code_with_layout;
//! use prophunt_circuit::{MemoryBasis, MemoryExperiment, NoiseModel, DetectorErrorModel};
//! use prophunt_circuit::schedule::ScheduleSpec;
//! use prophunt_decoders::{BpOsdDecoder, estimate_logical_error_rate, Decoder};
//! use prophunt_runtime::{Runtime, RuntimeConfig};
//!
//! let (code, layout) = rotated_surface_code_with_layout(3);
//! let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
//! let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
//! let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
//! let decoder = BpOsdDecoder::new(&dem);
//! let runtime = Runtime::new(RuntimeConfig::single_threaded(0));
//! let estimate = estimate_logical_error_rate(&dem, &decoder, 200, 0xfeed, &runtime);
//! assert!(estimate.rate() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bposd;
pub mod ler;
pub mod unionfind;

pub use batch::{decode_shots_cached, DecodeCache, DecodeStats};
pub use bposd::BpOsdDecoder;
pub use ler::{
    estimate_logical_error_rate, estimate_with_budget, estimate_with_budget_engine,
    estimate_with_budget_engine_cached, ChunkProgress, Engine, LerStopReason, LogicalErrorEstimate,
    ShotBudget,
};
pub use unionfind::UnionFindDecoder;

use prophunt_gf2::BitVec;

/// Decoder-side tallies for one [`Decoder::decode_batch_with_stats`] call.
///
/// Like every deterministic counter in this workspace, the fields are pure
/// functions of the input shots. Decoders without a BP/OSD split (union-find)
/// report the default all-zero stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Shots whose BP pass converged (reproduced the syndrome).
    pub bp_converged: usize,
    /// Shots that fell through to the OSD post-processor.
    pub osd_calls: usize,
}

/// A decoder over a fixed detector error model.
///
/// Given the detector outcomes of one shot, the decoder predicts which logical
/// observables were flipped; a shot counts as a logical failure when the prediction
/// disagrees with the true observable flips.
pub trait Decoder: Send + Sync {
    /// Predicts the observable flips for the given detector outcomes.
    fn decode(&self, detectors: &BitVec) -> BitVec;

    /// Predicts the observable flips of a whole batch of shots, one prediction
    /// per input syndrome, in order.
    ///
    /// The contract is strict equality with the per-shot path: for every `i`,
    /// `decode_batch(shots)[i] == decode(&shots[i])`. The default
    /// implementation simply loops [`Decoder::decode`]; decoders with
    /// per-call scratch ([`BpOsdDecoder`], [`UnionFindDecoder`]) override it
    /// to build the scratch once and reuse it across the batch, which is where
    /// the frame engine's batch-decoding speedup comes from.
    fn decode_batch(&self, shots: &[BitVec]) -> Vec<BitVec> {
        shots.iter().map(|s| self.decode(s)).collect()
    }

    /// [`Decoder::decode_batch`] plus decoder-side [`BatchStats`] tallies.
    ///
    /// The predictions obey the exact same strict-equality contract as
    /// [`Decoder::decode_batch`]; the stats are a pure function of the shots
    /// (deterministic at any thread count). The default implementation
    /// returns the plain batch result with all-zero stats; [`BpOsdDecoder`]
    /// overrides it to report BP convergence and OSD fallback counts.
    fn decode_batch_with_stats(&self, shots: &[BitVec]) -> (Vec<BitVec>, BatchStats) {
        (self.decode_batch(shots), BatchStats::default())
    }

    /// Number of detectors the decoder expects per shot.
    fn num_detectors(&self) -> usize;

    /// Number of observables the decoder predicts per shot.
    fn num_observables(&self) -> usize;
}
