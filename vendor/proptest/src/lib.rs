//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the narrow interface the workspace's property tests use: the [`proptest!`]
//! macro with `arg in strategy` bindings, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`strategy::Strategy`] implementations for integer
//! ranges and `any::<bool>()` / `any::<u64>()`, and
//! [`collection::vec`] with either a fixed size or a size range.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! deterministic case index so it can be replayed (cases are generated from a
//! fixed seed, so failures are stable across runs and machines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategy trait and implementations.
pub mod strategy {
    use super::*;
    use rand::Rng;

    /// Generates values of type `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Strategy for a `Range<T>` of integers: uniform in `[start, end)`.
    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut StdRng) -> i32 {
            rng.gen_range(self.clone())
        }
    }

    /// The `any::<T>()` strategy: the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Creates the [`Any`] strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(0..=u64::MAX)
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn generate(&self, rng: &mut StdRng) -> u8 {
            rng.gen_range(0..=u8::MAX)
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(0..=usize::MAX)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use rand::Rng;

    /// A number of elements: fixed, or uniform within a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniform in `[start, end)`.
        Range(std::ops::Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and whose
    /// length comes from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Exact(n) => *n,
                SizeRange::Range(r) if r.is_empty() => r.start,
                SizeRange::Range(r) => rng.gen_range(r.clone()),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property test needs; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]` that
/// evaluates the body for `cases` generated inputs (default 256, override with
/// `#![proptest_config(...)]` as the first item). Generation is seeded from
/// the test name, so runs are deterministic and a reported failing case index
/// is replayable.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                use rand::SeedableRng as _;
                let config: $crate::ProptestConfig = $config;
                // Seed from the property name: deterministic, distinct per test.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                for case in 0..config.cases {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                    $(let $arg = ($strategy).generate(&mut rng);)+
                    let run = || -> () { $body };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} of {} failed",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_respect_range(v in collection::vec(any::<bool>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_size_vecs_are_exact(v in collection::vec(any::<u64>(), 10)) {
            prop_assert_eq!(v.len(), 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_and_ranges_work(x in 1usize..12, y in any::<u64>()) {
            prop_assert!((1..12).contains(&x));
            prop_assert_ne!(x, 0);
            let _ = y;
        }
    }
}
