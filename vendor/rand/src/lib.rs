//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so this
//! crate vendors the *interface* the workspace actually uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`] — backed by a xoshiro256++ generator seeded through
//! splitmix64.
//!
//! Design notes:
//!
//! * Streams are fully deterministic functions of the seed, which is all the
//!   workspace relies on (seeds are derived per *task* by
//!   `prophunt-runtime`'s `SeedStream`, never per OS thread).
//! * The integer `gen_range` uses a simple modulo reduction. The bias is at
//!   most `range / 2^64`, irrelevant for Monte-Carlo sampling at the scales
//!   used here, and the output is deterministic, which is what the
//!   reproducibility tests pin down.
//! * The generated streams differ from the real `rand` crate's `StdRng`
//!   (ChaCha12). Nothing in the workspace depends on matching upstream
//!   streams, only on internal determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 high bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that supports uniform sampling of a single value.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types that [`SampleRange`] knows how to sample.
pub trait UniformInt: Copy {
    /// Converts to the `u64` number line used for width arithmetic.
    fn to_u64(self) -> u64;
    /// Converts back from the `u64` number line.
    fn from_u64(value: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving map into u64 (signed types are offset).
                (self as i128 - <$t>::MIN as i128) as u64
            }
            fn from_u64(value: u64) -> Self {
                (value as i128 + <$t>::MIN as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let low = self.start.to_u64();
        let high = self.end.to_u64();
        assert!(low < high, "gen_range: empty range");
        let width = high - low;
        T::from_u64(low + rng.next_u64() % width)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let low = self.start().to_u64();
        let high = self.end().to_u64();
        assert!(low <= high, "gen_range: empty range");
        let width = (high - low).wrapping_add(1);
        if width == 0 {
            // Full u64 domain.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(low + rng.next_u64() % width)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A xoshiro256++ generator (the workspace's stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zero outputs, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small fast generator; here an alias for [`StdRng`], which is already small.
    pub type SmallRng = StdRng;

    /// Placeholder for `rand::rngs::ThreadRng`.
    ///
    /// The workspace only names this type to instantiate generic code with
    /// `None::<&mut ThreadRng>`; it is never constructed (there is no OS
    /// entropy source in the offline build environment).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        _private: (),
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            unreachable!("ThreadRng cannot be constructed in the vendored rand shim")
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices: random shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..8);
            assert!((3..8).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
