//! Strategy-portfolio search over syndrome-measurement schedules.
//!
//! The PropHunt optimizer (`crates/prophunt`) explores schedule space with one
//! heuristic: MaxSAT-guided greedy descent. Related work treats the same
//! landscape very differently — AlphaSyndrome as a learned sequential-decision
//! problem, Sato & Suzuki's few-ancilla scheduling as restarts over permuted
//! orderings — and no single heuristic dominates across code families. This
//! crate makes the heuristic pluggable and races several of them:
//!
//! * [`Strategy`] — the search-strategy interface: `propose` a candidate
//!   schedule each round, `observe` the portfolio incumbent (and whether your
//!   own proposal was accepted as the new incumbent).
//! * Four built-in implementations, selectable via [`StrategyKind`]:
//!   [`MaxSatDescent`] (the existing optimizer behind the trait, one pipeline
//!   iteration per round), [`Annealing`] (simulated annealing over
//!   commutation-preserving coloration swaps), [`Beam`] (greedy beam search
//!   over schedule orderings), and [`HillClimb`] (random-restart hill
//!   climbing).
//! * [`Portfolio`] — runs N seeded strategy instances on the shared
//!   [`prophunt_runtime`] worker pool in synchronized rounds with
//!   deterministic incumbent sharing and canonical-fingerprint deduplication
//!   of candidates (a schedule two instances converge on is verified once,
//!   never re-evaluated).
//!
//! # The incremental hot path
//!
//! The local-search arms are driven entirely through
//! [`prophunt_circuit::ScheduleEval`], the incremental evaluation engine:
//! [`MoveSet::draw`] selects a typed move, `try_apply` validates it in
//! O(pairs touched) (commutation parity counters) plus O(cone) (in-place
//! relayering of the touched CNOTs' forward cone), and rejected proposals are
//! undone with `revert` — no per-proposal schedule clone, no O(X·Z·shared)
//! commutation rescan, no full dependency-DAG rebuild. The incremental
//! results are exactly the from-scratch ones (property-pinned in
//! `prophunt-circuit`), so the determinism contract below is unchanged.
//!
//! # Determinism contract
//!
//! The portfolio inherits the runtime layer's contract: a fixed
//! `(seed, chunk_size)` pair yields a **bit-identical best schedule and an
//! identical per-round incumbent sequence at any thread count**. Instance
//! slot `i` is constructed with the seed `SeedStream(seed) →
//! substream(INSTANCE) → seed_for(i)`, round `r` hands it the proposal seed
//! `SeedStream(seed) → substream(ROUND) → substream(r) → seed_for(i)`,
//! instances are stepped as order-preserving runtime tasks, and the incumbent
//! is selected by the total order `(depth, instance index)` — never by
//! completion order.
//!
//! # Objective
//!
//! Candidates are scored by **CNOT depth** of a schedule that stays valid for
//! the code (commutation preserved, dependency DAG acyclic). Depth is the
//! quantity the paper's evaluation tabulates per code, and minimizing it under
//! the validity constraint is the part of the problem every strategy can
//! evaluate cheaply; the MaxSAT-descent arm additionally pulls its candidates
//! toward effective-distance-restoring schedules exactly like the standalone
//! optimizer.
//!
//! # Example
//!
//! ```
//! use prophunt_circuit::schedule::ScheduleSpec;
//! use prophunt_qec::surface::rotated_surface_code_with_layout;
//! use prophunt_runtime::RuntimeConfig;
//! use prophunt_search::{Portfolio, PortfolioConfig, StrategyKind};
//!
//! let (code, _) = rotated_surface_code_with_layout(3);
//! let initial = ScheduleSpec::coloration(&code);
//! let config = PortfolioConfig {
//!     strategies: vec![StrategyKind::HillClimb, StrategyKind::Annealing],
//!     portfolio_size: 2,
//!     rounds: 3,
//!     runtime: RuntimeConfig::new(2, 64, 7),
//!     ..PortfolioConfig::quick()
//! };
//! let result = Portfolio::new(config).run(&code, None, &initial, |_round| {})?;
//! assert!(result.best.depth <= result.initial_depth);
//! # Ok::<(), prophunt_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod beam;
mod hillclimb;
mod maxsat;
mod moves;
mod portfolio;
mod strategy;

pub use anneal::Annealing;
pub use beam::Beam;
pub use hillclimb::HillClimb;
pub use maxsat::MaxSatDescent;
pub use moves::MoveSet;
pub use portfolio::{
    InstanceProposal, Portfolio, PortfolioConfig, RoundRecord, SearchResult, INITIAL_STRATEGY,
};
pub use strategy::{Incumbent, Proposal, SearchContext, SearchParams, Strategy, StrategyKind};
