//! Optimizes the syndrome-measurement circuit of a small quantum-LDPC code (a
//! generalized-bicycle code standing in for the paper's LP instances) and reports the
//! logical error rate before and after.
//!
//! Run with `cargo run --release --example ldpc_optimization`.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{estimate_logical_error_rate, BpOsdDecoder};
use prophunt_suite::qec::product::generalized_bicycle;
use prophunt_suite::qec::CssCode;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

fn logical_error_rate(code: &CssCode, schedule: &ScheduleSpec, p: f64, shots: usize) -> f64 {
    let mut failures = 0;
    let mut total = 0;
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, 2, basis).expect("valid schedule");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let estimate = estimate_logical_error_rate(&dem, &decoder, shots, 7, &runtime);
        failures += estimate.failures;
        total += estimate.shots;
    }
    failures as f64 / total as f64
}

fn main() {
    // A [[18, 2]] generalized-bicycle (lifted-product) code with weight-4 stabilizers.
    let code = generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2");
    println!(
        "code: {code} (max stabilizer weight {})",
        code.max_stabilizer_weight()
    );

    let baseline = ScheduleSpec::coloration(&code);
    let p = 3e-3;
    let shots = 1_500;
    let before = logical_error_rate(&code, &baseline, p, shots);
    println!("coloration circuit LER at p = {p}: {before:.4}");

    let mut config = PropHuntConfig::quick(2);
    config.iterations = 3;
    config.samples_per_iteration = 30;
    let prophunt = PropHunt::new(code.clone(), config);
    let result = prophunt.optimize(baseline);
    println!(
        "PropHunt applied {} changes; depth {} -> {}",
        result.total_changes_applied(),
        result.initial_schedule.depth().unwrap(),
        result.final_depth()
    );

    let after = logical_error_rate(&code, &result.final_schedule, p, shots);
    println!("optimized circuit LER at p = {p}: {after:.4}");
    if after < before {
        println!("improvement factor: {:.2}x", before / after.max(1e-6));
    } else {
        println!("no improvement at this sample size (try more iterations/shots)");
    }
}
