//! Figure 15: sensitivity of the benchmark circuits to idle errors between gate layers,
//! with the paper's hardware points (superconducting, neutral atom, atom movement).
//!
//! Each (code, idle) point is a `LerJob` through one shared `Session`; the memory
//! experiments are built once per code and reused across every idle strength.

use prophunt_api::{NoiseSpec, ShotBudget};
use prophunt_bench::{bench_session, benchmark_suite, run_ler_point, write_bench_report};
use prophunt_circuit::schedule::ScheduleSpec;

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let shots = if full { 10_000 } else { 800 };
    let gate_p = 1e-3;
    let mut session = bench_session();
    // Idle error strength = t_gate / T_coherence. Hardware points from the paper's cited
    // numbers: superconducting (~30 ns / 100 us), neutral atoms (~300 ns / 10 s gates but
    // ~1 ms measurement), movement-based atoms (~500 us movement / 10 s).
    let idle_points: &[(f64, &str)] = &[
        (0.0, "no idle"),
        (3e-5, "neutral atom"),
        (3e-4, "superconducting"),
        (5e-3, "atom movement"),
        (2e-2, "(stress)"),
    ];
    println!("Figure 15: idle-error sensitivity at gate error {gate_p}");
    println!(
        "{:<14} {:>14} {:>10} {:>14}",
        "code", "idle strength", "label", "LER"
    );
    let mut records = Vec::new();
    for bench in benchmark_suite(false) {
        let schedule = match &bench.hand_designed {
            Some(h) => h.clone(),
            None => ScheduleSpec::coloration(&bench.code),
        };
        let rounds = bench.rounds.min(3);
        for &(idle, label) in idle_points {
            let outcome = run_ler_point(
                &mut session,
                &bench.code,
                &schedule,
                rounds,
                NoiseSpec::Depolarizing { p: gate_p, idle },
                ShotBudget::fixed(shots),
                17,
            );
            println!(
                "{:<14} {:>14.1e} {:>10} {:>14.5}",
                bench.code.name(),
                idle,
                label,
                outcome.combined.rate()
            );
            records.push(outcome.to_record(format!("{}/{label}", bench.code.name())));
        }
    }
    let path = write_bench_report("fig15_idle", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
