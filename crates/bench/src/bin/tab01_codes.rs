//! Table 1: the benchmark code suite, with the substituted LDPC instances' actual
//! parameters computed on the fly.

use prophunt_bench::benchmark_suite;
use prophunt_qec::distance::code_parameters;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let include_large = std::env::var("PROPHUNT_FULL").is_ok();
    let mut rng = StdRng::seed_from_u64(1);
    println!("Table 1: benchmark QEC codes (substitutions documented in README.md)");
    println!(
        "{:<14} {:>5} {:>4} {:>6} {:>12}",
        "code", "n", "k", "d_est", "max weight"
    );
    for bench in benchmark_suite(include_large) {
        let params = code_parameters(&bench.code, 150, &mut rng);
        println!(
            "{:<14} {:>5} {:>4} {:>6} {:>12}",
            bench.code.name(),
            params.n,
            params.k,
            params.d_estimate,
            params.max_stabilizer_weight
        );
    }
}
