//! The unified experiment API of the PropHunt suite: a composable
//! Session/Job surface with pluggable decoders, a noise-model family and
//! deterministic adaptive shot budgets.
//!
//! The paper evaluates schedules across codes, decoders and noise settings; this
//! crate makes that product space first-class instead of hard-wiring each
//! combination:
//!
//! * [`ExperimentSpec`] — a validating builder for *what* to run: code family +
//!   schedule source + noise spec + decoder name + rounds + basis.
//! * [`Session`] — *where* it runs: owns the deterministic parallel
//!   [`prophunt_runtime::Runtime`] and caches built memory experiments, detector
//!   error models and decoder instances across jobs, so sweeps share work.
//! * [`OptimizeJob`] / [`LerJob`] / [`SearchJob`] — *how* it runs: typed jobs
//!   emitting a unified [`Event`] stream (iteration records, shot-chunk
//!   progress, per-round search incumbents with strategy provenance, stop
//!   reason) through one observer channel.
//! * [`ShotBudget`] — *how long* it runs: fixed shots, a failure target, or a
//!   relative-standard-error target, all stopping at chunk granularity so
//!   early-stopped failure counts stay bit-identical at any thread count.
//! * [`DecoderRegistry`] / [`NoiseSpec`] — the pluggable registries: decoders
//!   selectable by name (`bposd`, `unionfind`, user-registered), noise models
//!   constructible from spec strings (`depolarizing:0.001`, `si1000:0.002`,
//!   `biased:0.001:10`).
//!
//! Every session also carries a [`prophunt_obs`] registry (re-exported as
//! [`obs`]) shared with its runtime, the LER engines and search;
//! [`Session::metrics`] snapshots cache hit/miss counters, deterministic
//! shot/chunk counters and per-stage span histograms in one call.
//!
//! # Example
//!
//! ```
//! use prophunt_api::{BasisSelection, ExperimentSpec, LerJob, Session, ShotBudget};
//! use prophunt_runtime::RuntimeConfig;
//!
//! let mut session = Session::new(RuntimeConfig::new(4, 64, 7));
//! let spec = ExperimentSpec::builder()
//!     .code_family("surface:3")?
//!     .noise_str("depolarizing:0.003")?
//!     .decoder("bposd")
//!     .basis(BasisSelection::Both)
//!     .build()?;
//! let job = LerJob::new(spec).with_budget(ShotBudget::MaxFailures {
//!     max_failures: 10,
//!     max_shots: 20_000,
//! });
//! let outcome = session.run_ler_quiet(&job)?;
//! println!(
//!     "LER {:.2e} after {} shots ({})",
//!     outcome.combined.rate(),
//!     outcome.combined.shots,
//!     outcome.stop.as_str()
//! );
//! # Ok::<(), prophunt_api::ApiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod error;
pub mod job;
pub mod noise;
pub mod search;
pub mod session;
pub mod spec;

pub use decoder::{DecoderBuilder, DecoderRegistry};
pub use error::ApiError;
pub use job::{
    BasisEstimate, Event, JobKind, LerJob, LerOutcome, OptimizeJob, OptimizeOutcome, StopReason,
};
pub use noise::NoiseSpec;
pub use search::{SearchJob, SearchOutcome};
pub use session::{Session, SessionStats};
pub use spec::{BasisSelection, ExperimentSpec, ExperimentSpecBuilder, ScheduleSource};

// Re-export the budget, engine and strategy types jobs are parameterized by,
// so downstream users need only this crate.
pub use prophunt_decoders::{DecodeCache, Engine, ShotBudget};
pub use prophunt_search::StrategyKind;

// Re-export the observability layer sessions record into.
pub use prophunt_obs as obs;
pub use prophunt_obs::{Obs, Snapshot};
