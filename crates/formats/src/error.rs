//! The typed parse error shared by every format in this crate.

use std::fmt;

/// A parse (or semantic) error raised by one of the `prophunt-formats` parsers.
///
/// `line` and `column` are 1-based; `line == 0` marks a whole-input (semantic) error
/// with no specific location, and `column == 0` marks a whole-line error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line of the offending input (0 = whole input).
    pub line: usize,
    /// 1-based byte column of the offending token (0 = whole line).
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl FormatError {
    /// Creates an error at a specific line and column.
    pub fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        FormatError {
            line,
            column,
            message: message.into(),
        }
    }

    /// Creates an error covering a whole line.
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        Self::at(line, 0, message)
    }

    /// Creates a whole-input (semantic) error with no location.
    pub fn whole_input(message: impl Into<String>) -> Self {
        Self::at(0, 0, message)
    }

    /// Returns the error shifted down by `offset` lines (used when a single-line parser
    /// runs inside a multi-line document).
    pub fn offset_lines(mut self, offset: usize) -> Self {
        if self.line > 0 {
            self.line += offset;
        } else {
            self.line = offset + 1;
        }
        self
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.message),
            (line, 0) => write!(f, "line {line}: {}", self.message),
            (line, column) => write!(f, "line {line}, column {column}: {}", self.message),
        }
    }
}

impl std::error::Error for FormatError {}

/// Splits a line into whitespace-separated tokens with their 1-based byte columns.
pub(crate) fn tokens(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &line[s..]));
    }
    out
}

/// Parses an unsigned integer token, reporting `line`/`column` on failure.
pub(crate) fn parse_usize(tok: &str, line: usize, column: usize) -> Result<usize, FormatError> {
    tok.parse::<usize>().map_err(|_| {
        FormatError::at(
            line,
            column,
            format!("expected an unsigned integer, got {tok:?}"),
        )
    })
}

/// Parses a finite `f64` token, reporting `line`/`column` on failure.
pub(crate) fn parse_f64(tok: &str, line: usize, column: usize) -> Result<f64, FormatError> {
    match tok.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(FormatError::at(
            line,
            column,
            format!("expected a finite number, got {tok:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_when_present() {
        assert_eq!(
            FormatError::at(3, 7, "bad token").to_string(),
            "line 3, column 7: bad token"
        );
        assert_eq!(FormatError::at_line(2, "oops").to_string(), "line 2: oops");
        assert_eq!(FormatError::whole_input("oops").to_string(), "oops");
    }

    #[test]
    fn tokens_report_one_based_columns() {
        assert_eq!(tokens("  a bb  c"), vec![(3, "a"), (5, "bb"), (9, "c")]);
        assert!(tokens("   ").is_empty());
    }

    #[test]
    fn numeric_parsers_reject_garbage_with_location() {
        assert_eq!(parse_usize("12", 1, 1).unwrap(), 12);
        let err = parse_usize("x", 4, 9).unwrap_err();
        assert_eq!((err.line, err.column), (4, 9));
        assert!(parse_f64("nan", 1, 1).is_err());
        assert!(parse_f64("inf", 1, 1).is_err());
        assert_eq!(parse_f64("1e-3", 1, 1).unwrap(), 1e-3);
    }

    #[test]
    fn offset_lines_shifts_located_errors() {
        let e = FormatError::at(2, 5, "x").offset_lines(10);
        assert_eq!(e.line, 12);
        let e = FormatError::whole_input("x").offset_lines(10);
        assert_eq!(e.line, 11);
    }
}
