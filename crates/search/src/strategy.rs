//! The [`Strategy`] trait, the shared search context, and the built-in
//! strategy registry ([`StrategyKind`]).

use crate::{Annealing, Beam, HillClimb, MaxSatDescent};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::NoiseModel;
use prophunt_obs::Obs;
use prophunt_qec::CssCode;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// A candidate schedule offered by a strategy at the end of a round: the best
/// schedule the instance can currently vouch for, with its CNOT depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// The candidate schedule (valid for the context's code).
    pub schedule: ScheduleSpec,
    /// Its CNOT depth.
    pub depth: usize,
}

/// The portfolio's current best candidate, with full provenance: which
/// strategy produced it, from which instance slot, in which round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incumbent {
    /// The best schedule found so far.
    pub schedule: ScheduleSpec,
    /// Its CNOT depth.
    pub depth: usize,
    /// Name of the strategy that produced it ([`StrategyKind::name`], or
    /// [`crate::INITIAL_STRATEGY`] while the starting schedule still leads).
    pub strategy: &'static str,
    /// Portfolio instance slot that produced it.
    pub instance: usize,
    /// Round in which it became the incumbent (0 for the starting schedule).
    pub round: usize,
}

/// A search strategy: one arm of a [`crate::Portfolio`].
///
/// The portfolio drives every instance through the same synchronized
/// round protocol:
///
/// 1. [`Strategy::propose`] — do one round of work (a per-round `seed` derived
///    from the portfolio's [`prophunt_runtime::SeedStream`] is the **only**
///    source of randomness) and return the instance's current best candidate.
/// 2. The portfolio accepts the round's minimum-depth proposal (ties broken by
///    instance index) as the new incumbent when it improves on the old one.
/// 3. [`Strategy::observe`] — every instance sees the (possibly updated)
///    incumbent, plus whether its *own* proposal was the one accepted; what an
///    instance does with it (adopt, ignore, re-anneal) is strategy policy.
///
/// Implementations must be deterministic functions of their construction
/// arguments and the `(round, seed)` pairs they are stepped with — no
/// wall-clock, thread identity or global state — so the portfolio's
/// determinism contract holds.
pub trait Strategy: Send {
    /// Stable machine-readable name (used in events, records, CLI flags).
    fn name(&self) -> &'static str;

    /// Runs one synchronized round of search and returns the instance's
    /// current best candidate.
    fn propose(&mut self, round: usize, seed: u64) -> Proposal;

    /// Receives the portfolio incumbent after a round. `accepted` is true iff
    /// this instance's own round proposal was just accepted as the new
    /// incumbent.
    fn observe(&mut self, incumbent: &Incumbent, accepted: bool);
}

/// Tuning knobs shared by the built-in strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// Mutation proposals evaluated per instance per round (annealing / hill
    /// climbing; the beam strategy divides this budget across its beam slots).
    pub proposals_per_round: usize,
    /// Beam width of the [`Beam`] strategy.
    pub beam_width: usize,
    /// Syndrome-measurement rounds analysed by the MaxSAT-descent arm.
    pub memory_rounds: usize,
    /// Noise model the MaxSAT-descent arm builds its decoding graphs with.
    pub noise: NoiseModel,
    /// Subgraph-expansion samples per MaxSAT-descent iteration.
    pub samples_per_iteration: usize,
    /// Budget per MaxSAT solve. Enforced as a deterministic conflict budget
    /// (converted at a fixed exchange rate, as in
    /// [`prophunt::PropHuntConfig`]), so exhausting it cannot introduce
    /// machine-dependent results.
    pub maxsat_budget: Duration,
    /// Rounds without improvement before [`HillClimb`] restarts from a fresh
    /// randomized coloration.
    pub restart_stall: usize,
    /// Initial simulated-annealing temperature (in CNOT-depth units).
    pub initial_temperature: f64,
    /// Multiplicative temperature decay per round.
    pub cooling: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            proposals_per_round: 24,
            beam_width: 4,
            memory_rounds: 3,
            noise: NoiseModel::uniform_depolarizing(1e-3),
            samples_per_iteration: 20,
            maxsat_budget: Duration::from_secs(20),
            restart_stall: 2,
            initial_temperature: 1.5,
            cooling: 0.85,
        }
    }
}

/// Everything a strategy needs to know about the problem: the code, the
/// starting schedule, and the shared tuning parameters.
#[derive(Debug, Clone)]
pub struct SearchContext {
    /// The CSS code whose syndrome-measurement schedule is being searched.
    pub code: CssCode,
    /// The surface-code layout, when the code has one. Strategies that restart
    /// over permuted orderings ([`HillClimb`]) use it to draw structured
    /// corner-order restarts instead of only randomized colorations.
    pub layout: Option<prophunt_qec::surface::SurfaceLayout>,
    /// The (validated) starting schedule.
    pub initial: ScheduleSpec,
    /// Shared tuning knobs.
    pub params: SearchParams,
    /// Observability handle strategies hoist counter handles from at
    /// construction (`search.<arm>.*` names). Disabled by default; counts are
    /// functions of `(construction, round, seed)` only, so they stay on the
    /// deterministic side of the contract at any thread count.
    pub obs: Obs,
    /// Lazily computed corner-order restart family, shared across every
    /// instance built from this context (and its clones).
    corner_cache: std::sync::Arc<std::sync::OnceLock<std::sync::Arc<Vec<ScheduleSpec>>>>,
}

impl SearchContext {
    /// Creates a context. `initial` must already be validated for `code`.
    pub fn new(
        code: CssCode,
        layout: Option<prophunt_qec::surface::SurfaceLayout>,
        initial: ScheduleSpec,
        params: SearchParams,
    ) -> SearchContext {
        SearchContext {
            code,
            layout,
            initial,
            params,
            obs: Obs::disabled(),
            corner_cache: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// Attaches an observability handle (builder-style).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> SearchContext {
        self.obs = obs;
        self
    }

    /// The valid corner-order schedule family of the layout (empty when the
    /// code has none), enumerated on first use and shared by every instance —
    /// a portfolio cycling several restart-based slots pays for the 24 × 24
    /// enumeration once, not once per slot.
    pub fn corner_schedules(&self) -> std::sync::Arc<Vec<ScheduleSpec>> {
        self.corner_cache
            .get_or_init(|| {
                std::sync::Arc::new(
                    self.layout
                        .as_ref()
                        .map(|layout| crate::hillclimb::valid_corner_schedules(&self.code, layout))
                        .unwrap_or_default(),
                )
            })
            .clone()
    }
}

/// The built-in strategy registry: every strategy the portfolio can
/// instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// The paper's MaxSAT-guided greedy descent, one pipeline iteration per
    /// round ([`MaxSatDescent`]).
    MaxSatDescent,
    /// Simulated annealing over commutation-preserving schedule mutations
    /// ([`Annealing`]).
    Annealing,
    /// Greedy beam search over schedule orderings ([`Beam`]).
    Beam,
    /// Random-restart hill climbing ([`HillClimb`]).
    HillClimb,
}

impl StrategyKind {
    /// Every built-in strategy, in canonical portfolio fill order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::MaxSatDescent,
        StrategyKind::Annealing,
        StrategyKind::Beam,
        StrategyKind::HillClimb,
    ];

    /// The stable machine-readable name (also the CLI `--strategies` token).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::MaxSatDescent => "maxsat",
            StrategyKind::Annealing => "anneal",
            StrategyKind::Beam => "beam",
            StrategyKind::HillClimb => "hillclimb",
        }
    }

    /// Instantiates the strategy for one portfolio slot. `seed` is the
    /// instance's base seed (used by strategies that need construction-time
    /// randomness or an internal deterministic runtime).
    pub fn build(self, ctx: &SearchContext, seed: u64) -> Box<dyn Strategy> {
        match self {
            StrategyKind::MaxSatDescent => Box::new(MaxSatDescent::new(ctx, seed)),
            StrategyKind::Annealing => Box::new(Annealing::new(ctx)),
            StrategyKind::Beam => Box::new(Beam::new(ctx)),
            StrategyKind::HillClimb => Box::new(HillClimb::new(ctx)),
        }
    }

    /// Parses a comma-separated strategy list (`"maxsat,anneal"`); the empty
    /// string and `"all"` select every built-in strategy.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown token.
    pub fn parse_list(list: &str) -> Result<Vec<StrategyKind>, String> {
        let trimmed = list.trim();
        if trimmed.is_empty() || trimmed == "all" {
            return Ok(StrategyKind::ALL.to_vec());
        }
        trimmed
            .split(',')
            .map(|token| token.trim().parse())
            .collect()
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StrategyKind::ALL
            .into_iter()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown strategy {s:?} (expected one of: {})",
                    StrategyKind::ALL.map(StrategyKind::name).join(", ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(kind.name().parse::<StrategyKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("nope".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn parse_list_accepts_all_and_rejects_unknown_tokens() {
        assert_eq!(
            StrategyKind::parse_list("all").unwrap(),
            StrategyKind::ALL.to_vec()
        );
        assert_eq!(
            StrategyKind::parse_list("").unwrap(),
            StrategyKind::ALL.to_vec()
        );
        assert_eq!(
            StrategyKind::parse_list("beam, maxsat").unwrap(),
            vec![StrategyKind::Beam, StrategyKind::MaxSatDescent]
        );
        let err = StrategyKind::parse_list("beam,bogus").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }
}
