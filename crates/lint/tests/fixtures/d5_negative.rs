//! D5 negative: the crate root carries the attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn answer() -> u64 {
    42
}
