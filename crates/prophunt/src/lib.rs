//! PropHunt: automated optimization of quantum syndrome-measurement circuits by
//! ambiguity minimization.
//!
//! This crate is the paper's primary contribution. Starting from any valid CNOT schedule
//! for a CSS code (typically the coloration-circuit baseline), PropHunt repeatedly:
//!
//! 1. builds the circuit-level decoding graph (detector error model) of the current
//!    schedule ([`DecodingGraph`]),
//! 2. expands random connected subgraphs until they contain *ambiguity* — a logical
//!    observable not implied by the local syndrome information
//!    ([`find_ambiguous_subgraph`]),
//! 3. solves for a minimum-weight logical error inside each ambiguous subgraph with a
//!    MaxSAT formulation ([`minweight`]),
//! 4. enumerates candidate circuit changes (CNOT *reordering* and *rescheduling*) from
//!    the gates behind that logical error ([`changes`]),
//! 5. prunes candidates that break the circuit or fail to remove the ambiguity, and
//!    applies the survivors (minimum-depth tie-break) — one iteration of
//!    [`PropHunt::try_optimize`].
//!
//! The optimizer records every intermediate schedule, which both documents convergence
//! (the paper's Figure 12) and supplies the noise-amplification stages used by Hook-ZNE.
//!
//! # Example
//!
//! ```no_run
//! use prophunt::{PropHunt, PropHuntConfig};
//! use prophunt_circuit::schedule::ScheduleSpec;
//! use prophunt_qec::surface::rotated_surface_code_with_layout;
//!
//! let (code, _) = rotated_surface_code_with_layout(3);
//! let baseline = ScheduleSpec::coloration(&code);
//! let config = PropHuntConfig::quick(3);
//! let result = PropHunt::new(code, config).try_optimize(baseline)?;
//! println!("final depth: {}", result.final_depth());
//! # Ok::<(), prophunt_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambiguity;
pub mod changes;
pub mod minweight;
pub mod optimizer;

pub use ambiguity::{find_ambiguous_subgraph, AmbiguousSubgraph, DecodingGraph};
pub use changes::{CandidateChange, RescheduleSwap};
pub use minweight::{MinWeightSolution, ModelKind};
pub use optimizer::{IterationRecord, OptimizationResult, PropHunt, PropHuntConfig};
