//! `prophunt report` — render a human-readable summary of a metrics stream
//! written by `--metrics` (or any report file containing `metrics` records):
//! counter totals, cache hit rates, and histogram quantiles. With a second
//! file, also prints a diff of the deterministic counters, the gauges and the
//! histogram shapes against that baseline.

use crate::args::CliError;
use crate::common::read_file;
use prophunt_formats::parse_report;
use prophunt_formats::report::{MetricsHistogram, ReportRecord};

pub const USAGE: &str = "\
prophunt report <metrics.jsonl> [<baseline.jsonl>]

Summarizes a JSON-lines metrics file (written by the --metrics flag of
ler/optimize/search/sweep, or any report stream carrying a `metrics` record):

  * the `meta` provenance line (crate version, seed, threads, chunk size, engine)
  * counter totals — the deterministic subset, bit-identical at any thread count
  * hit rates for every `<name>.hit` / `<name>.miss` counter pair
  * gauges, and histogram count / p50 / p90 / p99 / mean (`.ns` names are
    rendered as durations)

With a second path the counters, gauges and histograms of <metrics.jsonl> are
diffed against <baseline.jsonl>: counters should match exactly across thread
counts at a fixed seed; gauges and timing histograms are expected to differ.";

/// Everything `report` reads out of one metrics file.
struct MetricsFile {
    meta: Option<(String, u64, u64, u64, String)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<MetricsHistogram>,
}

fn load(path: &str) -> Result<MetricsFile, CliError> {
    parse_metrics(path, &read_file(path)?)
}

fn parse_metrics(path: &str, text: &str) -> Result<MetricsFile, CliError> {
    let records = parse_report(text).map_err(|e| CliError::failure(format!("{path}: {e}")))?;
    let meta = records.iter().find_map(|r| match r {
        ReportRecord::Meta {
            version,
            seed,
            threads,
            chunk_size,
            engine,
            ..
        } => Some((
            version.clone(),
            *seed,
            *threads,
            *chunk_size,
            engine.clone(),
        )),
        _ => None,
    });
    // The last metrics record wins: a stream that snapshots repeatedly ends
    // with the most complete registry state.
    let metrics = records
        .iter()
        .rev()
        .find_map(|r| match r {
            ReportRecord::Metrics {
                counters,
                gauges,
                histograms,
            } => Some((counters.clone(), gauges.clone(), histograms.clone())),
            _ => None,
        })
        .ok_or_else(|| {
            CliError::failure(format!(
                "{path}: no metrics record found (was this written with --metrics?)"
            ))
        })?;
    Ok(MetricsFile {
        meta,
        counters: metrics.0,
        gauges: metrics.1,
        histograms: metrics.2,
    })
}

/// Percentage rates derived from the deterministic counters: one
/// `<prefix> hit rate` per `<prefix>.hit` / `<prefix>.miss` sibling pair
/// (session caches, the frames-engine syndrome-dedup cache), plus the batch
/// decode pipeline's BP convergence rate — the fraction of non-trivial
/// distinct syndromes min-sum BP resolved without the OSD-0 fallback
/// (`ler.decode.bp.converged` out of converged + `ler.decode.osd.calls`).
///
/// Derived from deterministic inputs, these rates are themselves bit-identical
/// at any thread count for a fixed (seed, chunk_size, engine), so the diff
/// mode treats them like counters: any drift is a real behavior change.
fn derived_rates(counters: &[(String, u64)]) -> Vec<(String, f64)> {
    let lookup = |name: &str| counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let mut rates = Vec::new();
    for (name, hits) in counters {
        let Some(prefix) = name.strip_suffix(".hit") else {
            continue;
        };
        let misses = lookup(&format!("{prefix}.miss")).unwrap_or(0);
        let total = hits + misses;
        if total > 0 {
            rates.push((
                format!("{prefix} hit rate"),
                100.0 * *hits as f64 / total as f64,
            ));
        }
    }
    if let Some(converged) = lookup("ler.decode.bp.converged") {
        let osd = lookup("ler.decode.osd.calls").unwrap_or(0);
        let total = converged + osd;
        if total > 0 {
            rates.push((
                "ler.decode.bp convergence rate".into(),
                100.0 * converged as f64 / total as f64,
            ));
        }
    }
    rates
}

/// Formats a value that may be a duration: `.ns`-suffixed instruments render
/// as human-readable times, everything else as a plain count.
fn fmt_value(name: &str, v: f64) -> String {
    if !name.ends_with(".ns") {
        return format!("{v:.0}");
    }
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

fn print_summary(path: &str, file: &MetricsFile) {
    println!("{path}");
    if let Some((version, seed, threads, chunk_size, engine)) = &file.meta {
        let engine = if engine.is_empty() { "-" } else { engine };
        println!(
            "  meta: v{version} seed={seed} threads={threads} chunk_size={chunk_size} \
             engine={engine}"
        );
    }
    if !file.counters.is_empty() {
        println!("  counters (deterministic at fixed seed/chunk-size):");
        for (name, value) in &file.counters {
            println!("    {name:<36} {value:>14}");
        }
        for (name, rate) in derived_rates(&file.counters) {
            println!("    {name:<36} {rate:>13.1}%");
        }
    }
    if !file.gauges.is_empty() {
        println!("  gauges:");
        for (name, value) in &file.gauges {
            println!("    {name:<36} {value:>14}");
        }
    }
    if !file.histograms.is_empty() {
        println!(
            "  histograms: {:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "p50", "p90", "p99", "mean"
        );
        for h in &file.histograms {
            println!(
                "    {:<36} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.name,
                h.count,
                fmt_value(&h.name, h.quantile(0.5) as f64),
                fmt_value(&h.name, h.quantile(0.9) as f64),
                fmt_value(&h.name, h.quantile(0.99) as f64),
                fmt_value(&h.name, h.mean()),
            );
        }
    }
}

fn print_diff(current: &MetricsFile, baseline: &MetricsFile) {
    println!("diff (current vs baseline):");
    let mut names: Vec<&String> = current
        .counters
        .iter()
        .chain(baseline.counters.iter())
        .map(|(n, _)| n)
        .collect();
    names.sort();
    names.dedup();
    let value_in = |file: &MetricsFile, name: &str| {
        file.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let mut identical = 0usize;
    for name in names {
        let (a, b) = (value_in(current, name), value_in(baseline, name));
        if a == b {
            identical += 1;
        } else {
            println!(
                "  counter {name:<28} {b:>12} -> {a:>12} ({:+})",
                a as i128 - b as i128
            );
        }
    }
    println!("  {identical} counters identical");
    // Derived rates are pure functions of the counters, so like the counters
    // they must agree across thread counts at a fixed (seed, chunk_size,
    // engine); a drifting hit or convergence rate is a real behavior change.
    let current_rates = derived_rates(&current.counters);
    let baseline_rates = derived_rates(&baseline.counters);
    let rate_in = |rates: &[(String, f64)], name: &str| {
        rates.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let mut rates_identical = 0usize;
    for (name, a) in &current_rates {
        match rate_in(&baseline_rates, name) {
            Some(b) if b == *a => rates_identical += 1,
            Some(b) => {
                println!(
                    "  rate    {name:<28} {b:>11.1}% -> {a:>11.1}% ({:+.1}pp)",
                    a - b
                )
            }
            None => println!("  rate    {name:<28} {:>12} -> {a:>11.1}%", "-"),
        }
    }
    for (name, b) in &baseline_rates {
        if rate_in(&current_rates, name).is_none() {
            println!("  rate    {name:<28} {b:>11.1}% -> {:>12}", "-");
        }
    }
    println!("  {rates_identical} derived rates identical");
    // Gauge deltas, mirroring the counter loop. Gauges are thread-dependent
    // (occupancy, peaks), so differences are expected — the diff makes them
    // visible instead of silently dropping the class.
    let mut gauge_names: Vec<&String> = current
        .gauges
        .iter()
        .chain(baseline.gauges.iter())
        .map(|(n, _)| n)
        .collect();
    gauge_names.sort();
    gauge_names.dedup();
    let gauge_in = |file: &MetricsFile, name: &str| {
        file.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let mut gauges_identical = 0usize;
    for name in gauge_names {
        let (a, b) = (gauge_in(current, name), gauge_in(baseline, name));
        if a == b {
            gauges_identical += 1;
        } else {
            println!(
                "  gauge   {name:<28} {b:>12} -> {a:>12} ({:+})",
                a as i128 - b as i128
            );
        }
    }
    println!("  {gauges_identical} gauges identical");
    for h in &current.histograms {
        let Some(base) = baseline.histograms.iter().find(|b| b.name == h.name) else {
            continue;
        };
        println!(
            "  hist {:<31} count {} -> {}, mean {} -> {}",
            h.name,
            base.count,
            h.count,
            fmt_value(&h.name, base.mean()),
            fmt_value(&h.name, h.mean()),
        );
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    // `report` takes positional paths, not `--flag value` pairs.
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(CliError::usage(format!(
            "report takes file paths, not flags (got {flag:?})"
        )));
    }
    let (path, baseline_path) = match args {
        [path] => (path, None),
        [path, baseline] => (path, Some(baseline)),
        _ => {
            return Err(CliError::usage(
                "report needs one metrics file (and optionally a baseline to diff against)",
            ))
        }
    };
    let current = load(path)?;
    print_summary(path, &current);
    if let Some(baseline_path) = baseline_path {
        let baseline = load(baseline_path)?;
        println!();
        print_summary(baseline_path, &baseline);
        println!();
        print_diff(&current, &baseline);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A golden `--metrics` stream from a frames-engine LER run: the meta
    /// provenance line plus one metrics record carrying the batch decode
    /// pipeline's deterministic counters (4096 shots: 781 all-zero syndromes,
    /// 3315 non-trivial of which 352 were chunk-local cache hits, and of the
    /// 2963 decoded distinct syndromes 2170 converged in BP while 793 fell
    /// through to OSD-0).
    const GOLDEN_METRICS: &str = concat!(
        r#"{"type":"meta","version":"0.1.0","seed":7,"threads":8,"chunk_size":64,"#,
        r#""engine":"frames"}"#,
        "\n",
        r#"{"type":"metrics","counters":{"ler.chunks":64,"ler.shots":4096,"#,
        r#""ler.failures":21,"ler.decode.zero":781,"ler.decode.cache.hit":352,"#,
        r#""ler.decode.cache.miss":2963,"ler.decode.bp.converged":2170,"#,
        r#""ler.decode.osd.calls":793,"session.dem.hit":3,"session.dem.miss":1},"#,
        r#""gauges":{},"histograms":[]}"#,
        "\n",
    );

    #[test]
    fn derived_rates_are_pinned_on_the_golden_metrics_fixture() {
        let file = parse_metrics("golden.jsonl", GOLDEN_METRICS).expect("fixture parses");
        assert_eq!(file.meta, Some(("0.1.0".into(), 7, 8, 64, "frames".into())));
        let rates = derived_rates(&file.counters);
        // One rate per .hit/.miss pair (in counter order) plus the BP
        // convergence rate, each an exact function of the counters.
        assert_eq!(rates.len(), 3);
        let rate = |name: &str| {
            rates
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing derived rate {name}"))
                .1
        };
        assert_eq!(
            rate("ler.decode.cache hit rate"),
            100.0 * 352.0 / (352.0 + 2963.0)
        );
        assert_eq!(rate("session.dem hit rate"), 100.0 * 3.0 / 4.0);
        assert_eq!(
            rate("ler.decode.bp convergence rate"),
            100.0 * 2170.0 / (2170.0 + 793.0)
        );
    }

    #[test]
    fn bp_convergence_rate_needs_batch_counters() {
        // A scalar-engine stream has no ler.decode.* counters: no convergence
        // rate row, and no division by an all-zero total.
        let counters = vec![("ler.shots".to_string(), 4096u64)];
        assert!(derived_rates(&counters).is_empty());
        let zeroed = vec![
            ("ler.decode.bp.converged".to_string(), 0u64),
            ("ler.decode.osd.calls".to_string(), 0u64),
        ];
        assert!(derived_rates(&zeroed).is_empty());
    }
}
