//! Linear-search (LSU) MaxSAT on top of the CDCL solver.
//!
//! PropHunt's minimum-weight logical-error models use unit soft clauses only (each error
//! variable prefers to be false), so unweighted MaxSAT with a cardinality bound over the
//! violated softs is exactly what is needed. The driver repeatedly solves the hard
//! formula augmented with "at most `cost − 1` violated softs" until it proves optimality
//! or exhausts its conflict budget — the same upper-bounding strategy Loandra's
//! linear search uses.
//!
//! Termination is governed by a deterministic [`SolveBudget`] measured in SAT-solver
//! conflicts, never by wall-clock time: the same instance with the same budget performs
//! exactly the same search everywhere. The convenience [`MaxSatSolver::solve`] entry
//! point still accepts a `Duration` for API compatibility, but maps it onto conflicts
//! through the fixed [`CONFLICTS_PER_BUDGET_SECOND`] exchange rate.

use crate::cnf::{CnfBuilder, Lit, Var};
use crate::solver::{SolveBudget, SolveResult};
use std::time::{Duration, Instant};

/// Exchange rate used to map a wall-clock `Duration` budget onto a deterministic
/// conflict budget: one "budget second" buys this many SAT-solver conflicts.
///
/// The constant is calibrated so that the paper-scale budgets behave as intended on
/// the subgraph models (a few hundred variables, ~1k clauses): the 20 s "quick"
/// budget buys enough conflicts to close every ambiguous subgraph the test
/// fixtures produce, while the global circuit-level models still exhaust the budget
/// exactly as they do in the paper's Table 2. Because the mapping is a fixed
/// constant — not a measurement — a budget of `Duration::from_secs(20)` means the
/// *same* amount of search on every machine.
pub const CONFLICTS_PER_BUDGET_SECOND: u64 = 50_000;

/// Converts a wall-clock-style budget into its deterministic conflict equivalent.
pub fn duration_to_conflicts(budget: Duration) -> u64 {
    // Millisecond granularity keeps sub-second test budgets meaningful.
    (budget.as_millis() as u64).saturating_mul(CONFLICTS_PER_BUDGET_SECOND) / 1000
}

/// Size and effort statistics of a MaxSAT solve, matching the columns of the paper's
/// Table 2 (variables, hard clauses, soft clauses, wall-clock time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxSatStats {
    /// Total number of variables in the final CNF (including auxiliaries).
    pub num_variables: usize,
    /// Number of hard clauses (before cardinality strengthening clauses are added).
    pub num_hard_clauses: usize,
    /// Number of soft clauses.
    pub num_soft_clauses: usize,
    /// Wall-clock time spent solving. Reported for Table 2 parity only; it never
    /// influences the search (see [`SolveBudget`]), so it may differ across machines
    /// while every other field is bit-identical.
    pub wall_time: Duration,
    /// Total conflicts across all SAT calls (search effort proxy).
    pub conflicts: u64,
    /// Number of SAT-solver invocations performed by the linear search.
    pub iterations: usize,
}

/// The outcome of a MaxSAT solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxSatOutcome {
    /// An optimal model was found.
    Optimal {
        /// Variable assignment (indexed by variable).
        model: Vec<bool>,
        /// Number of violated soft clauses.
        cost: usize,
    },
    /// The conflict budget was exhausted after at least one model was found; the
    /// incumbent is returned but may not be optimal.
    Feasible {
        /// Best variable assignment found.
        model: Vec<bool>,
        /// Number of violated soft clauses in the incumbent.
        cost: usize,
    },
    /// The hard clauses are unsatisfiable.
    Unsatisfiable,
    /// The conflict budget was exhausted before any model was found.
    Timeout,
}

impl MaxSatOutcome {
    /// Returns the cost of the returned model, if any.
    pub fn cost(&self) -> Option<usize> {
        match self {
            MaxSatOutcome::Optimal { cost, .. } | MaxSatOutcome::Feasible { cost, .. } => {
                Some(*cost)
            }
            _ => None,
        }
    }

    /// Returns the model, if any.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            MaxSatOutcome::Optimal { model, .. } | MaxSatOutcome::Feasible { model, .. } => {
                Some(model)
            }
            _ => None,
        }
    }

    /// Returns `true` if the outcome is provably optimal.
    pub fn is_optimal(&self) -> bool {
        matches!(self, MaxSatOutcome::Optimal { .. })
    }
}

/// An unweighted partial MaxSAT solver (hard CNF + unit soft clauses).
#[derive(Debug, Clone)]
pub struct MaxSatSolver {
    hard: CnfBuilder,
    soft: Vec<Lit>,
    last_stats: Option<MaxSatStats>,
}

impl MaxSatSolver {
    /// Creates a MaxSAT instance whose hard constraints are the clauses of `hard`.
    pub fn new(hard: CnfBuilder) -> Self {
        MaxSatSolver {
            hard,
            soft: Vec::new(),
            last_stats: None,
        }
    }

    /// Adds a unit soft clause preferring `lit` to be true.
    pub fn add_soft(&mut self, lit: Lit) {
        self.soft.push(lit);
    }

    /// Adds a unit soft clause preferring variable `var` to be false — the form used by
    /// the paper's formulation (`E_i = False` soft constraints).
    pub fn add_soft_false(&mut self, var: Var) {
        self.soft.push(var.negative());
    }

    /// Returns the number of soft clauses.
    pub fn num_soft(&self) -> usize {
        self.soft.len()
    }

    /// Returns the statistics of the most recent [`MaxSatSolver::solve`] call.
    pub fn last_stats(&self) -> Option<MaxSatStats> {
        self.last_stats
    }

    /// Solves the instance within a `Duration`-denominated budget.
    ///
    /// The duration is **not** a wall-clock deadline: it is converted to a
    /// deterministic conflict budget via [`duration_to_conflicts`] and passed to
    /// [`MaxSatSolver::solve_budget`]. Two calls with the same instance and budget
    /// return identical outcomes (and identical [`MaxSatStats::conflicts`]) on any
    /// machine, regardless of load.
    pub fn solve(&mut self, budget: Duration) -> MaxSatOutcome {
        self.solve_budget(SolveBudget::Conflicts(duration_to_conflicts(budget)))
    }

    /// Solves the instance within an explicit deterministic conflict budget.
    ///
    /// The budget is shared across all SAT calls of the linear search: each
    /// iteration receives whatever remains after the conflicts already spent, so the
    /// whole MaxSAT solve — not just each inner SAT call — is bounded and
    /// reproducible.
    pub fn solve_budget(&mut self, budget: SolveBudget) -> MaxSatOutcome {
        // lint: allow(no-wall-clock) — timing-only: feeds the wall_time stat for
        // Table 2 reporting; termination is decided purely by the conflict budget.
        let start = Instant::now();
        let num_hard_clauses = self.hard.num_clauses();
        let num_soft_clauses = self.soft.len();
        let mut conflicts = 0u64;
        let mut iterations = 0usize;

        // Build the working formula: hard clauses + totalizer over soft-violation
        // indicators. The totalizer outputs let the linear search tighten the bound by
        // adding a single unit clause per iteration.
        let mut formula = self.hard.clone();
        let violation_outputs: Option<Vec<Lit>> = if self.soft.is_empty() {
            None
        } else {
            let violated: Vec<Lit> = self.soft.iter().map(|&l| !l).collect();
            Some(formula.totalizer(&violated))
        };

        let cost_of = |model: &[bool]| -> usize {
            self.soft
                .iter()
                .filter(|l| !l.apply(model[l.var().index()]))
                .count()
        };

        let mut best: Option<(Vec<bool>, usize)> = None;
        let mut bounds: Vec<Lit> = Vec::new();
        let outcome = loop {
            let remaining = budget.minus(conflicts);
            if iterations > 0 && remaining.is_exhausted() {
                break match best.take() {
                    Some((model, cost)) => MaxSatOutcome::Feasible { model, cost },
                    None => MaxSatOutcome::Timeout,
                };
            }
            iterations += 1;
            let mut working = formula.clone();
            for &b in &bounds {
                working.add_unit(b);
            }
            let mut solver = working.build_solver();
            let result = solver.solve(remaining);
            conflicts += solver.num_conflicts();
            match result {
                SolveResult::Sat(model) => {
                    let cost = cost_of(&model);
                    best = Some((model, cost));
                    if cost == 0 {
                        let (model, cost) = best.expect("just set");
                        break MaxSatOutcome::Optimal { model, cost };
                    }
                    // Strengthen: at most cost - 1 violations.
                    let outputs = violation_outputs
                        .as_ref()
                        .expect("soft clauses exist when cost > 0");
                    bounds.push(!outputs[cost - 1]);
                }
                SolveResult::Unsat => {
                    break match best.take() {
                        Some((model, cost)) => MaxSatOutcome::Optimal { model, cost },
                        None => MaxSatOutcome::Unsatisfiable,
                    };
                }
                SolveResult::Unknown => {
                    break match best.take() {
                        Some((model, cost)) => MaxSatOutcome::Feasible { model, cost },
                        None => MaxSatOutcome::Timeout,
                    };
                }
            }
        };

        self.last_stats = Some(MaxSatStats {
            num_variables: formula.num_vars(),
            num_hard_clauses,
            num_soft_clauses,
            wall_time: start.elapsed(),
            conflicts,
            iterations,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn minimises_true_variables_under_parity_constraint() {
        // XOR of 5 variables must be 1; minimum cost is a single true variable.
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(5);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        b.add_xor_constraint(&lits, true);
        let mut solver = MaxSatSolver::new(b);
        for v in &vars {
            solver.add_soft_false(*v);
        }
        let outcome = solver.solve(Duration::from_secs(5));
        assert!(outcome.is_optimal());
        assert_eq!(outcome.cost(), Some(1));
        let model = outcome.model().unwrap();
        assert_eq!(vars.iter().filter(|v| model[v.index()]).count(), 1);
        let stats = solver.last_stats().unwrap();
        assert_eq!(stats.num_soft_clauses, 5);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn unsat_hard_clauses_reported() {
        let mut b = CnfBuilder::new();
        let v = b.new_var();
        b.add_unit(v.positive());
        b.add_unit(v.negative());
        let mut solver = MaxSatSolver::new(b);
        assert_eq!(
            solver.solve(Duration::from_secs(1)),
            MaxSatOutcome::Unsatisfiable
        );
    }

    #[test]
    fn zero_cost_when_soft_clauses_are_satisfiable() {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(4);
        // Hard: x0 or x1 (can be satisfied with everything false except... no: needs one
        // true). Softs prefer x2, x3 false, which costs nothing.
        b.add_clause(&[vars[0].positive(), vars[1].positive()]);
        let mut solver = MaxSatSolver::new(b);
        solver.add_soft_false(vars[2]);
        solver.add_soft_false(vars[3]);
        let outcome = solver.solve(Duration::from_secs(1));
        assert_eq!(outcome.cost(), Some(0));
        assert!(outcome.is_optimal());
    }

    /// Brute-force optimum for cross-validation.
    fn brute_force_optimum(num_vars: usize, clauses: &[Vec<Lit>], soft: &[Lit]) -> Option<usize> {
        let mut best = None;
        for mask in 0u64..(1 << num_vars) {
            let values: Vec<bool> = (0..num_vars).map(|v| (mask >> v) & 1 == 1).collect();
            if clauses
                .iter()
                .all(|c| c.iter().any(|l| l.apply(values[l.var().index()])))
            {
                let cost = soft
                    .iter()
                    .filter(|l| !l.apply(values[l.var().index()]))
                    .count();
                best = Some(best.map_or(cost, |b: usize| b.min(cost)));
            }
        }
        best
    }

    #[test]
    fn random_instances_match_brute_force_optimum() {
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..30 {
            let num_vars = rng.gen_range(3..8);
            let mut b = CnfBuilder::new();
            let vars = b.new_vars(num_vars);
            let mut clauses = Vec::new();
            for _ in 0..rng.gen_range(2..10) {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(vars[rng.gen_range(0..num_vars)], rng.gen_bool(0.5)))
                    .collect();
                b.add_clause(&clause);
                clauses.push(clause);
            }
            let soft: Vec<Lit> = vars.iter().map(|v| v.negative()).collect();
            let expected = brute_force_optimum(num_vars, &clauses, &soft);
            let mut solver = MaxSatSolver::new(b);
            for v in &vars {
                solver.add_soft_false(*v);
            }
            let outcome = solver.solve(Duration::from_secs(5));
            match expected {
                Some(opt) => {
                    assert!(outcome.is_optimal(), "case {case}: expected optimal");
                    assert_eq!(outcome.cost(), Some(opt), "case {case}: wrong optimum");
                }
                None => assert_eq!(outcome, MaxSatOutcome::Unsatisfiable, "case {case}"),
            }
        }
    }

    /// A moderately hard parity instance used by the budget tests below.
    fn hard_parity_instance() -> MaxSatSolver {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(14);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        b.add_xor_constraint(&lits, true);
        b.add_xor_constraint(&lits[0..7], true);
        b.add_xor_constraint(&lits[7..14], false);
        let mut solver = MaxSatSolver::new(b);
        for v in &vars {
            solver.add_soft_false(*v);
        }
        solver
    }

    #[test]
    fn repeated_solves_are_bit_identical() {
        // The determinism pin for the conflict-budget rework: two solves of the same
        // instance with the same budget must do exactly the same search — identical
        // outcome, cost, model, conflict count and iteration count. Under the old
        // wall-clock deadline this could differ between runs on a loaded machine.
        let run = || {
            let mut solver = hard_parity_instance();
            let outcome = solver.solve_budget(SolveBudget::Conflicts(100_000));
            let stats = solver.last_stats().unwrap();
            (outcome, stats.conflicts, stats.iterations)
        };
        let (outcome_a, conflicts_a, iterations_a) = run();
        let (outcome_b, conflicts_b, iterations_b) = run();
        assert_eq!(outcome_a, outcome_b);
        assert_eq!(conflicts_a, conflicts_b);
        assert_eq!(iterations_a, iterations_b);
        assert!(outcome_a.is_optimal());
        assert_eq!(outcome_a.cost(), Some(1));
    }

    #[test]
    fn duration_budget_maps_to_conflicts_deterministically() {
        assert_eq!(
            duration_to_conflicts(Duration::from_secs(1)),
            CONFLICTS_PER_BUDGET_SECOND
        );
        assert_eq!(
            duration_to_conflicts(Duration::from_millis(100)),
            CONFLICTS_PER_BUDGET_SECOND / 10
        );
        // The Duration entry point is just sugar over the conflict budget.
        let mut via_duration = hard_parity_instance();
        let out_d = via_duration.solve(Duration::from_secs(2));
        let mut via_conflicts = hard_parity_instance();
        let out_c = via_conflicts.solve_budget(SolveBudget::Conflicts(duration_to_conflicts(
            Duration::from_secs(2),
        )));
        assert_eq!(out_d, out_c);
        assert_eq!(
            via_duration.last_stats().unwrap().conflicts,
            via_conflicts.last_stats().unwrap().conflicts
        );
    }

    /// An unsatisfiable pigeonhole instance: `pigeons` pigeons into `pigeons - 1`
    /// holes. Refuting it needs exponentially many conflicts, so a small budget is
    /// guaranteed to run out before a verdict.
    fn pigeonhole_instance(pigeons: usize) -> MaxSatSolver {
        let holes = pigeons - 1;
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(pigeons * holes);
        let at = |p: usize, h: usize| vars[p * holes + h];
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| at(p, h).positive()).collect();
            b.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    b.add_clause(&[at(p1, h).negative(), at(p2, h).negative()]);
                }
            }
        }
        let mut solver = MaxSatSolver::new(b);
        for v in &vars {
            solver.add_soft_false(*v);
        }
        solver
    }

    #[test]
    fn exhausted_budget_reports_timeout_deterministically() {
        // The hard clauses are an unsatisfiable pigeonhole formula whose refutation
        // needs far more than 10 conflicts, so the budget must run out — and the
        // exhausted search must look identical across runs.
        let run = || {
            let mut solver = pigeonhole_instance(8);
            let outcome = solver.solve_budget(SolveBudget::Conflicts(10));
            (outcome, solver.last_stats().unwrap().conflicts)
        };
        let (outcome_a, conflicts_a) = run();
        let (outcome_b, conflicts_b) = run();
        assert_eq!(outcome_a, MaxSatOutcome::Timeout);
        assert_eq!(outcome_a, outcome_b);
        assert_eq!(conflicts_a, conflicts_b);
    }

    #[test]
    fn unlimited_budget_always_reaches_a_verdict() {
        let mut solver = hard_parity_instance();
        let outcome = solver.solve_budget(SolveBudget::Unlimited);
        assert!(outcome.is_optimal());
    }

    #[test]
    fn stats_record_model_size() {
        let mut b = CnfBuilder::new();
        let vars = b.new_vars(6);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        b.add_xor_constraint(&lits, false);
        let hard_clauses = b.num_clauses();
        let mut solver = MaxSatSolver::new(b);
        for v in &vars {
            solver.add_soft_false(*v);
        }
        let outcome = solver.solve(Duration::from_secs(5));
        assert_eq!(outcome.cost(), Some(0));
        let stats = solver.last_stats().unwrap();
        assert_eq!(stats.num_hard_clauses, hard_clauses);
        assert_eq!(stats.num_soft_clauses, 6);
        assert!(stats.num_variables >= 6);
        assert!(stats.wall_time < Duration::from_secs(5));
    }
}
