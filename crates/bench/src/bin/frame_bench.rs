//! Scalar vs bit-parallel frame-engine LER throughput on the Table 1 code suite.
//!
//! This is the bench behind the frame engine's acceptance claim. For every
//! benchmark code it runs the same fixed shot budget through
//! [`estimate_with_budget_engine`] twice — once with [`Engine::Scalar`] (one
//! sampled shot, one `decode` call at a time) and once with [`Engine::Frames`]
//! (64 shots per word: `sample_frames` → `transpose_lane_words` →
//! `decode_batch`) — at the Table 1 operating point (p = 1e-3) with the
//! production decoder per family: union-find on the matchable surface codes,
//! BP+OSD on the LDPC codes.
//!
//! What the frame engine can and cannot speed up: it eliminates per-shot
//! sampling cost (geometric-skip word sampling), per-shot allocation, and
//! per-shot scratch resets — so codes whose scalar path is dominated by those
//! overheads (the union-find surface rows) gain 5-10x. On the LDPC rows its
//! decode stage is the three-layer batch pipeline: the zero-syndrome fast
//! path, the per-chunk syndrome-dedup cache (each distinct syndrome decoded
//! once, fanned back out in first-occurrence order), and the
//! structure-of-arrays lane-parallel BP core with convergence-based lane
//! retirement plus the reused-workspace eliminator-matrix OSD-0 for the
//! non-converged residue. All three layers are bit-identity-preserving, so
//! every layer's win is bounded by the decode *arithmetic* both engines
//! share: at the Table 1 operating point `bb_72_12`'s chunks contain almost
//! no repeated syndromes (the row reports `distinct_syndromes`), min-sum BP
//! plus OSD dominate both engines, and the row — with it the LDPC and suite
//! aggregates — is Amdahl-capped near ~1.7-2x. The per-bucket floors in
//! [`BUCKET_GATES`] are set at that honest level (with headroom for run-to-
//! run machine variance); the headline gate remains the surface (union-find)
//! sub-aggregate `>= 5x`.
//!
//! The two engines lay out the per-chunk RNG stream differently (shot-major vs
//! mechanism-major), so their failure counts legitimately differ; the
//! correctness gate is *same-frames decode parity*: on identical sampled error
//! frames, the frame pipeline's per-shot predictions — and hence its failure
//! count — must equal the scalar `decode` path's exactly. The bin asserts that
//! for every code and aborts loudly otherwise (this is the CI smoke
//! assertion). The committed `BENCH_frames.json` records the full-profile run;
//! `PROPHUNT_SMOKE=1` trims the shot budget and skips the timing gates (the
//! parity assertion always runs).

use prophunt_bench::{benchmark_suite, runtime_config_from_env, stage_seed};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{
    decode_shots_cached, estimate_with_budget_engine, BpOsdDecoder, DecodeCache, Decoder, Engine,
    ShotBudget, UnionFindDecoder,
};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{write_report, Json};
use prophunt_gf2::transpose_lane_words;
use prophunt_obs::Obs;
use prophunt_runtime::Runtime;
use std::time::{Duration, Instant};

/// The per-bucket speedup floors the full profile is gated on, in one place.
/// The surface (union-find) sub-aggregate is the headline: the frame engine
/// removes that family's dominant per-shot costs outright. The LDPC and
/// whole-suite aggregates are capped by `bb_72_12`'s BP+OSD arithmetic —
/// bit-identical work in both engines — so their floors are set at the
/// measured honest level minus headroom for machine variance, not at the
/// surface headline.
const BUCKET_GATES: [(usize, &str, f64); 3] = [
    (SURFACE, "surface (uf)", 5.0),
    (LDPC, "ldpc (bposd)", 1.5),
    (SUITE, "suite", 1.5),
];

/// Every per-code row must at least not regress against the scalar engine.
const PER_CODE_FLOOR: f64 = 1.0;

/// Aggregation-bucket indices into the wall-clock totals.
const SURFACE: usize = 0;
const LDPC: usize = 1;
const SUITE: usize = 2;

struct EngineRun {
    failures: usize,
    wall: Duration,
}

struct FrameRow {
    code: String,
    p: f64,
    shots: usize,
    scalar: EngineRun,
    frames: EngineRun,
    parity_shots: usize,
    parity_failures: usize,
    /// Distinct non-zero syndromes the frames engine's chunks decoded
    /// (`ler.decode.cache.miss` over the full budget) — how much per-chunk
    /// dedup headroom this code has at the benchmarked operating point.
    distinct_syndromes: u64,
    /// Fraction of shots short-circuited by the zero-syndrome fast path.
    zero_fraction: f64,
}

impl FrameRow {
    fn scalar_sps(&self) -> f64 {
        self.shots as f64 / self.scalar.wall.as_secs_f64().max(1e-12)
    }

    fn frames_sps(&self) -> f64 {
        self.shots as f64 / self.frames.wall.as_secs_f64().max(1e-12)
    }

    fn speedup(&self) -> f64 {
        self.scalar.wall.as_secs_f64() / self.frames.wall.as_secs_f64().max(1e-12)
    }

    fn to_record(&self) -> ReportRecord {
        ReportRecord::Table {
            name: "frame_bench".into(),
            fields: vec![
                ("code".into(), Json::Str(self.code.clone())),
                ("p".into(), Json::Float(self.p)),
                ("shots".into(), Json::UInt(self.shots as u64)),
                (
                    "scalar_failures".into(),
                    Json::UInt(self.scalar.failures as u64),
                ),
                (
                    "frames_failures".into(),
                    Json::UInt(self.frames.failures as u64),
                ),
                (
                    "scalar_shots_per_sec".into(),
                    Json::Float(self.scalar_sps()),
                ),
                (
                    "frames_shots_per_sec".into(),
                    Json::Float(self.frames_sps()),
                ),
                ("speedup".into(), Json::Float(self.speedup())),
                ("parity_shots".into(), Json::UInt(self.parity_shots as u64)),
                (
                    "parity_failures".into(),
                    Json::UInt(self.parity_failures as u64),
                ),
                // Additive batch-pipeline profile fields (see FORMATS.md):
                // parsers that predate them ignore unknown table fields.
                (
                    "distinct_syndromes".into(),
                    Json::UInt(self.distinct_syndromes),
                ),
                ("zero_fraction".into(), Json::Float(self.zero_fraction)),
            ],
        }
    }
}

/// Same-frames decode parity: sample `shots` error frames once, then decode
/// the identical syndromes through the scalar per-shot path, the decoder's
/// raw `decode_batch`, and the full batch pipeline ([`decode_shots_cached`])
/// with the syndrome-dedup cache on and off. Returns the (common) failure
/// count; panics when any per-shot prediction — or the resulting failure
/// count — differs anywhere in the stack.
fn assert_same_frames_parity(
    name: &str,
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
) -> usize {
    let mut sampler = dem.sampler(seed);
    let mut det_frames = vec![0u64; dem.num_detectors()];
    let mut obs_frames = vec![0u64; dem.num_observables()];
    let mut scalar_failures = 0usize;
    let mut batch_failures = 0usize;
    let mut remaining = shots;
    while remaining > 0 {
        let lanes = remaining.min(64);
        sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
        let det_shots = transpose_lane_words(&det_frames, lanes);
        let obs_shots = transpose_lane_words(&obs_frames, lanes);
        let batch = decoder.decode_batch(&det_shots);
        let (cached, _) = decode_shots_cached(decoder, &det_shots, DecodeCache::On);
        let (uncached, _) = decode_shots_cached(decoder, &det_shots, DecodeCache::Off);
        for (lane, (shot, observed)) in det_shots.iter().zip(&obs_shots).enumerate() {
            let scalar = decoder.decode(shot);
            assert_eq!(
                scalar, batch[lane],
                "{name}: scalar decode and decode_batch disagree on identical frames \
                 (seed {seed}, lane {lane})"
            );
            assert_eq!(
                scalar, cached[lane],
                "{name}: the dedup cache changed a prediction (seed {seed}, lane {lane})"
            );
            assert_eq!(
                scalar, uncached[lane],
                "{name}: the cache-off pipeline changed a prediction \
                 (seed {seed}, lane {lane})"
            );
            if &scalar != observed {
                scalar_failures += 1;
            }
            if &batch[lane] != observed {
                batch_failures += 1;
            }
        }
        remaining -= lanes;
    }
    assert_eq!(
        scalar_failures, batch_failures,
        "{name}: engines must report identical failure counts on identical frames"
    );
    scalar_failures
}

fn main() {
    let smoke = std::env::var("PROPHUNT_SMOKE").is_ok();
    let runtime = runtime_config_from_env();
    let shots = if smoke { 256 } else { 4096 };
    let parity_shots = if smoke { 128 } else { 256 };
    println!("LER estimation throughput: bit-parallel frame engine vs scalar engine");
    println!(
        "  {shots} shots per code and engine, {} threads, chunk {}, seed {} \
         (PROPHUNT_SMOKE=1 trims the budget)",
        runtime.threads, runtime.chunk_size, runtime.seed
    );
    println!(
        "{:<14} {:>7} {:>6} {:>12} {:>12} {:>9}  parity",
        "code", "p", "shots", "scalar sh/s", "frames sh/s", "speedup"
    );
    let mut records = Vec::new();
    // (scalar wall, frames wall, shots) per aggregation bucket.
    let mut totals: [(Duration, Duration, usize); 3] = Default::default();
    for (stage, bench) in benchmark_suite(true).into_iter().enumerate() {
        // The Table 1 operating point (p = 1e-3), with the production decoder
        // for each family: union-find on the matchable surface codes, BP+OSD
        // on the LDPC codes. This is the workload `tab01_codes` actually runs,
        // so the measured shots/sec is the real campaign hot path.
        let p = 1e-3;
        let schedule = bench
            .hand_designed
            .clone()
            .unwrap_or_else(|| ScheduleSpec::coloration(&bench.code));
        let exp = MemoryExperiment::build(&bench.code, &schedule, bench.rounds, MemoryBasis::Z)
            .expect("benchmark schedule must be valid for its code");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder: Box<dyn Decoder> = if bench.code.name().starts_with("surface") {
            Box::new(UnionFindDecoder::new(&dem))
        } else {
            Box::new(BpOsdDecoder::new(&dem))
        };
        let decoder = &*decoder;
        let seed = stage_seed(&runtime, 80 + stage as u64);

        // Same-frames decode parity: the deterministic gate, always on.
        let parity_failures = assert_same_frames_parity(
            bench.code.name(),
            &dem,
            decoder,
            parity_shots,
            stage_seed(&runtime, 90 + stage as u64),
        );

        let run = |engine: Engine| {
            let rt = Runtime::new(runtime);
            let t = Instant::now();
            let (estimate, _) = estimate_with_budget_engine(
                &dem,
                decoder,
                ShotBudget::fixed(shots),
                seed,
                engine,
                &rt,
                &mut |_| {},
            );
            EngineRun {
                failures: estimate.failures,
                wall: t.elapsed(),
            }
        };
        let scalar = run(Engine::Scalar);
        let frames = run(Engine::Frames);
        // Untimed, observability-enabled frames run for the deterministic
        // batch pipeline profile: how many distinct non-zero syndromes the
        // chunks actually decoded (`ler.decode.cache.miss`) and what fraction
        // of shots the zero fast path short-circuited. Kept separate from the
        // timed runs so registry updates never skew the speedup ratio.
        let (distinct_syndromes, zero_fraction) = {
            let obs = Obs::enabled();
            let rt = Runtime::with_obs(runtime, obs.clone());
            estimate_with_budget_engine(
                &dem,
                decoder,
                ShotBudget::fixed(shots),
                seed,
                Engine::Frames,
                &rt,
                &mut |_| {},
            );
            let snap = obs.snapshot().expect("an enabled registry snapshots");
            (
                snap.counter("ler.decode.cache.miss"),
                snap.counter("ler.decode.zero") as f64 / shots as f64,
            )
        };
        let row = FrameRow {
            code: bench.code.name().to_string(),
            p,
            shots,
            scalar,
            frames,
            parity_shots,
            parity_failures,
            distinct_syndromes,
            zero_fraction,
        };
        println!(
            "{:<14} {:>7} {:>6} {:>12.0} {:>12.0} {:>8.1}x  ok ({}/{} failures, \
             {} distinct, {:.0}% zero)",
            row.code,
            row.p,
            row.shots,
            row.scalar_sps(),
            row.frames_sps(),
            row.speedup(),
            row.parity_failures,
            row.parity_shots,
            row.distinct_syndromes,
            100.0 * row.zero_fraction,
        );
        // Per-code timing gates only run at the full budget: the smoke
        // profile's per-code windows are short enough that one scheduler
        // stall on a loaded CI runner could flip the comparison with no code
        // defect. (The same-frames parity assert above is the deterministic
        // gate and always runs.)
        if !smoke {
            assert!(
                row.speedup() >= PER_CODE_FLOOR,
                "frame engine must not be slower than scalar on {}",
                row.code
            );
        }
        let family = if row.code.starts_with("surface") {
            SURFACE
        } else {
            LDPC
        };
        for bucket in [family, SUITE] {
            totals[bucket].0 += row.scalar.wall;
            totals[bucket].1 += row.frames.wall;
            totals[bucket].2 += row.shots;
        }
        records.push(row.to_record());
    }
    for (bucket, label, floor) in BUCKET_GATES {
        let (scalar, frames, shots) = totals[bucket];
        let speedup = scalar.as_secs_f64() / frames.as_secs_f64().max(1e-12);
        let scalar_sps = shots as f64 / scalar.as_secs_f64().max(1e-12);
        let frames_sps = shots as f64 / frames.as_secs_f64().max(1e-12);
        println!(
            "{:<14} {:>7} {:>6} {:>12.0} {:>12.0} {:>8.1}x",
            label, "", shots, scalar_sps, frames_sps, speedup
        );
        if !smoke {
            assert!(
                speedup >= floor,
                "frame engine must deliver >= {floor}x aggregate shots/sec \
                 over scalar on {label} (got {speedup:.2}x)"
            );
        }
        records.push(ReportRecord::Table {
            name: "frame_bench".into(),
            fields: vec![
                ("code".into(), Json::Str(label.into())),
                ("shots".into(), Json::UInt(shots as u64)),
                ("scalar_shots_per_sec".into(), Json::Float(scalar_sps)),
                ("frames_shots_per_sec".into(), Json::Float(frames_sps)),
                ("speedup".into(), Json::Float(speedup)),
            ],
        });
    }
    if smoke {
        // Never clobber the committed full-profile baseline with trimmed
        // smoke numbers.
        println!("smoke mode: skipping BENCH_frames.json (baseline is the full profile)");
    } else {
        std::fs::write("BENCH_frames.json", write_report(&records))
            .expect("cannot write BENCH_frames.json");
        println!("wrote BENCH_frames.json ({} rows)", records.len());
    }
}
