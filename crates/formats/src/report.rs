//! The JSON-lines run-report format.
//!
//! One record per line, each a JSON object with a `"type"` tag:
//!
//! * `run_start` / `iteration` / `run_end` — an optimization run. `iteration`
//!   records mirror [`prophunt::IterationRecord`] field-for-field; schedules are
//!   embedded as `prophunt-schedule v1` documents in a JSON string, so a report is a
//!   complete, resumable account of a run ([`report_to_result`] is the inverse of
//!   [`result_to_report`]).
//! * `ler` — one Monte-Carlo logical-error-rate estimate, always carrying the
//!   `(seed, chunk_size)` pair that makes the failure count reproducible
//!   bit-for-bit.
//! * `search_start` / `incumbent` / `search_end` — a strategy-portfolio search
//!   run (`prophunt search`): one `incumbent` record per synchronized round with
//!   per-strategy provenance and the embedded incumbent schedule (report v2
//!   extension; v1 parsers reject the unknown types, see `FORMATS.md`).
//! * `table` — a generic named row used by the benchmark binaries for figure/table
//!   data that is not an LER point.
//! * `meta` — a provenance header (crate version, seed, threads, chunk size,
//!   engine) written at the head of report and metrics streams (report v3
//!   extension). Every field is optional on parse, and readers that rebuild
//!   results ([`report_to_result`]) skip it, so v1/v2 documents — and v3
//!   documents read by tools that ignore provenance — keep working.
//! * `metrics` — a snapshot of a `prophunt-obs` registry (report v3 extension):
//!   deterministic counters in their own `"counters"` object, thread-dependent
//!   gauges and log2-bucketed timing histograms in separate keys, so the
//!   deterministic subset can be byte-compared across thread counts.
//! * `trace` — one trace event from the `prophunt-obs` trace-event layer
//!   (report v3 extension, trace-v1): timeline spans/instants with lane and
//!   parent attribution, plus timeless `"diag"` convergence-diagnostic events
//!   that stay bit-identical at any thread count. See [`crate::trace`] for the
//!   Chrome trace-event export of the same stream.
//!
//! Streaming writers emit records one line at a time (`prophunt optimize` writes an
//! `iteration` line as each iteration completes); [`parse_report`] reads a whole
//! document and reports errors with the line they occurred on.

use crate::error::FormatError;
use crate::json::Json;
use crate::schedule::{parse_schedule, write_schedule};
use prophunt::{IterationRecord, OptimizationResult};
use prophunt_circuit::MemoryBasis;
use prophunt_obs::{HistogramSnapshot, Snapshot};

/// One record of a JSON-lines run report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportRecord {
    /// Start of an optimization run.
    RunStart {
        /// Name of the optimized code.
        code: String,
        /// Base RNG seed of the run.
        seed: u64,
        /// Deterministic chunk size of the run.
        chunk_size: u64,
        /// CNOT depth of the initial schedule.
        initial_depth: u64,
        /// The initial schedule, as a `prophunt-schedule v1` document.
        initial_schedule: String,
    },
    /// One optimization iteration (mirrors [`prophunt::IterationRecord`]).
    Iteration {
        /// Iteration number (0-based).
        iteration: u64,
        /// Memory basis analysed (`"Z"` or `"X"`).
        basis: String,
        /// Number of ambiguous subgraphs with a minimum-weight solution.
        subgraphs_found: u64,
        /// Weights of the minimum-weight logical errors solved.
        solution_weights: Vec<u64>,
        /// Candidate changes enumerated before pruning.
        candidates_enumerated: u64,
        /// Verified changes applied to the schedule.
        changes_applied: u64,
        /// CNOT depth after this iteration.
        depth: u64,
        /// The schedule after this iteration, as a `prophunt-schedule v1` document.
        schedule: String,
    },
    /// End of an optimization run.
    RunEnd {
        /// Number of iterations recorded.
        iterations: u64,
        /// Total changes applied across the run.
        total_changes: u64,
        /// CNOT depth of the final schedule.
        final_depth: u64,
        /// The final schedule, as a `prophunt-schedule v1` document.
        final_schedule: String,
    },
    /// One Monte-Carlo logical-error-rate estimate.
    ///
    /// Version note: the `decoder`, `noise`, `stop`, `wall_s` and `shots_per_sec`
    /// fields were added in report v2. The writer always emits them; the parser
    /// defaults them (`"bposd"`, `""`, `"shots_exhausted"`, `0`, `0`) when reading
    /// v1 documents, which predate pluggable decoders and adaptive budgets. The
    /// `engine` field was added the same way (additive, no version bump): the
    /// writer always emits it, and the parser defaults it to `"scalar"` for v1/v2
    /// records, which were all computed by the scalar kernel.
    Ler {
        /// Free-form label (schedule name, hardware point, ...).
        label: String,
        /// Physical error rate.
        p: f64,
        /// Idle error strength (0 when the sweep has none).
        idle: f64,
        /// Number of shots sampled.
        shots: u64,
        /// Number of logical failures observed.
        failures: u64,
        /// Base seed of the estimate.
        seed: u64,
        /// Chunk size of the estimate (part of the determinism contract).
        chunk_size: u64,
        /// Registry name of the decoder the estimate was decoded with.
        decoder: String,
        /// Canonical noise-spec string the model was built from (empty when the
        /// model came from a pre-built `.dem` file).
        noise: String,
        /// Why the run stopped (`shots_exhausted`, `max_failures`, `target_rse`).
        stop: String,
        /// Estimation engine the counts were computed with (`scalar` or
        /// `frames`); part of the reproduction key, since the two engines lay
        /// out the RNG stream differently.
        engine: String,
        /// Wall-clock seconds the job took (0 when not measured).
        wall_s: f64,
        /// Decoding throughput in shots per second (0 when not measured).
        shots_per_sec: f64,
    },
    /// Start of a strategy-portfolio search run (report v2 extension; see
    /// `FORMATS.md`).
    SearchStart {
        /// Name of the searched code.
        code: String,
        /// Base RNG seed of the run.
        seed: u64,
        /// Deterministic chunk size of the run.
        chunk_size: u64,
        /// Strategy mix, in portfolio fill order.
        strategies: Vec<String>,
        /// Number of strategy instances raced in parallel.
        portfolio: u64,
        /// Number of synchronized rounds requested.
        rounds: u64,
        /// CNOT depth of the starting schedule.
        initial_depth: u64,
        /// The starting schedule, as a `prophunt-schedule v1` document.
        initial_schedule: String,
    },
    /// One portfolio round's incumbent, with per-strategy provenance (report
    /// v2 extension). The embedded schedule makes every record a resumable
    /// account of the best circuit known at that round.
    Incumbent {
        /// Round number (0-based).
        round: u64,
        /// Strategy that produced the incumbent (`"initial"` while the
        /// starting schedule still leads).
        strategy: String,
        /// Portfolio instance slot that produced the incumbent.
        instance: u64,
        /// CNOT depth of the incumbent.
        depth: u64,
        /// Whether this round strictly improved the incumbent.
        improved: bool,
        /// The incumbent schedule, as a `prophunt-schedule v1` document.
        schedule: String,
    },
    /// End of a strategy-portfolio search run (report v2 extension).
    SearchEnd {
        /// Number of rounds recorded.
        rounds: u64,
        /// CNOT depth of the best schedule found.
        best_depth: u64,
        /// Strategy that produced the best schedule.
        best_strategy: String,
        /// Portfolio instance slot that produced it.
        best_instance: u64,
        /// The best schedule, as a `prophunt-schedule v1` document.
        final_schedule: String,
    },
    /// A generic named data row (benchmark tables).
    Table {
        /// Row kind (e.g. `"code_parameters"`).
        name: String,
        /// Field name/value pairs, in order. The keys `"type"` and `"name"` are
        /// reserved for the record envelope: the writer skips fields using them
        /// (emitting them would produce duplicate JSON keys the parser must strip).
        fields: Vec<(String, Json)>,
    },
    /// Provenance header at the head of a report or metrics stream (report v3
    /// extension). Every field is optional on parse — a bare `{"type":"meta"}`
    /// line is valid — so older emitters and newer readers interoperate.
    Meta {
        /// Workspace crate version that produced the stream (empty if unknown).
        version: String,
        /// Base RNG seed of the run (0 if unknown).
        seed: u64,
        /// Worker-thread bound of the run (0 if unknown). Informational only:
        /// no deterministic field may depend on it.
        threads: u64,
        /// Deterministic chunk size of the run (0 if unknown).
        chunk_size: u64,
        /// Estimation engine of the run (`"scalar"`/`"frames"`; empty for
        /// commands without one, e.g. `search`).
        engine: String,
        /// Invoking command line, space-joined (empty if unknown). Additive
        /// field: the writer omits the key when empty, and the parser defaults
        /// it, so pre-trace-v1 documents and readers interoperate.
        cmdline: String,
    },
    /// A `prophunt-obs` registry snapshot (report v3 extension).
    ///
    /// The record keeps the determinism contract visible in its shape:
    /// `counters` holds only quantities that are bit-identical at any thread
    /// count for a fixed `(seed, chunk_size)`, while `gauges` and `histograms`
    /// hold timings and occupancy. CI compares the serialized `"counters"`
    /// object byte-for-byte across thread counts and ignores the rest.
    Metrics {
        /// Deterministic `(name, value)` counter pairs, name-sorted.
        counters: Vec<(String, u64)>,
        /// Thread-dependent `(name, value)` gauge pairs, name-sorted.
        gauges: Vec<(String, u64)>,
        /// Timing histograms, name-sorted.
        histograms: Vec<MetricsHistogram>,
    },
    /// One trace event from the `prophunt-obs` trace-event layer (report v3
    /// extension, trace-v1).
    ///
    /// Timeline events (`span`/`instant` kinds with wall-clock timestamps) are
    /// thread- and machine-dependent; diag events (`cat == "diag"`, every
    /// clock field zero) are the deterministic subset, bit-identical at any
    /// thread count for a fixed `(seed, chunk_size)`. Only `name` is required
    /// on parse, per the additive-versioning policy.
    Trace {
        /// Event name (e.g. `"runtime.task"`, `"search.round"`).
        name: String,
        /// Event category (`"runtime"`, `"ler.stage"`, `"diag"`, ...).
        cat: String,
        /// Event kind: `"span"` (carries a duration) or `"instant"`.
        kind: String,
        /// Lane the event belongs to: worker index for execution events,
        /// instance slot for search diagnostics, 0 for the control thread.
        tid: u64,
        /// Span id (0 for events that never parent others).
        id: u64,
        /// Enclosing span id (0 when the event is a root).
        parent: u64,
        /// Start timestamp in ns since the tracer epoch (0 for diag events).
        ts: u64,
        /// Duration in ns (0 for instant and diag events).
        dur: u64,
        /// Ordered `(key, value)` event arguments.
        args: Vec<(String, u64)>,
    },
    /// One `prophunt lint` static-analysis diagnostic (report v3 extension).
    ///
    /// Emitted by `prophunt lint --format json`, one record per finding, so
    /// lint output round-trips through the same report toolchain
    /// (`prophunt check`, the analyzer) as every other stream.
    Lint {
        /// Workspace-relative path of the offending file.
        file: String,
        /// 1-based line of the finding.
        line: u64,
        /// 1-based column of the finding.
        col: u64,
        /// Display id of the violated rule, e.g. `"D1-no-wall-clock"`.
        rule: String,
        /// Human-readable description of the violation.
        message: String,
        /// Justification text of the suppression covering this finding; empty
        /// when the finding is unsuppressed (and therefore fatal in CI).
        suppressed_by: String,
    },
}

/// One exported log2-bucketed histogram inside a [`ReportRecord::Metrics`]
/// record.
///
/// Bucket indices follow `prophunt-obs`: bucket 0 holds the value 0 and bucket
/// `b >= 1` holds `[2^(b-1), 2^b - 1]`, so `(index, count)` pairs are enough to
/// recover quantile estimates without shipping raw samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsHistogram {
    /// Instrument name (e.g. `"ler.frames.decode.ns"`).
    pub name: String,
    /// Total number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(u64, u64)>,
}

impl MetricsHistogram {
    fn to_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: self.buckets.iter().map(|&(b, c)| (b as usize, c)).collect(),
        }
    }

    /// Estimated `q`-quantile (bucket upper bound; see
    /// [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.to_snapshot().quantile(q)
    }

    /// Mean of the recorded values (exact — uses the running sum).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.to_snapshot().mean()
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, FormatError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| FormatError::whole_input(format!("record is missing integer field {key:?}")))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, FormatError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| FormatError::whole_input(format!("record is missing numeric field {key:?}")))
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, FormatError> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| FormatError::whole_input(format!("record is missing boolean field {key:?}")))
}

fn get_str(obj: &Json, key: &str) -> Result<String, FormatError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| FormatError::whole_input(format!("record is missing string field {key:?}")))
}

fn opt_str(obj: &Json, key: &str, default: &str) -> String {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or(default)
        .to_string()
}

fn opt_f64(obj: &Json, key: &str, default: f64) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or(default)
}

fn opt_u64(obj: &Json, key: &str, default: u64) -> u64 {
    obj.get(key).and_then(Json::as_u64).unwrap_or(default)
}

/// Parses an optional `{"name": uint, ...}` object field into ordered pairs
/// (missing field → empty).
fn u64_pairs(obj: &Json, key: &str) -> Result<Vec<(String, u64)>, FormatError> {
    let Some(val) = obj.get(key) else {
        return Ok(Vec::new());
    };
    let Json::Object(pairs) = val else {
        return Err(FormatError::whole_input(format!(
            "record field {key:?} must be an object"
        )));
    };
    pairs
        .iter()
        .map(|(k, v)| {
            v.as_u64().map(|v| (k.clone(), v)).ok_or_else(|| {
                FormatError::whole_input(format!(
                    "{key} value for {k:?} must be an unsigned integer"
                ))
            })
        })
        .collect()
}

fn parse_metrics_histogram(entry: &Json) -> Result<MetricsHistogram, FormatError> {
    let buckets = entry
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| FormatError::whole_input("metrics histogram is missing buckets"))?
        .iter()
        .map(|pair| {
            let items = pair.as_array().unwrap_or_default();
            match items {
                [b, c] => b.as_u64().zip(c.as_u64()),
                _ => None,
            }
            .ok_or_else(|| {
                FormatError::whole_input("metrics histogram buckets must be [index, count] pairs")
            })
        })
        .collect::<Result<Vec<(u64, u64)>, FormatError>>()?;
    Ok(MetricsHistogram {
        name: get_str(entry, "name")?,
        count: get_u64(entry, "count")?,
        sum: get_u64(entry, "sum")?,
        buckets,
    })
}

impl ReportRecord {
    /// Builds a [`ReportRecord::Ler`]. `seed` and `chunk_size` must be the pair the
    /// estimate was *actually computed with* — the record's whole point is that
    /// re-running with that pair reproduces `failures` bit-for-bit — so callers
    /// deriving per-stage seeds must record the derived seed, not the base one.
    ///
    /// The v2 fields are filled with their v1-compatible defaults (a `bposd` fixed
    /// budget run, no timing); set them on the returned variant — or build the
    /// variant directly — for jobs that know their decoder/noise/stop/timing.
    pub fn ler(
        label: impl Into<String>,
        p: f64,
        idle: f64,
        shots: u64,
        failures: u64,
        seed: u64,
        chunk_size: u64,
    ) -> ReportRecord {
        ReportRecord::Ler {
            label: label.into(),
            p,
            idle,
            shots,
            failures,
            seed,
            chunk_size,
            decoder: "bposd".into(),
            noise: String::new(),
            stop: "shots_exhausted".into(),
            engine: "scalar".into(),
            wall_s: 0.0,
            shots_per_sec: 0.0,
        }
    }

    /// Builds a [`ReportRecord::Meta`] provenance header.
    pub fn meta(
        version: impl Into<String>,
        seed: u64,
        threads: u64,
        chunk_size: u64,
        engine: impl Into<String>,
    ) -> ReportRecord {
        ReportRecord::Meta {
            version: version.into(),
            seed,
            threads,
            chunk_size,
            engine: engine.into(),
            cmdline: String::new(),
        }
    }

    /// Sets the `cmdline` provenance field on a [`ReportRecord::Meta`]
    /// (no-op on every other variant).
    #[must_use]
    pub fn with_cmdline(mut self, value: impl Into<String>) -> ReportRecord {
        if let ReportRecord::Meta { cmdline, .. } = &mut self {
            *cmdline = value.into();
        }
        self
    }

    /// Builds a [`ReportRecord::Metrics`] from a `prophunt-obs` registry
    /// snapshot, preserving the snapshot's name-sorted order and its
    /// counter/gauge/histogram class separation.
    pub fn metrics_from_snapshot(snapshot: &Snapshot) -> ReportRecord {
        ReportRecord::Metrics {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|(name, h)| MetricsHistogram {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.iter().map(|&(b, c)| (b as u64, c)).collect(),
                })
                .collect(),
        }
    }

    /// Serializes the record to one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let obj = match self {
            ReportRecord::RunStart {
                code,
                seed,
                chunk_size,
                initial_depth,
                initial_schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("run_start".into())),
                ("code".into(), Json::Str(code.clone())),
                ("seed".into(), Json::UInt(*seed)),
                ("chunk_size".into(), Json::UInt(*chunk_size)),
                ("initial_depth".into(), Json::UInt(*initial_depth)),
                (
                    "initial_schedule".into(),
                    Json::Str(initial_schedule.clone()),
                ),
            ]),
            ReportRecord::Iteration {
                iteration,
                basis,
                subgraphs_found,
                solution_weights,
                candidates_enumerated,
                changes_applied,
                depth,
                schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("iteration".into())),
                ("iteration".into(), Json::UInt(*iteration)),
                ("basis".into(), Json::Str(basis.clone())),
                ("subgraphs_found".into(), Json::UInt(*subgraphs_found)),
                (
                    "solution_weights".into(),
                    Json::Array(solution_weights.iter().map(|&w| Json::UInt(w)).collect()),
                ),
                (
                    "candidates_enumerated".into(),
                    Json::UInt(*candidates_enumerated),
                ),
                ("changes_applied".into(), Json::UInt(*changes_applied)),
                ("depth".into(), Json::UInt(*depth)),
                ("schedule".into(), Json::Str(schedule.clone())),
            ]),
            ReportRecord::RunEnd {
                iterations,
                total_changes,
                final_depth,
                final_schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("run_end".into())),
                ("iterations".into(), Json::UInt(*iterations)),
                ("total_changes".into(), Json::UInt(*total_changes)),
                ("final_depth".into(), Json::UInt(*final_depth)),
                ("final_schedule".into(), Json::Str(final_schedule.clone())),
            ]),
            ReportRecord::Ler {
                label,
                p,
                idle,
                shots,
                failures,
                seed,
                chunk_size,
                decoder,
                noise,
                stop,
                engine,
                wall_s,
                shots_per_sec,
            } => Json::Object(vec![
                ("type".into(), Json::Str("ler".into())),
                ("label".into(), Json::Str(label.clone())),
                ("p".into(), Json::Float(*p)),
                ("idle".into(), Json::Float(*idle)),
                ("shots".into(), Json::UInt(*shots)),
                ("failures".into(), Json::UInt(*failures)),
                ("seed".into(), Json::UInt(*seed)),
                ("chunk_size".into(), Json::UInt(*chunk_size)),
                ("decoder".into(), Json::Str(decoder.clone())),
                ("noise".into(), Json::Str(noise.clone())),
                ("stop".into(), Json::Str(stop.clone())),
                ("engine".into(), Json::Str(engine.clone())),
                ("wall_s".into(), Json::Float(*wall_s)),
                ("shots_per_sec".into(), Json::Float(*shots_per_sec)),
            ]),
            ReportRecord::SearchStart {
                code,
                seed,
                chunk_size,
                strategies,
                portfolio,
                rounds,
                initial_depth,
                initial_schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("search_start".into())),
                ("code".into(), Json::Str(code.clone())),
                ("seed".into(), Json::UInt(*seed)),
                ("chunk_size".into(), Json::UInt(*chunk_size)),
                (
                    "strategies".into(),
                    Json::Array(strategies.iter().map(|s| Json::Str(s.clone())).collect()),
                ),
                ("portfolio".into(), Json::UInt(*portfolio)),
                ("rounds".into(), Json::UInt(*rounds)),
                ("initial_depth".into(), Json::UInt(*initial_depth)),
                (
                    "initial_schedule".into(),
                    Json::Str(initial_schedule.clone()),
                ),
            ]),
            ReportRecord::Incumbent {
                round,
                strategy,
                instance,
                depth,
                improved,
                schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("incumbent".into())),
                ("round".into(), Json::UInt(*round)),
                ("strategy".into(), Json::Str(strategy.clone())),
                ("instance".into(), Json::UInt(*instance)),
                ("depth".into(), Json::UInt(*depth)),
                ("improved".into(), Json::Bool(*improved)),
                ("schedule".into(), Json::Str(schedule.clone())),
            ]),
            ReportRecord::SearchEnd {
                rounds,
                best_depth,
                best_strategy,
                best_instance,
                final_schedule,
            } => Json::Object(vec![
                ("type".into(), Json::Str("search_end".into())),
                ("rounds".into(), Json::UInt(*rounds)),
                ("best_depth".into(), Json::UInt(*best_depth)),
                ("best_strategy".into(), Json::Str(best_strategy.clone())),
                ("best_instance".into(), Json::UInt(*best_instance)),
                ("final_schedule".into(), Json::Str(final_schedule.clone())),
            ]),
            ReportRecord::Table { name, fields } => {
                let mut pairs = vec![
                    ("type".into(), Json::Str("table".into())),
                    ("name".into(), Json::Str(name.clone())),
                ];
                pairs.extend(
                    fields
                        .iter()
                        .filter(|(k, _)| k != "type" && k != "name")
                        .cloned(),
                );
                Json::Object(pairs)
            }
            ReportRecord::Meta {
                version,
                seed,
                threads,
                chunk_size,
                engine,
                cmdline,
            } => {
                let mut pairs = vec![
                    ("type".into(), Json::Str("meta".into())),
                    ("version".into(), Json::Str(version.clone())),
                    ("seed".into(), Json::UInt(*seed)),
                    ("threads".into(), Json::UInt(*threads)),
                    ("chunk_size".into(), Json::UInt(*chunk_size)),
                    ("engine".into(), Json::Str(engine.clone())),
                ];
                // Additive field: omitted when empty so pre-trace-v1 meta
                // lines stay byte-identical.
                if !cmdline.is_empty() {
                    pairs.push(("cmdline".into(), Json::Str(cmdline.clone())));
                }
                Json::Object(pairs)
            }
            ReportRecord::Trace {
                name,
                cat,
                kind,
                tid,
                id,
                parent,
                ts,
                dur,
                args,
            } => Json::Object(vec![
                ("type".into(), Json::Str("trace".into())),
                ("name".into(), Json::Str(name.clone())),
                ("cat".into(), Json::Str(cat.clone())),
                ("kind".into(), Json::Str(kind.clone())),
                ("tid".into(), Json::UInt(*tid)),
                ("id".into(), Json::UInt(*id)),
                ("parent".into(), Json::UInt(*parent)),
                ("ts".into(), Json::UInt(*ts)),
                ("dur".into(), Json::UInt(*dur)),
                (
                    "args".into(),
                    Json::Object(
                        args.iter()
                            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                            .collect(),
                    ),
                ),
            ]),
            ReportRecord::Metrics {
                counters,
                gauges,
                histograms,
            } => {
                let pairs_obj = |pairs: &[(String, u64)]| {
                    Json::Object(
                        pairs
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                            .collect(),
                    )
                };
                Json::Object(vec![
                    ("type".into(), Json::Str("metrics".into())),
                    // The deterministic subset is one self-contained JSON
                    // object so tools can extract and byte-compare it.
                    ("counters".into(), pairs_obj(counters)),
                    ("gauges".into(), pairs_obj(gauges)),
                    (
                        "histograms".into(),
                        Json::Array(
                            histograms
                                .iter()
                                .map(|h| {
                                    Json::Object(vec![
                                        ("name".into(), Json::Str(h.name.clone())),
                                        ("count".into(), Json::UInt(h.count)),
                                        ("sum".into(), Json::UInt(h.sum)),
                                        (
                                            "buckets".into(),
                                            Json::Array(
                                                h.buckets
                                                    .iter()
                                                    .map(|&(b, c)| {
                                                        Json::Array(vec![
                                                            Json::UInt(b),
                                                            Json::UInt(c),
                                                        ])
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            }
            ReportRecord::Lint {
                file,
                line,
                col,
                rule,
                message,
                suppressed_by,
            } => Json::Object(vec![
                ("type".into(), Json::Str("lint".into())),
                ("file".into(), Json::Str(file.clone())),
                ("line".into(), Json::UInt(*line)),
                ("col".into(), Json::UInt(*col)),
                ("rule".into(), Json::Str(rule.clone())),
                ("message".into(), Json::Str(message.clone())),
                ("suppressed_by".into(), Json::Str(suppressed_by.clone())),
            ]),
        };
        obj.to_json()
    }

    /// Parses one JSON line into a record.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] for malformed JSON (with column information), an
    /// unknown `"type"` tag, or missing/mistyped fields.
    pub fn from_json_line(line: &str) -> Result<ReportRecord, FormatError> {
        let obj = Json::parse(line)?;
        let kind = get_str(&obj, "type")?;
        match kind.as_str() {
            "run_start" => Ok(ReportRecord::RunStart {
                code: get_str(&obj, "code")?,
                seed: get_u64(&obj, "seed")?,
                chunk_size: get_u64(&obj, "chunk_size")?,
                initial_depth: get_u64(&obj, "initial_depth")?,
                initial_schedule: get_str(&obj, "initial_schedule")?,
            }),
            "iteration" => {
                let weights = obj
                    .get("solution_weights")
                    .and_then(Json::as_array)
                    .ok_or_else(|| {
                        FormatError::whole_input("iteration record is missing solution_weights")
                    })?
                    .iter()
                    .map(|w| {
                        w.as_u64().ok_or_else(|| {
                            FormatError::whole_input("solution_weights must be integers")
                        })
                    })
                    .collect::<Result<Vec<u64>, FormatError>>()?;
                Ok(ReportRecord::Iteration {
                    iteration: get_u64(&obj, "iteration")?,
                    basis: get_str(&obj, "basis")?,
                    subgraphs_found: get_u64(&obj, "subgraphs_found")?,
                    solution_weights: weights,
                    candidates_enumerated: get_u64(&obj, "candidates_enumerated")?,
                    changes_applied: get_u64(&obj, "changes_applied")?,
                    depth: get_u64(&obj, "depth")?,
                    schedule: get_str(&obj, "schedule")?,
                })
            }
            "run_end" => Ok(ReportRecord::RunEnd {
                iterations: get_u64(&obj, "iterations")?,
                total_changes: get_u64(&obj, "total_changes")?,
                final_depth: get_u64(&obj, "final_depth")?,
                final_schedule: get_str(&obj, "final_schedule")?,
            }),
            "ler" => Ok(ReportRecord::Ler {
                label: get_str(&obj, "label")?,
                p: get_f64(&obj, "p")?,
                idle: get_f64(&obj, "idle")?,
                shots: get_u64(&obj, "shots")?,
                failures: get_u64(&obj, "failures")?,
                seed: get_u64(&obj, "seed")?,
                chunk_size: get_u64(&obj, "chunk_size")?,
                // v2 fields: default when reading v1 documents.
                decoder: opt_str(&obj, "decoder", "bposd"),
                noise: opt_str(&obj, "noise", ""),
                stop: opt_str(&obj, "stop", "shots_exhausted"),
                // Additive field: v1/v2 records were all scalar-kernel runs.
                engine: opt_str(&obj, "engine", "scalar"),
                wall_s: opt_f64(&obj, "wall_s", 0.0),
                shots_per_sec: opt_f64(&obj, "shots_per_sec", 0.0),
            }),
            "search_start" => {
                let strategies = obj
                    .get("strategies")
                    .and_then(Json::as_array)
                    .ok_or_else(|| {
                        FormatError::whole_input("search_start record is missing strategies")
                    })?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| FormatError::whole_input("strategies must be strings"))
                    })
                    .collect::<Result<Vec<String>, FormatError>>()?;
                Ok(ReportRecord::SearchStart {
                    code: get_str(&obj, "code")?,
                    seed: get_u64(&obj, "seed")?,
                    chunk_size: get_u64(&obj, "chunk_size")?,
                    strategies,
                    portfolio: get_u64(&obj, "portfolio")?,
                    rounds: get_u64(&obj, "rounds")?,
                    initial_depth: get_u64(&obj, "initial_depth")?,
                    initial_schedule: get_str(&obj, "initial_schedule")?,
                })
            }
            "incumbent" => Ok(ReportRecord::Incumbent {
                round: get_u64(&obj, "round")?,
                strategy: get_str(&obj, "strategy")?,
                instance: get_u64(&obj, "instance")?,
                depth: get_u64(&obj, "depth")?,
                improved: get_bool(&obj, "improved")?,
                schedule: get_str(&obj, "schedule")?,
            }),
            "lint" => Ok(ReportRecord::Lint {
                file: get_str(&obj, "file")?,
                line: get_u64(&obj, "line")?,
                col: get_u64(&obj, "col")?,
                rule: get_str(&obj, "rule")?,
                message: get_str(&obj, "message")?,
                suppressed_by: opt_str(&obj, "suppressed_by", ""),
            }),
            "search_end" => Ok(ReportRecord::SearchEnd {
                rounds: get_u64(&obj, "rounds")?,
                best_depth: get_u64(&obj, "best_depth")?,
                best_strategy: get_str(&obj, "best_strategy")?,
                best_instance: get_u64(&obj, "best_instance")?,
                final_schedule: get_str(&obj, "final_schedule")?,
            }),
            "table" => {
                // get_str above already proved obj is an object, but a typed
                // error keeps this parse path panic-free on any input.
                let Json::Object(pairs) = obj else {
                    return Err(FormatError::whole_input("table record is not an object"));
                };
                let name = pairs
                    .iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| v.as_str())
                    .ok_or_else(|| {
                        FormatError::whole_input("table record is missing string field \"name\"")
                    })?
                    .to_string();
                let fields = pairs
                    .into_iter()
                    .filter(|(k, _)| k != "type" && k != "name")
                    .collect();
                Ok(ReportRecord::Table { name, fields })
            }
            // Provenance is best-effort by design: every field optional.
            "meta" => Ok(ReportRecord::Meta {
                version: opt_str(&obj, "version", ""),
                seed: opt_u64(&obj, "seed", 0),
                threads: opt_u64(&obj, "threads", 0),
                chunk_size: opt_u64(&obj, "chunk_size", 0),
                engine: opt_str(&obj, "engine", ""),
                cmdline: opt_str(&obj, "cmdline", ""),
            }),
            // Trace events: only the name is required, everything else
            // defaults, so future emitters can extend the record additively.
            "trace" => Ok(ReportRecord::Trace {
                name: get_str(&obj, "name")?,
                cat: opt_str(&obj, "cat", ""),
                kind: opt_str(&obj, "kind", "span"),
                tid: opt_u64(&obj, "tid", 0),
                id: opt_u64(&obj, "id", 0),
                parent: opt_u64(&obj, "parent", 0),
                ts: opt_u64(&obj, "ts", 0),
                dur: opt_u64(&obj, "dur", 0),
                args: u64_pairs(&obj, "args")?,
            }),
            "metrics" => {
                let histograms = match obj.get("histograms") {
                    None => Vec::new(),
                    Some(val) => val
                        .as_array()
                        .ok_or_else(|| {
                            FormatError::whole_input("metrics histograms must be an array")
                        })?
                        .iter()
                        .map(parse_metrics_histogram)
                        .collect::<Result<Vec<MetricsHistogram>, FormatError>>()?,
                };
                Ok(ReportRecord::Metrics {
                    counters: u64_pairs(&obj, "counters")?,
                    gauges: u64_pairs(&obj, "gauges")?,
                    histograms,
                })
            }
            other => Err(FormatError::whole_input(format!(
                "unknown report record type {other:?}"
            ))),
        }
    }
}

/// Serializes records to a JSON-lines document (one record per line, trailing
/// newline).
pub fn write_report<'a>(records: impl IntoIterator<Item = &'a ReportRecord>) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines document into records, skipping blank lines.
///
/// # Errors
///
/// Returns the first record's [`FormatError`] with its line number in the document.
pub fn parse_report(input: &str) -> Result<Vec<ReportRecord>, FormatError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(ReportRecord::from_json_line(line).map_err(|e| FormatError {
            line: idx + 1,
            column: e.column,
            message: e.message,
        })?);
    }
    Ok(out)
}

fn basis_name(basis: MemoryBasis) -> &'static str {
    match basis {
        MemoryBasis::Z => "Z",
        MemoryBasis::X => "X",
    }
}

fn parse_basis(name: &str) -> Result<MemoryBasis, FormatError> {
    match name {
        "Z" => Ok(MemoryBasis::Z),
        "X" => Ok(MemoryBasis::X),
        other => Err(FormatError::whole_input(format!(
            "basis must be \"Z\" or \"X\", got {other:?}"
        ))),
    }
}

/// Converts an in-memory [`IterationRecord`] into its report record.
pub fn iteration_to_record(record: &IterationRecord) -> ReportRecord {
    ReportRecord::Iteration {
        iteration: record.iteration as u64,
        basis: basis_name(record.basis).to_string(),
        subgraphs_found: record.subgraphs_found as u64,
        solution_weights: record.solution_weights.iter().map(|&w| w as u64).collect(),
        candidates_enumerated: record.candidates_enumerated as u64,
        changes_applied: record.changes_applied as u64,
        depth: record.depth as u64,
        schedule: write_schedule(&record.schedule),
    }
}

/// Converts an `iteration` report record back into an [`IterationRecord`].
///
/// # Errors
///
/// Returns a [`FormatError`] if the record is not an `iteration` record or its
/// embedded basis/schedule fail to parse.
pub fn record_to_iteration(record: &ReportRecord) -> Result<IterationRecord, FormatError> {
    let ReportRecord::Iteration {
        iteration,
        basis,
        subgraphs_found,
        solution_weights,
        candidates_enumerated,
        changes_applied,
        depth,
        schedule,
    } = record
    else {
        return Err(FormatError::whole_input("expected an iteration record"));
    };
    Ok(IterationRecord {
        iteration: *iteration as usize,
        basis: parse_basis(basis)?,
        subgraphs_found: *subgraphs_found as usize,
        solution_weights: solution_weights.iter().map(|&w| w as usize).collect(),
        candidates_enumerated: *candidates_enumerated as usize,
        changes_applied: *changes_applied as usize,
        depth: *depth as usize,
        schedule: parse_schedule(schedule)?,
    })
}

/// Serializes a whole [`OptimizationResult`] as `run_start`, `iteration`...,
/// `run_end` records.
pub fn result_to_report(
    result: &OptimizationResult,
    code_name: &str,
    seed: u64,
    chunk_size: usize,
) -> Vec<ReportRecord> {
    let mut records = Vec::with_capacity(result.records.len() + 2);
    records.push(ReportRecord::RunStart {
        code: code_name.to_string(),
        seed,
        chunk_size: chunk_size as u64,
        initial_depth: result.initial_schedule.depth().unwrap_or(0) as u64,
        initial_schedule: write_schedule(&result.initial_schedule),
    });
    records.extend(result.records.iter().map(iteration_to_record));
    records.push(ReportRecord::RunEnd {
        iterations: result.records.len() as u64,
        total_changes: result.total_changes_applied() as u64,
        final_depth: result.final_depth() as u64,
        final_schedule: write_schedule(&result.final_schedule),
    });
    records
}

/// Rebuilds an [`OptimizationResult`] from its report records.
///
/// `meta`, `metrics` and `trace` records are skipped wherever they appear —
/// streams carry a provenance header (and may have metrics snapshots or trace
/// events appended) that is not part of the optimization account.
///
/// # Errors
///
/// Returns a [`FormatError`] if the remaining records are not a `run_start` /
/// `iteration`... / `run_end` sequence or any embedded schedule fails to parse.
pub fn report_to_result(records: &[ReportRecord]) -> Result<OptimizationResult, FormatError> {
    let records: Vec<&ReportRecord> = records
        .iter()
        .filter(|r| {
            !matches!(
                r,
                ReportRecord::Meta { .. }
                    | ReportRecord::Metrics { .. }
                    | ReportRecord::Trace { .. }
            )
        })
        .collect();
    let Some(ReportRecord::RunStart {
        initial_schedule, ..
    }) = records.first()
    else {
        return Err(FormatError::whole_input(
            "run report must start with a run_start record",
        ));
    };
    let Some(ReportRecord::RunEnd { final_schedule, .. }) = records.last() else {
        return Err(FormatError::whole_input(
            "run report must end with a run_end record",
        ));
    };
    let iterations = records[1..records.len() - 1]
        .iter()
        .copied()
        .map(record_to_iteration)
        .collect::<Result<Vec<IterationRecord>, FormatError>>()?;
    Ok(OptimizationResult {
        initial_schedule: parse_schedule(initial_schedule)?,
        final_schedule: parse_schedule(final_schedule)?,
        records: iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt::{PropHunt, PropHuntConfig};
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    #[test]
    fn ler_and_table_records_round_trip() {
        let records = vec![
            ReportRecord::Ler {
                label: "poor".into(),
                p: 3e-3,
                idle: 0.0,
                shots: 4000,
                failures: 37,
                seed: u64::MAX,
                chunk_size: 64,
                decoder: "unionfind".into(),
                noise: "si1000:0.003".into(),
                stop: "max_failures".into(),
                engine: "frames".into(),
                wall_s: 1.25,
                shots_per_sec: 3200.0,
            },
            ReportRecord::Table {
                name: "code_parameters".into(),
                fields: vec![
                    ("code".into(), Json::Str("surface_d3".into())),
                    ("n".into(), Json::UInt(9)),
                    ("d_est".into(), Json::UInt(3)),
                ],
            },
        ];
        let text = write_report(&records);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn optimization_result_round_trips_through_the_report() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let poor = ScheduleSpec::surface_poor(&code, &layout);
        let config = PropHuntConfig {
            iterations: 2,
            samples_per_iteration: 15,
            ..PropHuntConfig::quick(3)
        };
        let seed = config.seed();
        let chunk = config.runtime.chunk_size;
        let prophunt = PropHunt::new(code.clone(), config);
        let result = prophunt.try_optimize(poor).unwrap();
        let records = result_to_report(&result, code.name(), seed, chunk);
        let text = write_report(&records);
        let rebuilt = report_to_result(&parse_report(&text).unwrap()).unwrap();
        assert_eq!(rebuilt, result);
    }

    #[test]
    fn v1_ler_records_parse_with_defaulted_v2_fields() {
        // A line exactly as PR 2's writer emitted it: no decoder/noise/stop/timing.
        let line = "{\"type\":\"ler\",\"label\":\"x\",\"p\":0.003,\"idle\":0.0,\
                    \"shots\":100,\"failures\":3,\"seed\":7,\"chunk_size\":64}";
        let parsed = ReportRecord::from_json_line(line).unwrap();
        let ReportRecord::Ler {
            decoder,
            noise,
            stop,
            engine,
            wall_s,
            shots_per_sec,
            shots,
            ..
        } = parsed
        else {
            panic!("expected a ler record");
        };
        assert_eq!(shots, 100);
        assert_eq!(decoder, "bposd");
        assert_eq!(noise, "");
        assert_eq!(stop, "shots_exhausted");
        assert_eq!(engine, "scalar");
        assert_eq!(wall_s, 0.0);
        assert_eq!(shots_per_sec, 0.0);
    }

    #[test]
    fn v2_ler_records_without_engine_default_to_scalar() {
        // A line exactly as the pre-engine v2 writer emitted it.
        let line = "{\"type\":\"ler\",\"label\":\"x\",\"p\":0.003,\"idle\":0.0,\
                    \"shots\":100,\"failures\":3,\"seed\":7,\"chunk_size\":64,\
                    \"decoder\":\"unionfind\",\"noise\":\"depolarizing:0.003\",\
                    \"stop\":\"max_failures\",\"wall_s\":0.5,\"shots_per_sec\":200.0}";
        let parsed = ReportRecord::from_json_line(line).unwrap();
        let ReportRecord::Ler {
            decoder, engine, ..
        } = parsed
        else {
            panic!("expected a ler record");
        };
        assert_eq!(decoder, "unionfind");
        assert_eq!(engine, "scalar");
    }

    #[test]
    fn ler_constructor_fills_v1_compatible_defaults() {
        let record = ReportRecord::ler("l", 1e-3, 0.0, 10, 1, 2, 64);
        let reparsed = ReportRecord::from_json_line(&record.to_json_line()).unwrap();
        assert_eq!(reparsed, record);
        let ReportRecord::Ler { decoder, stop, .. } = record else {
            panic!("expected a ler record");
        };
        assert_eq!(decoder, "bposd");
        assert_eq!(stop, "shots_exhausted");
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = parse_report("{\"type\":\"ler\"}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("label"));
        let good = ReportRecord::Table {
            name: "t".into(),
            fields: vec![],
        }
        .to_json_line();
        let err = parse_report(&format!("{good}\nnot json\n")).unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_report("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.message.contains("unknown report record type"));
    }

    #[test]
    fn table_writer_skips_reserved_field_keys() {
        let record = ReportRecord::Table {
            name: "t".into(),
            fields: vec![
                ("name".into(), Json::Str("shadow".into())),
                ("type".into(), Json::Str("shadow".into())),
                ("kept".into(), Json::UInt(1)),
            ],
        };
        let line = record.to_json_line();
        assert_eq!(line.matches("\"name\"").count(), 1, "{line}");
        let parsed = ReportRecord::from_json_line(&line).unwrap();
        assert_eq!(
            parsed,
            ReportRecord::Table {
                name: "t".into(),
                fields: vec![("kept".into(), Json::UInt(1))],
            }
        );
    }

    #[test]
    fn search_records_round_trip() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = write_schedule(&ScheduleSpec::surface_hand_designed(&code, &layout));
        let records = vec![
            ReportRecord::SearchStart {
                code: "surface_d3".into(),
                seed: 7,
                chunk_size: 64,
                strategies: vec!["maxsat".into(), "anneal".into()],
                portfolio: 4,
                rounds: 8,
                initial_depth: 6,
                initial_schedule: schedule.clone(),
            },
            ReportRecord::Incumbent {
                round: 0,
                strategy: "initial".into(),
                instance: 0,
                depth: 6,
                improved: false,
                schedule: schedule.clone(),
            },
            ReportRecord::Incumbent {
                round: 1,
                strategy: "hillclimb".into(),
                instance: 3,
                depth: 4,
                improved: true,
                schedule: schedule.clone(),
            },
            ReportRecord::SearchEnd {
                rounds: 8,
                best_depth: 4,
                best_strategy: "hillclimb".into(),
                best_instance: 3,
                final_schedule: schedule.clone(),
            },
        ];
        let text = write_report(&records);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, records);
        // The embedded schedule is a complete prophunt-schedule document.
        let ReportRecord::Incumbent { schedule, .. } = &parsed[2] else {
            panic!("expected an incumbent record");
        };
        parse_schedule(schedule).unwrap();
    }

    #[test]
    fn truncated_incumbent_record_mid_stream_is_rejected_with_its_line() {
        // A stream cut off mid-write: the last line is half a record. The
        // parser must reject it (naming the line) instead of silently
        // accepting the prefix — `prophunt check`'s exit-1 path.
        let good = ReportRecord::Incumbent {
            round: 0,
            strategy: "beam".into(),
            instance: 2,
            depth: 5,
            improved: true,
            schedule: "prophunt-schedule v1\n".into(),
        }
        .to_json_line();
        let truncated = &good[..good.len() / 2];
        let err = parse_report(&format!("{good}\n{truncated}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        // Structurally complete JSON missing a required field is also caught.
        let err = parse_report("{\"type\":\"incumbent\",\"round\":1}\n").unwrap_err();
        assert!(err.message.contains("strategy"), "{}", err.message);
        let err = parse_report(
            "{\"type\":\"incumbent\",\"round\":1,\"strategy\":\"beam\",\"instance\":0,\
             \"depth\":4,\"improved\":1,\"schedule\":\"s\"}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("improved"), "{}", err.message);
    }

    #[test]
    fn malformed_run_reports_are_rejected() {
        assert!(report_to_result(&[]).is_err());
        let only_iter = vec![ReportRecord::Table {
            name: "x".into(),
            fields: vec![],
        }];
        assert!(report_to_result(&only_iter).is_err());
        // A stream that is nothing but provenance has no result to rebuild.
        assert!(report_to_result(&[ReportRecord::meta("0.1.0", 1, 2, 64, "")]).is_err());
    }

    #[test]
    fn meta_and_metrics_records_round_trip() {
        let records = vec![
            ReportRecord::meta("0.1.0", 7, 4, 64, "frames"),
            ReportRecord::Metrics {
                counters: vec![("ler.chunks".into(), 32), ("ler.shots".into(), 2048)],
                gauges: vec![("runtime.workers.peak".into(), 4)],
                histograms: vec![MetricsHistogram {
                    name: "ler.frames.decode.ns".into(),
                    count: 3,
                    sum: 300,
                    buckets: vec![(5, 2), (7, 1)],
                }],
            },
        ];
        let text = write_report(&records);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, records);
        // The deterministic subset is one self-contained JSON object.
        assert!(text.contains("\"counters\":{\"ler.chunks\":32,\"ler.shots\":2048}"));
    }

    #[test]
    fn lint_records_round_trip_and_tolerate_missing_suppression() {
        let records = vec![
            ReportRecord::Lint {
                file: "crates/decoders/src/ler.rs".into(),
                line: 411,
                col: 22,
                rule: "D1-no-wall-clock".into(),
                message: "Instant::now() on the deterministic path".into(),
                suppressed_by: "timing seam: feeds the obs stage histograms".into(),
            },
            ReportRecord::Lint {
                file: "crates/qec/src/css.rs".into(),
                line: 3,
                col: 1,
                rule: "D5-forbid-unsafe".into(),
                message: "crate root is missing #![forbid(unsafe_code)]".into(),
                suppressed_by: String::new(),
            },
        ];
        let text = write_report(&records);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, records);
        // suppressed_by is optional on parse for older emitters.
        let bare = r#"{"type":"lint","file":"a.rs","line":1,"col":2,"rule":"D4-no-ambient-rng","message":"m"}"#;
        let rec = ReportRecord::from_json_line(bare).unwrap();
        assert_eq!(
            rec,
            ReportRecord::Lint {
                file: "a.rs".into(),
                line: 1,
                col: 2,
                rule: "D4-no-ambient-rng".into(),
                message: "m".into(),
                suppressed_by: String::new(),
            }
        );
    }

    #[test]
    fn metrics_from_snapshot_preserves_class_separation() {
        let reg = prophunt_obs::Registry::new();
        reg.counter("ler.shots").add(100);
        reg.gauge("runtime.workers.peak").set(8);
        reg.histogram("ler.frames.decode.ns").record(1000);
        let record = ReportRecord::metrics_from_snapshot(&reg.snapshot());
        let reparsed = ReportRecord::from_json_line(&record.to_json_line()).unwrap();
        assert_eq!(reparsed, record);
        let ReportRecord::Metrics {
            counters,
            gauges,
            histograms,
        } = reparsed
        else {
            panic!("expected a metrics record");
        };
        assert_eq!(counters, vec![("ler.shots".to_string(), 100)]);
        assert_eq!(gauges, vec![("runtime.workers.peak".to_string(), 8)]);
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms[0].count, 1);
        assert_eq!(histograms[0].sum, 1000);
        assert_eq!(histograms[0].quantile(1.0), 1023);
    }

    #[test]
    fn bare_meta_records_parse_with_all_fields_defaulted() {
        let parsed = ReportRecord::from_json_line("{\"type\":\"meta\"}").unwrap();
        assert_eq!(parsed, ReportRecord::meta("", 0, 0, 0, ""));
        // Partial meta (a future emitter with fewer fields) also parses.
        let parsed =
            ReportRecord::from_json_line("{\"type\":\"meta\",\"seed\":9,\"engine\":\"scalar\"}")
                .unwrap();
        assert_eq!(parsed, ReportRecord::meta("", 9, 0, 0, "scalar"));
    }

    #[test]
    fn truncated_metrics_record_mid_stream_is_rejected_with_its_line() {
        // Mirrors the incumbent truncation regression: a metrics line cut off
        // mid-write must fail parse_report with its line number.
        let good = ReportRecord::Metrics {
            counters: vec![("search.proposals".into(), 64)],
            gauges: vec![],
            histograms: vec![MetricsHistogram {
                name: "search.round.ns".into(),
                count: 4,
                sum: 4000,
                buckets: vec![(10, 4)],
            }],
        }
        .to_json_line();
        let truncated = &good[..good.len() / 2];
        let err = parse_report(&format!("{good}\n{truncated}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        // Structurally complete JSON with mistyped fields is also caught.
        let err =
            parse_report("{\"type\":\"metrics\",\"counters\":{\"a\":\"oops\"}}\n").unwrap_err();
        assert!(err.message.contains("unsigned integer"), "{}", err.message);
        let err = parse_report(
            "{\"type\":\"metrics\",\"histograms\":[{\"name\":\"h\",\"count\":1,\"sum\":2,\
             \"buckets\":[[1]]}]}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("buckets"), "{}", err.message);
    }

    #[test]
    fn truncated_trace_record_mid_stream_is_rejected_with_its_line() {
        // Mirrors the incumbent/metrics truncation regressions: a trace line
        // cut off mid-write must fail parse_report with its line number.
        let good = ReportRecord::Trace {
            name: "runtime.task".into(),
            cat: "runtime".into(),
            kind: "span".into(),
            tid: 2,
            id: 17,
            parent: 16,
            ts: 1_000_000,
            dur: 250_000,
            args: vec![("task".into(), 4), ("worker".into(), 2)],
        }
        .to_json_line();
        let truncated = &good[..good.len() / 2];
        let err = parse_report(&format!("{good}\n{truncated}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        // Structurally complete JSON missing the one required field is caught.
        let err = parse_report("{\"type\":\"trace\",\"cat\":\"runtime\"}\n").unwrap_err();
        assert!(err.message.contains("name"), "{}", err.message);
        // Mistyped args are caught too.
        let err = parse_report("{\"type\":\"trace\",\"name\":\"t\",\"args\":{\"a\":\"x\"}}\n")
            .unwrap_err();
        assert!(err.message.contains("unsigned integer"), "{}", err.message);
    }

    #[test]
    fn meta_cmdline_is_optional_and_omitted_when_empty() {
        // Without a cmdline the line is byte-identical to the pre-trace-v1
        // writer's output: no "cmdline" key at all.
        let bare = ReportRecord::meta("0.1.0", 7, 4, 64, "frames");
        assert!(!bare.to_json_line().contains("cmdline"));
        assert_eq!(
            ReportRecord::from_json_line(&bare.to_json_line()).unwrap(),
            bare
        );
        // With one, it round-trips.
        let full = ReportRecord::meta("0.1.0", 7, 4, 64, "frames")
            .with_cmdline("prophunt ler --code surface:3 --trace t.jsonl");
        let line = full.to_json_line();
        assert!(line.contains("\"cmdline\":\"prophunt ler"), "{line}");
        assert_eq!(ReportRecord::from_json_line(&line).unwrap(), full);
        // Older readers: the parser defaults a missing cmdline to empty.
        let parsed = ReportRecord::from_json_line("{\"type\":\"meta\",\"seed\":1}").unwrap();
        let ReportRecord::Meta { cmdline, .. } = parsed else {
            panic!("expected a meta record");
        };
        assert_eq!(cmdline, "");
    }

    #[test]
    fn report_to_result_skips_provenance_and_metrics_records() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let poor = ScheduleSpec::surface_poor(&code, &layout);
        let config = PropHuntConfig {
            iterations: 1,
            samples_per_iteration: 10,
            ..PropHuntConfig::quick(3)
        };
        let seed = config.seed();
        let chunk = config.runtime.chunk_size;
        let prophunt = PropHunt::new(code.clone(), config);
        let result = prophunt.try_optimize(poor).unwrap();
        let mut records = result_to_report(&result, code.name(), seed, chunk);
        records.insert(0, ReportRecord::meta("0.1.0", seed, 4, chunk as u64, ""));
        records.push(ReportRecord::Metrics {
            counters: vec![("session.jobs".into(), 1)],
            gauges: vec![],
            histograms: vec![],
        });
        let rebuilt = report_to_result(&parse_report(&write_report(&records)).unwrap()).unwrap();
        assert_eq!(rebuilt, result);
    }
}
