//! `prophunt search` — strategy-portfolio schedule search as a `SearchJob`
//! through the `prophunt-api` Session, streaming one `incumbent` JSON-lines
//! record per synchronized round (with per-strategy provenance) and writing
//! the best schedule as a file.

use crate::args::{CliError, Flags};
use crate::common::{
    load_code, load_schedule, meta_record, noise_from_flags, read_file, runtime_from_flags,
    session_from_flags, write_file, write_metrics_file, write_trace_files,
};
use prophunt_api::{Event, ExperimentSpec, ScheduleSource, SearchJob, StrategyKind};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{parse_report, parse_schedule, write_schedule};
use std::io::Write as _;

pub const USAGE: &str = "\
prophunt search --code <family-or-spec-file> [options]

  --code            code family (surface:3, ...) or path to a prophunt-code spec file
  --schedule        starting schedule: coloration (default), hand, or a schedule file
  --resume          re-seed the portfolio from a previous search report: the run
                    starts from the last `incumbent` record's embedded schedule
                    (mutually exclusive with --schedule)
  --strategies      comma-separated strategy mix (default: all four)
                    maxsat     MaxSAT-guided greedy descent (the PropHunt optimizer)
                    anneal     simulated annealing over coloration swaps
                    beam       greedy beam search over orderings
                    hillclimb  random-restart hill climbing
  --portfolio-size  parallel strategy instances; the mix is cycled to fill it
                    (default: one instance per listed strategy)
  --rounds          synchronized portfolio rounds (default 8)
  --proposals       mutation proposals per instance per round (default 24)
  --samples         MaxSAT-descent subgraph samples per iteration (default 20)
  --memory-rounds   syndrome-measurement rounds the MaxSAT arm analyses (default 3)
  --p               physical error rate for the MaxSAT arm (default 0.001)
  --idle            idle error strength for the MaxSAT arm (default 0)
  --noise           full noise spec for the MaxSAT arm (conflicts with --p/--idle)
  --seed            base RNG seed (default 0)
  --threads         worker threads (default 4; wall-clock only)
  --chunk-size      deterministic chunk size (default 64)
  --out-schedule    where to write the best schedule (default searched.schedule)
  --report          write JSON-lines incumbent records to this file
                    (default: stream them to stdout)
  --metrics         write a meta + metrics JSON-lines pair (session registry
                    snapshot: search counters, span histograms) to this file
  --trace           record a span-event trace of the run — including the
                    deterministic per-round / per-arm convergence diagnostics —
                    and write it to this file (JSON-lines `trace` records) plus
                    a Chrome trace-event sibling at <file>.chrome.json

The report stream starts with a `meta` provenance record; parsers treat it as
optional. The result is a pure function of (--seed, --chunk-size): the best
schedule and the whole incumbent record sequence are bit-identical at any
--threads.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "code",
            "schedule",
            "resume",
            "strategies",
            "portfolio-size",
            "rounds",
            "proposals",
            "samples",
            "memory-rounds",
            "p",
            "idle",
            "noise",
            "seed",
            "threads",
            "chunk-size",
            "out-schedule",
            "report",
            "metrics",
            "trace",
        ],
    )?;
    if flags.get("schedule").is_some() && flags.get("resume").is_some() {
        return Err(CliError::usage(
            "--schedule and --resume are mutually exclusive",
        ));
    }
    let resolved = load_code(flags.require("code")?)?;
    let initial = match flags.get("resume") {
        Some(path) => {
            let records = parse_report(&read_file(path)?)
                .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
            let last_incumbent = records
                .iter()
                .rev()
                .find_map(|record| match record {
                    ReportRecord::Incumbent { schedule, .. } => Some(schedule.clone()),
                    _ => None,
                })
                .ok_or_else(|| {
                    CliError::failure(format!(
                        "{path}: no incumbent records to resume from (is this a search report?)"
                    ))
                })?;
            let schedule = parse_schedule(&last_incumbent)
                .map_err(|e| CliError::failure(format!("{path}: embedded schedule: {e}")))?;
            schedule.validate_for_code(&resolved.code).map_err(|e| {
                CliError::failure(format!(
                    "{path}: resumed schedule is not valid for this code: {e}"
                ))
            })?;
            schedule
        }
        None => load_schedule(flags.get("schedule"), &resolved)?,
    };
    let memory_rounds = flags.num("memory-rounds", 3usize)?;
    if memory_rounds == 0 {
        return Err(CliError::usage("--memory-rounds must be at least 1"));
    }
    let strategies =
        StrategyKind::parse_list(flags.get("strategies").unwrap_or("")).map_err(CliError::usage)?;
    let portfolio_size = flags.num("portfolio-size", strategies.len())?;
    let rounds = flags.num("rounds", 8usize)?;
    if portfolio_size == 0 || rounds == 0 {
        return Err(CliError::usage(
            "--portfolio-size and --rounds must be at least 1",
        ));
    }
    let runtime = runtime_from_flags(&flags)?;
    let noise = noise_from_flags(&flags)?;

    let code_name = resolved.code.name().to_string();
    let code_display = resolved.code.to_string();
    let spec = ExperimentSpec::builder()
        .resolved_code(resolved)
        .schedule(ScheduleSource::Explicit(initial.clone()))
        .noise(noise)
        .rounds(memory_rounds)
        .build()
        .map_err(CliError::failure)?;
    let job = SearchJob::new(spec)
        .with_strategies(strategies.clone())
        .with_portfolio_size(portfolio_size)
        .with_rounds(rounds)
        .with_proposals(flags.num("proposals", 24usize)?)
        .with_samples(flags.num("samples", 20usize)?);

    let mut sink: Box<dyn std::io::Write> = match flags.get("report") {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| CliError::failure(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout()),
    };
    let mut emit = |record: &ReportRecord| {
        writeln!(sink, "{}", record.to_json_line())
            .and_then(|()| sink.flush())
            .map_err(|e| CliError::failure(format!("cannot write report record: {e}")))
    };

    let meta = meta_record(&runtime, "");
    emit(&meta)?;
    emit(&ReportRecord::SearchStart {
        code: code_name,
        seed: runtime.seed,
        chunk_size: runtime.chunk_size as u64,
        strategies: strategies.iter().map(|s| s.name().to_string()).collect(),
        portfolio: portfolio_size as u64,
        rounds: rounds as u64,
        initial_depth: initial
            .depth()
            .map_err(|e| CliError::failure(format!("initial schedule has no layout: {e}")))?
            as u64,
        initial_schedule: write_schedule(&initial),
    })?;

    let (mut session, trace) = session_from_flags(&flags, runtime);
    let mut stream_error: Option<CliError> = None;
    let outcome = session
        .run_search(&job, |event| {
            if let Event::Incumbent {
                round,
                strategy,
                instance,
                depth,
                improved,
                schedule,
            } = event
            {
                if stream_error.is_none() {
                    stream_error = emit(&ReportRecord::Incumbent {
                        round: *round as u64,
                        strategy: strategy.clone(),
                        instance: *instance as u64,
                        depth: *depth as u64,
                        improved: *improved,
                        schedule: write_schedule(schedule),
                    })
                    .err();
                }
            }
        })
        .map_err(|e| CliError::failure(format!("search failed: {e}")))?;
    if let Some(err) = stream_error {
        return Err(err);
    }
    let best = &outcome.result.best;

    emit(&ReportRecord::SearchEnd {
        rounds: outcome.result.rounds.len() as u64,
        best_depth: best.depth as u64,
        best_strategy: best.strategy.to_string(),
        best_instance: best.instance as u64,
        final_schedule: write_schedule(&best.schedule),
    })?;

    let out_schedule = flags.get("out-schedule").unwrap_or("searched.schedule");
    write_file(out_schedule, &write_schedule(&best.schedule))?;
    if let Some(path) = flags.get("metrics") {
        write_metrics_file(path, &meta, &session.metrics())?;
    }
    if let Some(sink) = &trace {
        write_trace_files(sink, &meta)?;
    }
    eprintln!(
        "searched {}: {} rounds x {} instances ({}), CNOT depth {} -> {} (best from {}[{}] in \
         round {}); schedule written to {}",
        code_display,
        outcome.result.rounds.len(),
        portfolio_size,
        strategies
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(","),
        outcome.result.initial_depth,
        best.depth,
        best.strategy,
        best.instance,
        best.round,
        out_schedule
    );
    Ok(())
}
