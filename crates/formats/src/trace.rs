//! Trace-v1 interchange: report-record conversion and Chrome trace-event
//! export for `prophunt-obs` trace streams.
//!
//! A drained [`prophunt_obs::TraceLog`] has two serializations:
//!
//! * **Report records** ([`trace_event_to_record`]) — one
//!   [`ReportRecord::Trace`] JSON line per event, appended to the run's
//!   report stream so `prophunt check`, `prophunt trace` and the report
//!   toolchain all read one format. Exact `u64` nanoseconds, lossless.
//! * **Chrome trace-event JSON** ([`write_chrome_trace`]) — a
//!   `{"traceEvents": [...]}` document loadable by `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev). Spans become `"ph":"X"` complete
//!   events and instants `"ph":"i"`, with timestamps in fractional
//!   microseconds per the format. Execution lanes live in pid 0 (one `tid`
//!   per runtime worker, 0 = control thread); deterministic search
//!   diagnostics (`cat == "diag"`) live in pid 1 with one lane per portfolio
//!   slot, so they never clutter the execution timeline.

use crate::json::Json;
use crate::report::ReportRecord;
use prophunt_obs::{TraceEvent, DIAG_CATEGORY};

/// Converts one obs trace event into its [`ReportRecord::Trace`] line.
#[must_use]
pub fn trace_event_to_record(event: &TraceEvent) -> ReportRecord {
    ReportRecord::Trace {
        name: event.name.clone(),
        cat: event.cat.clone(),
        kind: event.kind.as_str().to_string(),
        tid: event.tid,
        id: event.id,
        parent: event.parent,
        ts: event.ts_ns,
        dur: event.dur_ns,
        args: event.args.clone(),
    }
}

/// Process id of execution-timeline lanes in the Chrome export.
pub const CHROME_PID_EXECUTION: u64 = 0;
/// Process id of deterministic diagnostic lanes in the Chrome export.
pub const CHROME_PID_DIAG: u64 = 1;

fn micros(ns: u64) -> Json {
    // Chrome trace timestamps are microseconds; fractional values keep full
    // nanosecond resolution.
    Json::Float(ns as f64 / 1000.0)
}

fn args_obj(args: &[(String, u64)]) -> Json {
    Json::Object(
        args.iter()
            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
            .collect(),
    )
}

/// Serializes trace events as a Chrome trace-event / Perfetto-compatible JSON
/// document (object form, `{"traceEvents": [...]}`).
///
/// Span events become `"ph":"X"` complete events and instants `"ph":"i"`
/// (thread-scoped). Diag events are placed in their own process
/// ([`CHROME_PID_DIAG`]) so search diagnostics get lanes separate from the
/// execution timeline. Thread-name metadata records label every lane.
#[must_use]
pub fn write_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 8);
    let mut lanes: Vec<(u64, u64)> = Vec::new();
    for event in events {
        let diag = event.cat == DIAG_CATEGORY;
        let pid = if diag {
            CHROME_PID_DIAG
        } else {
            CHROME_PID_EXECUTION
        };
        if !lanes.contains(&(pid, event.tid)) {
            lanes.push((pid, event.tid));
        }
        let mut pairs = vec![
            ("name".into(), Json::Str(event.name.clone())),
            ("cat".into(), Json::Str(event.cat.clone())),
        ];
        match event.kind {
            prophunt_obs::TraceKind::Span => {
                pairs.push(("ph".into(), Json::Str("X".into())));
                pairs.push(("ts".into(), micros(event.ts_ns)));
                pairs.push(("dur".into(), micros(event.dur_ns)));
            }
            prophunt_obs::TraceKind::Instant => {
                pairs.push(("ph".into(), Json::Str("i".into())));
                pairs.push(("ts".into(), micros(event.ts_ns)));
                // Thread-scoped instant: renders as a tick on its lane.
                pairs.push(("s".into(), Json::Str("t".into())));
            }
        }
        pairs.push(("pid".into(), Json::UInt(pid)));
        pairs.push(("tid".into(), Json::UInt(event.tid)));
        if !event.args.is_empty() {
            pairs.push(("args".into(), args_obj(&event.args)));
        }
        out.push(Json::Object(pairs));
    }
    // Name every process and lane so the viewer shows meaningful rows.
    lanes.sort_unstable();
    let meta = |name: &str, pid: u64, tid: u64, value: &str| {
        Json::Object(vec![
            ("name".into(), Json::Str(name.into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::UInt(pid)),
            ("tid".into(), Json::UInt(tid)),
            (
                "args".into(),
                Json::Object(vec![("name".into(), Json::Str(value.into()))]),
            ),
        ])
    };
    let mut pids: Vec<u64> = lanes.iter().map(|&(pid, _)| pid).collect();
    pids.dedup();
    for pid in pids {
        let label = if pid == CHROME_PID_DIAG {
            "search diagnostics"
        } else {
            "execution"
        };
        out.push(meta("process_name", pid, 0, label));
    }
    for (pid, tid) in lanes {
        let label = if pid == CHROME_PID_DIAG {
            format!("arm {tid}")
        } else if tid == 0 {
            "control".to_string()
        } else {
            format!("worker {tid}")
        };
        out.push(meta("thread_name", pid, tid, &label));
    }
    Json::Object(vec![("traceEvents".into(), Json::Array(out))]).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{parse_report, write_report};
    use prophunt_obs::{TraceKind, Tracer};

    fn sample_events() -> Vec<TraceEvent> {
        let tracer = Tracer::new();
        {
            let mut call = tracer.span("runtime.call", "runtime");
            call.arg("tasks", 2);
            let task = tracer.span_child_of("runtime.task", "runtime", call.id());
            task.finish();
            tracer.instant("checkpoint", "runtime", &[("round", 1)]);
        }
        tracer.diag("search.round", 0, &[("round", 0), ("depth", 5)]);
        tracer.drain().events
    }

    #[test]
    fn trace_events_round_trip_through_report_records() {
        let events = sample_events();
        let records: Vec<ReportRecord> = events.iter().map(trace_event_to_record).collect();
        let text = write_report(&records);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, records);
        let ReportRecord::Trace {
            name,
            kind,
            ts,
            dur,
            args,
            ..
        } = &parsed[0]
        else {
            panic!("expected a trace record");
        };
        // Diag events sort first (timeless), so record 0 is the search diag.
        assert_eq!(name, "search.round");
        assert_eq!(kind, "instant");
        assert_eq!((*ts, *dur), (0, 0));
        assert_eq!(
            args,
            &vec![("round".to_string(), 0), ("depth".to_string(), 5)]
        );
    }

    #[test]
    fn bare_trace_records_parse_with_defaults() {
        let parsed = ReportRecord::from_json_line("{\"type\":\"trace\",\"name\":\"x\"}").unwrap();
        let ReportRecord::Trace {
            name,
            cat,
            kind,
            tid,
            id,
            parent,
            ts,
            dur,
            args,
        } = parsed
        else {
            panic!("expected a trace record");
        };
        assert_eq!(name, "x");
        assert_eq!(cat, "");
        assert_eq!(kind, "span");
        assert_eq!((tid, id, parent, ts, dur), (0, 0, 0, 0, 0));
        assert!(args.is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_phases_and_lanes() {
        let events = sample_events();
        let text = write_chrome_trace(&events);
        let doc = Json::parse(&text).unwrap();
        let rows = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 4 events + process/thread metadata.
        assert!(rows.len() >= 4 + 3);
        let phase_of = |name: &str| {
            rows.iter()
                .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|r| r.get("ph"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(phase_of("runtime.call").as_deref(), Some("X"));
        assert_eq!(phase_of("checkpoint").as_deref(), Some("i"));
        assert_eq!(phase_of("search.round").as_deref(), Some("i"));
        // Diag rows land in the diagnostics process, timeline rows in pid 0.
        for row in rows {
            let Some(cat) = row.get("cat").and_then(Json::as_str) else {
                continue; // metadata rows
            };
            let pid = row.get("pid").and_then(Json::as_u64).unwrap();
            if cat == DIAG_CATEGORY {
                assert_eq!(pid, CHROME_PID_DIAG);
            } else {
                assert_eq!(pid, CHROME_PID_EXECUTION);
            }
        }
        // Lane labels exist for both processes.
        let names: Vec<&str> = rows
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|r| {
                r.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"execution"));
        assert!(names.contains(&"search diagnostics"));
        assert!(names.contains(&"control"));
        assert!(names.contains(&"arm 0"));
    }

    #[test]
    fn span_kinds_map_to_complete_events_with_microsecond_times() {
        let event = TraceEvent {
            name: "t".into(),
            cat: "c".into(),
            kind: TraceKind::Span,
            tid: 3,
            id: 9,
            parent: 0,
            ts_ns: 1500,
            dur_ns: 2500,
            args: vec![],
        };
        let text = write_chrome_trace(&[event]);
        assert!(text.contains("\"ts\":1.5"), "{text}");
        assert!(text.contains("\"dur\":2.5"), "{text}");
        assert!(text.contains("\"tid\":3"), "{text}");
    }
}
