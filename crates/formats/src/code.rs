//! The CSS code spec text format and the code-family mini-language.
//!
//! A code spec is a self-contained description of a CSS code:
//!
//! ```text
//! prophunt-code v1
//! name surface_d3
//! n 9
//! distance 3
//! hx 110110000
//! hz 011011000
//! lx 000111000
//! lz 010010010
//! ```
//!
//! * `n` is the number of data qubits; every matrix row must have exactly `n` bits.
//! * `hx` / `hz` rows are the X / Z parity checks (zero rows of either kind are
//!   expressed by simply having no lines of that key — `n` keeps the width known).
//! * `lx` / `lz` rows are optional; when absent, logical operators are derived at
//!   [`CodeSpec::to_code`] time.
//! * `distance` is optional. `#` comments and blank lines are ignored.
//!
//! The *family* mini-language (`surface:3`, `steane`, `repetition:5`,
//! `generalized_bicycle:9:0,1:0,3`, `bivariate_bicycle:6:6:3.0,0.1,0.2:0.3,1.0,2.0`)
//! names the constructors of `prophunt-qec`, so CLI users never have to write the
//! matrices of a standard code by hand.

use crate::error::{parse_usize, tokens, FormatError};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_gf2::BitMatrix;
use prophunt_qec::product::{try_bivariate_bicycle, try_generalized_bicycle, BivariateTerm};
use prophunt_qec::small::{quantum_repetition_code, steane_code};
use prophunt_qec::surface::{rotated_surface_code_with_layout, SurfaceLayout};
use prophunt_qec::CssCode;
use std::fmt::Write as _;

/// The header line every code spec file starts with.
pub const CODE_SPEC_HEADER: &str = "prophunt-code v1";

/// The syntactic content of a code spec file.
///
/// This is deliberately a plain data type, separate from [`CssCode`]: parsing and
/// writing round-trip a `CodeSpec` exactly (including specs that do not describe a
/// valid CSS code), while [`CodeSpec::to_code`] performs the semantic validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSpec {
    /// The code name.
    pub name: String,
    /// The number of data qubits (width of every matrix row).
    pub n: usize,
    /// The designed distance, if known.
    pub distance: Option<usize>,
    /// Rows of `H_X` as 0/1 bytes.
    pub hx: Vec<Vec<u8>>,
    /// Rows of `H_Z` as 0/1 bytes.
    pub hz: Vec<Vec<u8>>,
    /// Rows of `L_X` as 0/1 bytes (empty = derive at conversion time).
    pub lx: Vec<Vec<u8>>,
    /// Rows of `L_Z` as 0/1 bytes (empty = derive at conversion time).
    pub lz: Vec<Vec<u8>>,
}

fn matrix_rows(m: &BitMatrix) -> Vec<Vec<u8>> {
    m.rows_iter()
        .map(|row| (0..m.num_cols()).map(|c| u8::from(row.get(c))).collect())
        .collect()
}

fn rows_to_matrix(rows: &[Vec<u8>], n: usize) -> BitMatrix {
    let refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
    if rows.is_empty() {
        BitMatrix::zeros(0, n)
    } else {
        BitMatrix::from_rows_u8(&refs)
    }
}

impl CodeSpec {
    /// Extracts the spec of an existing code (always includes the logical operators,
    /// so the round-trip preserves the exact logical basis).
    pub fn from_code(code: &CssCode) -> CodeSpec {
        CodeSpec {
            name: code.name().to_string(),
            n: code.n(),
            distance: code.known_distance(),
            hx: matrix_rows(code.hx()),
            hz: matrix_rows(code.hz()),
            lx: matrix_rows(code.lx()),
            lz: matrix_rows(code.lz()),
        }
    }

    /// Converts the spec into a validated [`CssCode`].
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] wrapping the underlying
    /// [`prophunt_qec::CssCodeError`] when the matrices do not describe a valid CSS
    /// code, or when only one of `lx`/`lz` is present.
    pub fn to_code(&self) -> Result<CssCode, FormatError> {
        let hx = rows_to_matrix(&self.hx, self.n);
        let hz = rows_to_matrix(&self.hz, self.n);
        let code = match self.distance {
            Some(d) => CssCode::with_known_distance(self.name.clone(), hx, hz, d),
            None => CssCode::new(self.name.clone(), hx, hz),
        }
        .map_err(|e| FormatError::whole_input(format!("invalid code spec: {e}")))?;
        match (self.lx.is_empty(), self.lz.is_empty()) {
            (true, true) => Ok(code),
            (false, false) => code
                .with_logicals(
                    rows_to_matrix(&self.lx, self.n),
                    rows_to_matrix(&self.lz, self.n),
                )
                .map_err(|e| {
                    FormatError::whole_input(format!("invalid logical operators in code spec: {e}"))
                }),
            _ => Err(FormatError::whole_input(
                "code spec provides only one of lx/lz; give both or neither",
            )),
        }
    }
}

/// Serializes a code spec to the `prophunt-code v1` text format.
pub fn write_code_spec(spec: &CodeSpec) -> String {
    let mut out = String::new();
    out.push_str(CODE_SPEC_HEADER);
    out.push('\n');
    let _ = writeln!(out, "name {}", spec.name);
    let _ = writeln!(out, "n {}", spec.n);
    if let Some(d) = spec.distance {
        let _ = writeln!(out, "distance {d}");
    }
    for (key, rows) in [
        ("hx", &spec.hx),
        ("hz", &spec.hz),
        ("lx", &spec.lx),
        ("lz", &spec.lz),
    ] {
        for row in rows.iter() {
            let _ = write!(out, "{key} ");
            for &bit in row {
                out.push(if bit != 0 { '1' } else { '0' });
            }
            out.push('\n');
        }
    }
    out
}

/// Parses the `prophunt-code v1` text format.
///
/// # Errors
///
/// Returns a located [`FormatError`] for a missing/wrong header, unknown keys,
/// malformed bit rows, rows whose width disagrees with `n`, duplicate header fields,
/// or a missing `name`/`n`.
pub fn parse_code_spec(input: &str) -> Result<CodeSpec, FormatError> {
    let mut lines = input.lines().enumerate();
    // Header: first non-blank, non-comment line.
    let mut header: Option<(usize, &str)> = None;
    for (idx, raw) in lines.by_ref() {
        let stripped = strip_comment(raw).trim();
        if !stripped.is_empty() {
            header = Some((idx + 1, stripped));
            break;
        }
    }
    match header {
        Some((_, h)) if h == CODE_SPEC_HEADER => {}
        Some((line, h)) => {
            return Err(FormatError::at_line(
                line,
                format!("expected header {CODE_SPEC_HEADER:?}, got {h:?}"),
            ))
        }
        None => return Err(FormatError::whole_input("empty code spec file")),
    }

    let mut name: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut distance: Option<usize> = None;
    let mut hx = Vec::new();
    let mut hz = Vec::new();
    let mut lx = Vec::new();
    let mut lz = Vec::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let toks = tokens(line);
        let Some(&(col, key)) = toks.first() else {
            continue;
        };
        match key {
            "name" => {
                if name.is_some() {
                    return Err(FormatError::at(line_no, col, "duplicate name field"));
                }
                let rest = line[col - 1 + "name".len()..].trim();
                if rest.is_empty() {
                    return Err(FormatError::at(line_no, col, "name field needs a value"));
                }
                name = Some(rest.to_string());
            }
            "n" => {
                if n.is_some() {
                    return Err(FormatError::at(line_no, col, "duplicate n field"));
                }
                let &(vcol, v) = toks
                    .get(1)
                    .ok_or_else(|| FormatError::at(line_no, col, "n field needs a value"))?;
                n = Some(parse_usize(v, line_no, vcol)?);
            }
            "distance" => {
                if distance.is_some() {
                    return Err(FormatError::at(line_no, col, "duplicate distance field"));
                }
                let &(vcol, v) = toks
                    .get(1)
                    .ok_or_else(|| FormatError::at(line_no, col, "distance field needs a value"))?;
                distance = Some(parse_usize(v, line_no, vcol)?);
            }
            "hx" | "hz" | "lx" | "lz" => {
                let &(vcol, bits) = toks.get(1).ok_or_else(|| {
                    FormatError::at(line_no, col, format!("{key} row needs a bit string"))
                })?;
                if toks.len() > 2 {
                    return Err(FormatError::at(
                        line_no,
                        toks[2].0,
                        format!("unexpected extra token after {key} row"),
                    ));
                }
                let mut row = Vec::with_capacity(bits.len());
                for (i, c) in bits.char_indices() {
                    match c {
                        '0' => row.push(0u8),
                        '1' => row.push(1u8),
                        _ => {
                            return Err(FormatError::at(
                                line_no,
                                vcol + i,
                                format!("bit rows may only contain 0 and 1, got {c:?}"),
                            ))
                        }
                    }
                }
                let expected = n.ok_or_else(|| {
                    FormatError::at(line_no, col, "matrix rows must come after the n field")
                })?;
                if row.len() != expected {
                    return Err(FormatError::at(
                        line_no,
                        vcol,
                        format!("row has {} bits but n is {expected}", row.len()),
                    ));
                }
                match key {
                    "hx" => hx.push(row),
                    "hz" => hz.push(row),
                    "lx" => lx.push(row),
                    _ => lz.push(row),
                }
            }
            other => {
                return Err(FormatError::at(
                    line_no,
                    col,
                    format!("unknown code spec key {other:?}"),
                ))
            }
        }
    }

    Ok(CodeSpec {
        name: name.ok_or_else(|| FormatError::whole_input("code spec is missing a name field"))?,
        n: n.ok_or_else(|| FormatError::whole_input("code spec is missing an n field"))?,
        distance,
        hx,
        hz,
        lx,
        lz,
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// A code resolved from the family mini-language, with the planar layout when the
/// family has one (surface codes — needed for hand-designed schedules).
#[derive(Debug, Clone)]
pub struct ResolvedCode {
    /// The constructed code.
    pub code: CssCode,
    /// The surface-code layout, when the family is `surface`.
    pub layout: Option<SurfaceLayout>,
}

impl ResolvedCode {
    /// Returns the hand-designed schedule when the family has one.
    pub fn hand_designed_schedule(&self) -> Option<ScheduleSpec> {
        self.layout
            .as_ref()
            .map(|layout| ScheduleSpec::surface_hand_designed(&self.code, layout))
    }
}

/// Resolves a code-family string (`surface:3`, `steane`, `repetition:5`,
/// `generalized_bicycle:<l>:<a exps>:<b exps>`,
/// `bivariate_bicycle:<l>:<m>:<a terms>:<b terms>`) into a constructed code.
///
/// Exponent lists are comma-separated integers (`0,1`); bivariate terms are
/// `x.y` pairs (`3.0,0.1,0.2` = `x³ + y + y²`).
///
/// # Errors
///
/// Returns a [`FormatError`] (without line information — family strings are single
/// tokens) describing the malformed field or the constructor failure.
pub fn resolve_family(spec: &str) -> Result<ResolvedCode, FormatError> {
    let err = |message: String| FormatError::whole_input(message);
    let mut parts = spec.split(':');
    let family = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let arity = |want: usize, usage: &str| -> Result<(), FormatError> {
        if rest.len() == want {
            Ok(())
        } else {
            Err(err(format!("family {family:?} expects the form {usage:?}")))
        }
    };
    match family {
        "surface" => {
            arity(1, "surface:<distance>")?;
            let d = rest[0].parse::<usize>().map_err(|_| {
                err(format!(
                    "surface distance must be an integer, got {:?}",
                    rest[0]
                ))
            })?;
            if d < 2 {
                return Err(err(format!("surface distance must be >= 2, got {d}")));
            }
            let (code, layout) = rotated_surface_code_with_layout(d);
            Ok(ResolvedCode {
                code,
                layout: Some(layout),
            })
        }
        "steane" => {
            arity(0, "steane")?;
            Ok(ResolvedCode {
                code: steane_code(),
                layout: None,
            })
        }
        "repetition" => {
            arity(1, "repetition:<n>")?;
            let n = rest[0].parse::<usize>().map_err(|_| {
                err(format!(
                    "repetition length must be an integer, got {:?}",
                    rest[0]
                ))
            })?;
            if n < 2 {
                return Err(err(format!("repetition length must be >= 2, got {n}")));
            }
            Ok(ResolvedCode {
                code: quantum_repetition_code(n),
                layout: None,
            })
        }
        "generalized_bicycle" => {
            arity(3, "generalized_bicycle:<l>:<a exps>:<b exps>")?;
            let l = rest[0].parse::<usize>().map_err(|_| {
                err(format!(
                    "circulant size must be an integer, got {:?}",
                    rest[0]
                ))
            })?;
            if l == 0 {
                return Err(err("circulant size must be >= 1".to_string()));
            }
            let a = parse_exponents(rest[1])?;
            let b = parse_exponents(rest[2])?;
            let name = format!("gb_l{l}");
            try_generalized_bicycle(l, &a, &b, &name)
                .map(|code| ResolvedCode { code, layout: None })
                .map_err(|e| err(format!("generalized_bicycle construction failed: {e}")))
        }
        "bivariate_bicycle" => {
            arity(4, "bivariate_bicycle:<l>:<m>:<a terms>:<b terms>")?;
            let l = rest[0].parse::<usize>().map_err(|_| {
                err(format!(
                    "group size l must be an integer, got {:?}",
                    rest[0]
                ))
            })?;
            let m = rest[1].parse::<usize>().map_err(|_| {
                err(format!(
                    "group size m must be an integer, got {:?}",
                    rest[1]
                ))
            })?;
            if l == 0 || m == 0 {
                return Err(err("group sizes must be >= 1".to_string()));
            }
            let a = parse_terms(rest[2])?;
            let b = parse_terms(rest[3])?;
            let name = format!("bb_l{l}m{m}");
            try_bivariate_bicycle(l, m, &a, &b, &name)
                .map(|code| ResolvedCode { code, layout: None })
                .map_err(|e| err(format!("bivariate_bicycle construction failed: {e}")))
        }
        other => Err(err(format!(
            "unknown code family {other:?}; known families: surface:<d>, steane, \
             repetition:<n>, generalized_bicycle:<l>:<a>:<b>, \
             bivariate_bicycle:<l>:<m>:<a>:<b>"
        ))),
    }
}

fn parse_exponents(text: &str) -> Result<Vec<usize>, FormatError> {
    text.split(',')
        .map(|t| {
            t.parse::<usize>().map_err(|_| {
                FormatError::whole_input(format!(
                    "exponent lists are comma-separated integers, got {t:?}"
                ))
            })
        })
        .collect()
}

fn parse_terms(text: &str) -> Result<Vec<BivariateTerm>, FormatError> {
    text.split(',')
        .map(|t| {
            let bad = || {
                FormatError::whole_input(format!(
                    "bivariate terms are <x>.<y> integer pairs, got {t:?}"
                ))
            };
            let (x, y) = t.split_once('.').ok_or_else(bad)?;
            Ok((
                x.parse::<usize>().map_err(|_| bad())?,
                y.parse::<usize>().map_err(|_| bad())?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code;

    #[test]
    fn surface_code_spec_round_trips_and_rebuilds() {
        let code = rotated_surface_code(3);
        let spec = CodeSpec::from_code(&code);
        let text = write_code_spec(&spec);
        let parsed = parse_code_spec(&text).unwrap();
        assert_eq!(parsed, spec);
        let rebuilt = parsed.to_code().unwrap();
        assert_eq!(rebuilt.name(), code.name());
        assert_eq!(rebuilt.hx(), code.hx());
        assert_eq!(rebuilt.hz(), code.hz());
        assert_eq!(rebuilt.lx(), code.lx());
        assert_eq!(rebuilt.lz(), code.lz());
        assert_eq!(rebuilt.known_distance(), code.known_distance());
    }

    #[test]
    fn repetition_code_with_zero_hx_rows_round_trips() {
        let code = quantum_repetition_code(5);
        let spec = CodeSpec::from_code(&code);
        assert!(spec.hx.is_empty());
        let parsed = parse_code_spec(&write_code_spec(&spec)).unwrap();
        assert_eq!(parsed, spec);
        let rebuilt = parsed.to_code().unwrap();
        assert_eq!(rebuilt.num_x_stabilizers(), 0);
        assert_eq!(rebuilt.n(), 5);
    }

    #[test]
    fn specs_without_logicals_derive_them() {
        let code = steane_code();
        let mut spec = CodeSpec::from_code(&code);
        spec.lx.clear();
        spec.lz.clear();
        let rebuilt = spec.to_code().unwrap();
        assert_eq!(rebuilt.k(), 1);
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse_code_spec("").is_err());
        let err = parse_code_spec("wrong header\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_code_spec("prophunt-code v1\nname x\nn 3\nhx 1012\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.column > 0);
        let err = parse_code_spec("prophunt-code v1\nname x\nn 3\nhx 10\n").unwrap_err();
        assert!(err.message.contains("n is 3"));
        let err = parse_code_spec("prophunt-code v1\nname x\nn 3\nbogus 1\n").unwrap_err();
        assert!(err.message.contains("unknown code spec key"));
        let err = parse_code_spec("prophunt-code v1\nn 3\n").unwrap_err();
        assert!(err.message.contains("missing a name"));
    }

    #[test]
    fn one_sided_logicals_are_rejected_semantically() {
        let code = steane_code();
        let mut spec = CodeSpec::from_code(&code);
        spec.lz.clear();
        assert!(spec.to_code().unwrap_err().message.contains("only one of"));
    }

    #[test]
    fn families_resolve_to_expected_codes() {
        let surface = resolve_family("surface:5").unwrap();
        assert_eq!(surface.code.n(), 25);
        assert!(surface.layout.is_some());
        assert!(surface.hand_designed_schedule().is_some());
        assert_eq!(resolve_family("steane").unwrap().code.n(), 7);
        assert_eq!(resolve_family("repetition:7").unwrap().code.n(), 7);
        let gb = resolve_family("generalized_bicycle:9:0,1:0,3").unwrap();
        assert_eq!((gb.code.n(), gb.code.k()), (18, 2));
        let bb = resolve_family("bivariate_bicycle:6:6:3.0,0.1,0.2:0.3,1.0,2.0").unwrap();
        assert_eq!((bb.code.n(), bb.code.k()), (72, 12));
    }

    #[test]
    fn family_errors_are_descriptive() {
        assert!(resolve_family("surface:1").is_err());
        assert!(resolve_family("surface").is_err());
        assert!(resolve_family("repetition:1").is_err());
        assert!(resolve_family("nope:3")
            .unwrap_err()
            .message
            .contains("known families"));
        assert!(resolve_family("generalized_bicycle:9:0,x:0").is_err());
        assert!(resolve_family("bivariate_bicycle:6:6:3:0.3").is_err());
    }
}
