// D1 positive: wall-clock reads on the deterministic path.
use std::time::{Instant, SystemTime};

pub fn elapsed_ns() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn unix_seconds() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
