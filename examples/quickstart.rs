//! Quickstart: optimize the syndrome-measurement circuit of a d = 3 surface code.
//!
//! Run with `cargo run --release --example quickstart`.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{estimate_logical_error_rate, BpOsdDecoder};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

fn logical_error_rate(
    code: &prophunt_suite::qec::CssCode,
    schedule: &ScheduleSpec,
    p: f64,
    shots: usize,
) -> f64 {
    let mut combined_failures = 0;
    let mut combined_shots = 0;
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, 3, basis).expect("valid schedule");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let estimate = estimate_logical_error_rate(&dem, &decoder, shots, 42, &runtime);
        combined_failures += estimate.failures;
        combined_shots += estimate.shots;
    }
    combined_failures as f64 / combined_shots as f64
}

fn main() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    println!("code: {code}");

    // Start from a deliberately poor schedule (hook errors aligned with the logicals).
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let hand = ScheduleSpec::surface_hand_designed(&code, &layout);

    let p = 3e-3;
    let shots = 2_000;
    println!(
        "poor schedule         LER = {:.4}",
        logical_error_rate(&code, &poor, p, shots)
    );
    println!(
        "hand-designed schedule LER = {:.4}",
        logical_error_rate(&code, &hand, p, shots)
    );

    // Let PropHunt repair the poor schedule automatically.
    let prophunt = PropHunt::new(code.clone(), PropHuntConfig::quick(3));
    let result = prophunt.optimize(poor);
    println!(
        "PropHunt applied {} changes over {} iterations (final CNOT depth {})",
        result.total_changes_applied(),
        result.records.len(),
        result.final_depth()
    );
    println!(
        "optimized schedule    LER = {:.4}",
        logical_error_rate(&code, &result.final_schedule, p, shots)
    );
    if let Some(d_eff) = prophunt.estimate_effective_distance(&result.final_schedule, 10) {
        println!("estimated effective distance of optimized circuit: {d_eff}");
    }
}
