//! `prophunt ler` — Monte-Carlo logical-error-rate estimation through the
//! `prophunt-api` Session/Job surface, honoring the deterministic
//! `(seed, chunk_size)` contract — including for adaptively stopped budgets.

use crate::args::{CliError, Flags};
use crate::common::{
    append_records, basis_selection_from_flags, budget_from_flags, decode_cache_from_flags,
    decoder_from_flags, engine_from_flags, load_code, load_schedule, meta_record, noise_from_flags,
    read_file, runtime_from_flags, session_from_flags, write_metrics_file, write_trace_files,
};
use prophunt_api::{ExperimentSpec, LerJob, LerOutcome, ScheduleSource, StopReason};
use prophunt_formats::parse_dem;
use prophunt_formats::report::ReportRecord;

pub const USAGE: &str = "\
prophunt ler --dem <file> [options]
prophunt ler --code <family-or-spec-file> [--schedule <s>] [options]

  --dem           estimate from an exported .dem file
  --code          estimate from a code (family string or spec file) ...
  --schedule      ... with this schedule: coloration (default), hand, or a file
  --basis         memory basis for --code: z (default), x, or both
  --rounds        rounds for --code (default 3)
  --p             physical error rate for --code (default 0.001)
  --idle          idle error strength for --code (default 0)
  --noise         full noise spec for --code (depolarizing:<p>[:<idle>],
                  si1000:<p>, biased:<p>:<eta>[:<idle>]); conflicts with --p/--idle
  --decoder       decoder name: bposd (default) or unionfind
  --engine        estimation engine: scalar (default) or frames (bit-parallel,
                  64 shots per word; each engine is deterministic per seed, but
                  the two use different RNG stream layouts)
  --decode-cache  frames-engine syndrome-dedup cache: on (default) or off;
                  results are bit-identical either way (A/B timing knob)
  --shots         Monte-Carlo shot cap (default 2000)
  --max-failures  stop at the chunk where this many failures accumulate
  --target-rse    stop at the chunk where the relative standard error drops
                  to this value (mutually exclusive with --max-failures)
  --seed          base RNG seed (default 0); with --chunk-size it fixes the
                  failure count bit-for-bit at any thread count, early stop included
  --threads       worker threads (default 4; wall-clock only)
  --chunk-size    shots per deterministic chunk (default 64)
  --label         label stored in the emitted record (default dem/schedule source)
  --metrics       write a meta + metrics JSON-lines pair (session registry
                  snapshot: counters, gauges, span histograms) to this file
  --trace         record a span-event trace of the run and write it to this
                  file (JSON-lines `trace` records) plus a Chrome trace-event /
                  Perfetto JSON sibling at <file>.chrome.json
  -o, --out       append the JSON-lines record(s) to a file as well as stdout

The stdout stream starts with a `meta` provenance record (crate version, seed,
threads, chunk size, engine); parsers treat it as optional.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "dem",
            "code",
            "schedule",
            "basis",
            "rounds",
            "p",
            "idle",
            "noise",
            "decoder",
            "engine",
            "decode-cache",
            "shots",
            "max-failures",
            "target-rse",
            "seed",
            "threads",
            "chunk-size",
            "label",
            "metrics",
            "trace",
            "out",
        ],
    )?;
    let runtime = runtime_from_flags(&flags)?;
    let budget = budget_from_flags(&flags, 2000)?;
    let decoder = decoder_from_flags(&flags);
    let engine = engine_from_flags(&flags)?;
    let decode_cache = decode_cache_from_flags(&flags)?;
    let (mut session, trace) = session_from_flags(&flags, runtime);

    let meta = meta_record(&runtime, engine.as_str());
    let mut records = vec![meta.clone()];
    match (flags.get("dem"), flags.get("code")) {
        (Some(path), None) => {
            // These knobs shape the model construction, which a .dem file has
            // already baked in — accepting them silently would mislead.
            for code_only in ["schedule", "basis", "rounds", "p", "idle", "noise"] {
                if flags.get(code_only).is_some() {
                    return Err(CliError::usage(format!(
                        "--{code_only} only applies with --code; the .dem file fixes the model"
                    )));
                }
            }
            let dem = parse_dem(&read_file(path)?)
                .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
            let outcome = session
                .run_ler_on_dem(
                    &dem,
                    &decoder,
                    budget,
                    runtime.seed,
                    engine,
                    decode_cache,
                    |_| {},
                )
                .map_err(CliError::failure)?;
            let label = flags.get("label").unwrap_or(path);
            records.push(outcome.to_record(label));
            report_outcome(label, &outcome);
        }
        (None, Some(code_value)) => {
            let resolved = load_code(code_value)?;
            let schedule = load_schedule(flags.get("schedule"), &resolved)?;
            let rounds = flags.num("rounds", 3usize)?;
            if rounds == 0 {
                return Err(CliError::usage("--rounds must be at least 1"));
            }
            let basis = basis_selection_from_flags(&flags)?;
            let noise = noise_from_flags(&flags)?;
            let spec = ExperimentSpec::builder()
                .resolved_code(resolved)
                .schedule(ScheduleSource::Explicit(schedule))
                .noise(noise)
                .decoder(&decoder)
                .engine(engine)
                .decode_cache(decode_cache)
                .rounds(rounds)
                .basis(basis)
                .build()
                .map_err(CliError::failure)?;
            let default_label = flags.get("schedule").unwrap_or("coloration").to_string();
            let label = flags.get("label").unwrap_or(&default_label);
            let job = LerJob::new(spec).with_label(label).with_budget(budget);
            let outcome = session.run_ler_quiet(&job).map_err(CliError::failure)?;
            // One record per basis, plus an explicit combined record for
            // multi-basis runs. Only the combined record carries the job's
            // wall-clock/throughput; per-basis rows of a multi-basis run store 0
            // (the whole-job timing would be wrong for either basis alone).
            let multi = outcome.per_basis.len() > 1;
            for basis in &outcome.per_basis {
                let mut record = outcome.to_record(format!("{label}/{:?}", basis.basis));
                if let ReportRecord::Ler {
                    shots,
                    failures,
                    stop,
                    wall_s,
                    shots_per_sec,
                    ..
                } = &mut record
                {
                    *shots = basis.estimate.shots as u64;
                    *failures = basis.estimate.failures as u64;
                    *stop = basis.stop.as_str().to_string();
                    if multi {
                        *wall_s = 0.0;
                        *shots_per_sec = 0.0;
                    }
                }
                records.push(record);
            }
            if multi {
                records.push(outcome.to_record(format!("{label}/combined")));
            }
            report_outcome(label, &outcome);
        }
        _ => return Err(CliError::usage("ler needs exactly one of --dem or --code")),
    }

    let mut text = String::new();
    for record in &records {
        text.push_str(&record.to_json_line());
        text.push('\n');
    }
    print!("{text}");
    if let Some(path) = flags.get("out") {
        append_records(path, &text)?;
    }
    if let Some(path) = flags.get("metrics") {
        write_metrics_file(path, &meta, &session.metrics())?;
    }
    if let Some(sink) = &trace {
        write_trace_files(sink, &meta)?;
    }
    Ok(())
}

/// Human-readable summary on stderr (stdout carries the JSON-lines records).
fn report_outcome(label: &str, outcome: &LerOutcome) {
    let est = outcome.combined;
    let early = match outcome.stop {
        StopReason::ShotsExhausted => String::new(),
        stop => format!(", stopped early: {}", stop.as_str()),
    };
    eprintln!(
        "{label}: {}/{} failures (LER {:.5}{early})",
        est.failures,
        est.shots,
        est.rate()
    );
}
