//! Monte-Carlo logical-error-rate estimation.

use crate::Decoder;
use prophunt_circuit::DetectorErrorModel;
use prophunt_runtime::{Runtime, SeedStream};

/// The result of a Monte-Carlo logical-error-rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalErrorEstimate {
    /// Number of shots sampled.
    pub shots: usize,
    /// Number of shots in which the decoder's observable prediction was wrong.
    pub failures: usize,
}

impl LogicalErrorEstimate {
    /// Returns the estimated logical error rate (failures per shot).
    pub fn rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// Returns the binomial standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Combines two estimates (e.g. X- and Z-basis memory experiments) by summing shots
    /// and failures.
    pub fn combined(self, other: LogicalErrorEstimate) -> LogicalErrorEstimate {
        LogicalErrorEstimate {
            shots: self.shots + other.shots,
            failures: self.failures + other.failures,
        }
    }
}

/// Estimates the logical error rate of `decoder` on shots sampled from `dem`.
///
/// A shot counts as a failure when the predicted observable flips differ from the true
/// flips in *any* logical observable (the paper's per-shot logical error, covering both
/// X and Z logicals when both experiments' estimates are combined).
///
/// Sampling is split into fixed-size *chunks* of `runtime.chunk_size()` shots; chunk
/// `c` draws its shots from an independent RNG stream seeded with
/// `SeedStream::new(seed).seed_for(c)`. The chunk boundaries and seeds depend only on
/// `(seed, chunk_size)`, never on the worker-thread count, so a fixed seed gives
/// bit-identical failure counts at any `runtime.threads()`.
pub fn estimate_logical_error_rate(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
    runtime: &Runtime,
) -> LogicalErrorEstimate {
    if shots == 0 {
        return LogicalErrorEstimate {
            shots: 0,
            failures: 0,
        };
    }
    let chunk = runtime.chunk_size();
    let chunks = shots.div_ceil(chunk);
    let stream = SeedStream::new(seed);
    let failures = runtime
        .par_seeded(chunks, &stream, |c, chunk_seed| {
            let chunk_shots = chunk.min(shots - c * chunk);
            run_shots(dem, decoder, chunk_shots, chunk_seed).failures
        })
        .into_iter()
        .sum();
    LogicalErrorEstimate { shots, failures }
}

fn run_shots(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
) -> LogicalErrorEstimate {
    let mut sampler = dem.sampler(seed);
    let mut failures = 0usize;
    for _ in 0..shots {
        let (detectors, observables) = sampler.sample();
        if decoder.decode(&detectors) != observables {
            failures += 1;
        }
    }
    LogicalErrorEstimate { shots, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BpOsdDecoder;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use prophunt_runtime::RuntimeConfig;

    fn surface_dem(d: usize, p: f64, rounds: usize) -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, rounds, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn estimate_math_is_consistent() {
        let e = LogicalErrorEstimate {
            shots: 200,
            failures: 10,
        };
        assert!((e.rate() - 0.05).abs() < 1e-12);
        assert!(e.standard_error() > 0.0);
        let c = e.combined(LogicalErrorEstimate {
            shots: 100,
            failures: 5,
        });
        assert_eq!(c.shots, 300);
        assert_eq!(c.failures, 15);
        assert_eq!(
            LogicalErrorEstimate {
                shots: 0,
                failures: 0
            }
            .rate(),
            0.0
        );
    }

    #[test]
    fn multithreaded_estimate_matches_shot_count_and_is_reasonable() {
        let dem = surface_dem(3, 3e-3, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let estimate = estimate_logical_error_rate(&dem, &decoder, 400, 7, &runtime);
        assert_eq!(estimate.shots, 400);
        // d=3 at p = 0.3% should fail well below 10% of shots.
        assert!(estimate.rate() < 0.1, "rate {}", estimate.rate());
    }

    #[test]
    fn higher_physical_error_rate_gives_higher_logical_error_rate() {
        let low = surface_dem(3, 1e-3, 3);
        let high = surface_dem(3, 2e-2, 3);
        let dec_low = BpOsdDecoder::new(&low);
        let dec_high = BpOsdDecoder::new(&high);
        let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
        let e_low = estimate_logical_error_rate(&low, &dec_low, 300, 13, &runtime);
        let e_high = estimate_logical_error_rate(&high, &dec_high, 300, 13, &runtime);
        assert!(e_high.failures > e_low.failures);
    }

    #[test]
    fn failure_counts_are_identical_across_thread_counts() {
        let dem = surface_dem(3, 8e-3, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let reference = estimate_logical_error_rate(
            &dem,
            &decoder,
            500,
            42,
            &Runtime::new(RuntimeConfig::new(1, 64, 0)),
        );
        assert!(reference.failures > 0, "want a nonzero count to compare");
        for threads in [2, 8] {
            let estimate = estimate_logical_error_rate(
                &dem,
                &decoder,
                500,
                42,
                &Runtime::new(RuntimeConfig::new(threads, 64, 0)),
            );
            assert_eq!(estimate.failures, reference.failures, "threads = {threads}");
            assert_eq!(estimate.shots, reference.shots);
        }
    }
}
