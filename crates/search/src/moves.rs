//! Commutation-aware mutation moves over [`ScheduleSpec`]s.
//!
//! The local-search strategies (annealing, beam, hill climbing) all explore
//! the same neighborhood, built from the two primitive schedule changes the
//! paper manipulates (Section 5.3) and the structure of the commutation
//! condition:
//!
//! * **Reorder** — move one data qubit within a stabilizer's interaction
//!   order. Touches only the per-stabilizer CNOT chain, never the relative
//!   orders, so commutation is preserved by construction; only acyclicity can
//!   fail.
//! * **Same-kind swap** — flip the relative order of two stabilizers of the
//!   *same* kind on a shared qubit. Commutation only constrains X/Z pairs, so
//!   these flips are always commutation-safe.
//! * **Paired cross-kind swap** — flip an X/Z pair's relative order on
//!   exactly **two** of their shared qubits. A single flip changes the
//!   "X first" count's parity and always breaks commutation; flipping two at
//!   once preserves the parity, so the move stays inside the commuting
//!   subspace (the same observation behind the optimizer's rescheduling
//!   candidates).
//! * **Stabilizer promotion** — a macro move: pick one stabilizer and flip
//!   every cross-kind pair involving it (on *all* of the pair's shared
//!   qubits) so the picked stabilizer acts first. Each full-pair flip maps
//!   the "X first" count `k` to `shared − k`, preserving parity whenever the
//!   pair shares an even number of qubits. Single swaps diffuse across the
//!   huge equal-depth plateau of a coloration schedule (all X checks before
//!   all Z checks) too slowly to ever restructure it; promotion interleaves
//!   a whole stabilizer in one step, which is exactly the structure
//!   hand-designed schedules use to reach minimal depth.
//!
//! Every move is validated (commutation + acyclic layout) before it is
//! offered, so strategies only ever hold schedules that are valid for the
//! code.

use prophunt_circuit::schedule::{ScheduleSpec, StabilizerId};
use prophunt_qec::CssCode;
use rand::Rng;

/// The immutable move universe of one search problem.
///
/// Mutations never change which stabilizers share which qubits, so the move
/// universe is computed once from the starting schedule and shared by every
/// schedule derived from it.
#[derive(Debug, Clone)]
pub(crate) struct MoveSet {
    /// Stabilizers whose interaction order has at least two qubits.
    reorderable: Vec<StabilizerId>,
    /// `(qubit, a, b)` entries whose stabilizers are of the same kind.
    same_kind: Vec<(usize, StabilizerId, StabilizerId)>,
    /// X/Z stabilizer pairs with their (>= 2) shared qubits.
    cross_pairs: Vec<(StabilizerId, StabilizerId, Vec<usize>)>,
}

impl MoveSet {
    pub(crate) fn new(schedule: &ScheduleSpec) -> MoveSet {
        let reorderable = (0..schedule.num_stabilizers())
            .filter(|&s| schedule.order(s).len() >= 2)
            .collect();
        let mut same_kind = Vec::new();
        let mut cross: Vec<(StabilizerId, StabilizerId, Vec<usize>)> = Vec::new();
        // `relative_entries` iterates in deterministic (qubit, a, b) order, so
        // the move universe — and therefore every seeded random draw over it —
        // is a pure function of the schedule.
        for (q, a, b, _) in schedule.relative_entries() {
            if schedule.kind_of(a) == schedule.kind_of(b) {
                same_kind.push((q, a, b));
            } else {
                match cross.iter_mut().find(|(x, z, _)| *x == a && *z == b) {
                    Some((_, _, shared)) => shared.push(q),
                    None => cross.push((a, b, vec![q])),
                }
            }
        }
        let cross_pairs = cross
            .into_iter()
            .filter(|(_, _, shared)| shared.len() >= 2)
            .collect();
        MoveSet {
            reorderable,
            same_kind,
            cross_pairs,
        }
    }

    /// Draws one random move, applies it to a clone of `schedule`, and returns
    /// the mutated schedule with its depth — or `None` when the drawn move
    /// produces an invalid (non-commuting or cyclic) schedule.
    pub(crate) fn propose<R: Rng>(
        &self,
        code: &CssCode,
        schedule: &ScheduleSpec,
        rng: &mut R,
    ) -> Option<(ScheduleSpec, usize)> {
        let mut classes: Vec<u8> = Vec::with_capacity(4);
        if !self.reorderable.is_empty() {
            classes.push(0);
        }
        if !self.same_kind.is_empty() {
            classes.push(1);
        }
        if !self.cross_pairs.is_empty() {
            classes.push(2);
            classes.push(3);
        }
        let class = *classes.get(rng.gen_range(0..classes.len().max(1)))?;
        let mut next = schedule.clone();
        match class {
            0 => {
                let s = self.reorderable[rng.gen_range(0..self.reorderable.len())];
                let order = next.order(s).to_vec();
                let from = rng.gen_range(0..order.len());
                let mut to = rng.gen_range(0..order.len() - 1);
                if to >= from {
                    to += 1;
                }
                next.reorder_before(s, order[from], order[to]);
            }
            1 => {
                let (q, a, b) = self.same_kind[rng.gen_range(0..self.same_kind.len())];
                next.swap_relative_order(q, a, b);
            }
            2 => {
                let (a, b, shared) = &self.cross_pairs[rng.gen_range(0..self.cross_pairs.len())];
                let i = rng.gen_range(0..shared.len());
                let mut j = rng.gen_range(0..shared.len() - 1);
                if j >= i {
                    j += 1;
                }
                next.swap_relative_order(shared[i], *a, *b);
                next.swap_relative_order(shared[j], *a, *b);
            }
            _ => {
                let s = rng.gen_range(0..schedule.num_stabilizers());
                let mut flipped = false;
                for (a, b, shared) in &self.cross_pairs {
                    if *a != s && *b != s {
                        continue;
                    }
                    if next.first_on_qubit(shared[0], *a, *b) == Some(s) {
                        continue;
                    }
                    for &q in shared {
                        next.swap_relative_order(q, *a, *b);
                    }
                    flipped = true;
                }
                if !flipped {
                    return None;
                }
            }
        }
        if next.check_commutation(code).is_err() {
            return None;
        }
        let depth = next.depth().ok()?;
        Some((next, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proposed_moves_are_always_valid_for_the_code() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let moves = MoveSet::new(&schedule);
        let mut rng = StdRng::seed_from_u64(3);
        let mut accepted = 0;
        let mut current = schedule;
        for _ in 0..200 {
            if let Some((next, depth)) = moves.propose(&code, &current, &mut rng) {
                next.validate_for_code(&code).unwrap();
                assert_eq!(next.depth().unwrap(), depth);
                current = next;
                accepted += 1;
            }
        }
        assert!(accepted > 20, "move generator too restrictive: {accepted}");
    }

    #[test]
    fn move_universe_covers_all_three_classes_on_the_surface_code() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let moves = MoveSet::new(&schedule);
        assert!(!moves.reorderable.is_empty());
        assert!(
            !moves.cross_pairs.is_empty(),
            "surface plaquettes share 2 qubits with their X/Z neighbors"
        );
        for (_, _, shared) in &moves.cross_pairs {
            assert!(shared.len() >= 2);
        }
    }
}
