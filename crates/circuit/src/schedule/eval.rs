//! Incremental schedule evaluation: O(pairs-touched) commutation deltas,
//! O(cone) depth maintenance, and canonical fingerprints.
//!
//! The search strategies in `prophunt-search` evaluate thousands of mutated
//! schedules per round, and the from-scratch path — clone the
//! [`ScheduleSpec`], rescan every X/Z stabilizer pair for commutation, rebuild
//! the whole CNOT dependency DAG and relayer it — makes proposal evaluation
//! the binding cost of the search loop. [`ScheduleEval`] wraps one
//! `ScheduleSpec` and keeps three pieces of derived state up to date as moves
//! are applied and reverted:
//!
//! * **Commutation parity counters.** For every X/Z stabilizer pair that
//!   shares data qubits, the number of shared qubits on which the X check
//!   acts first. The schedule commutes iff every counter is even, so a
//!   relative-order swap updates validity in O(1) (one counter, one parity
//!   flip) instead of an O(X·Z·shared) rescan.
//! * **The CNOT dependency DAG with longest-path layers.** A move flips a
//!   handful of edges; only the forward cone of the touched nodes can change
//!   layer, and the cone is relayered in place with a worklist. A move whose
//!   cone blows up past a small multiple of the node count falls back to one
//!   full rebuild, and a move that would create a cycle is detected (layers
//!   on an acyclic graph are bounded by the node count) and rolled back.
//! * **A canonical 64-bit fingerprint** ([`ScheduleSpec::fingerprint`]) of
//!   the per-stabilizer orders plus the normalized relative entries, enabling
//!   cheap deduplication of equal schedules across search candidates.
//!
//! Moves are typed values ([`Move`]) that resolve to primitive operations
//! ([`EvalOp`]); [`ScheduleEval::try_apply`] applies a move and returns the
//! new depth (or `None`, restoring the previous state, when the move breaks
//! commutation or creates a cycle), and [`ScheduleEval::revert`] undoes the
//! last applied move — so an annealer can mutate one eval in place and undo
//! rejected proposals instead of cloning the spec per proposal.
//!
//! The incremental results are exact: after any sequence of applies and
//! reverts, [`ScheduleEval::depth`] equals [`ScheduleSpec::depth`] of the
//! wrapped spec and validity equals [`ScheduleSpec::check_commutation`] +
//! acyclicity, which the `eval` property tests replay move-by-move.

use super::{ScheduleSpec, StabilizerId};
use crate::CircuitError;
use std::collections::{HashMap, VecDeque};

/// Multiplier of the FxHash-style mixing step used by the fingerprint.
const FINGERPRINT_K: u64 = 0x517c_c1b7_2722_0a95;

fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(FINGERPRINT_K)
}

impl ScheduleSpec {
    /// Canonical 64-bit fingerprint of the schedule.
    ///
    /// Hashes the stabilizer counts, every per-stabilizer interaction order,
    /// and the normalized relative entries (the `(qubit, a, b) → first`
    /// map in its canonical `a < b` key order). Equal schedules therefore
    /// always produce equal fingerprints, and any mutation — a reorder or a
    /// relative-order flip — produces a different fingerprint with
    /// overwhelming probability, which is what candidate deduplication in the
    /// search portfolio needs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(0x9e37_79b9_7f4a_7c15, self.num_x as u64);
        h = mix(h, self.num_z as u64);
        for order in &self.orders {
            h = mix(h, 0x5eed);
            for &q in order {
                h = mix(h, q as u64 + 1);
            }
        }
        for (&(q, a, b), &first) in self.relative.iter() {
            h = mix(h, q as u64);
            h = mix(h, a as u64);
            h = mix(h, b as u64);
            h = mix(h, u64::from(first == a) + 1);
        }
        h
    }
}

/// A primitive schedule operation: the currency between typed [`Move`]s, the
/// optimizer's candidate changes, and the incremental engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalOp {
    /// Move `move_qubit` immediately before `anchor_qubit` in the interaction
    /// order of `stabilizer` ([`ScheduleSpec::reorder_before`]).
    Reorder {
        /// The stabilizer whose CNOT order changes.
        stabilizer: StabilizerId,
        /// The data qubit moved within the order.
        move_qubit: usize,
        /// The data qubit it is moved in front of.
        anchor_qubit: usize,
    },
    /// Flip which of two stabilizers interacts first with a shared qubit
    /// ([`ScheduleSpec::swap_relative_order`]).
    Swap {
        /// The shared data qubit.
        qubit: usize,
        /// One stabilizer of the pair.
        a: StabilizerId,
        /// The other stabilizer of the pair.
        b: StabilizerId,
    },
}

impl EvalOp {
    /// Applies the operation to a plain [`ScheduleSpec`] — the from-scratch
    /// evaluation path (used as the baseline the incremental engine is
    /// benchmarked and property-tested against).
    ///
    /// # Panics
    ///
    /// Panics exactly like the underlying [`ScheduleSpec`] mutators when the
    /// named qubits or pair are absent.
    pub fn apply(&self, spec: &mut ScheduleSpec) {
        match *self {
            EvalOp::Reorder {
                stabilizer,
                move_qubit,
                anchor_qubit,
            } => spec.reorder_before(stabilizer, move_qubit, anchor_qubit),
            EvalOp::Swap { qubit, a, b } => spec.swap_relative_order(qubit, a, b),
        }
    }
}

/// A typed schedule mutation, resolved against the current schedule state by
/// [`ScheduleEval::resolve`].
///
/// The four variants are the move universe shared by every local-search
/// strategy (see `prophunt-search`): reorders and same-kind swaps are always
/// commutation-safe, paired cross-kind swaps preserve the X-first parity by
/// construction, and promotion is the macro move that interleaves one
/// stabilizer past the coloration plateau.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Move {
    /// Move one data qubit within a stabilizer's interaction order.
    Reorder {
        /// The stabilizer whose CNOT order changes.
        stabilizer: StabilizerId,
        /// The data qubit moved within the order.
        move_qubit: usize,
        /// The data qubit it is moved in front of.
        anchor_qubit: usize,
    },
    /// Flip the relative order of two same-kind stabilizers on a shared qubit.
    SameKindSwap {
        /// The shared data qubit.
        qubit: usize,
        /// One stabilizer of the pair.
        a: StabilizerId,
        /// The other stabilizer of the pair.
        b: StabilizerId,
    },
    /// Flip an X/Z pair's relative order on exactly two shared qubits,
    /// preserving the X-first parity.
    PairedCrossSwap {
        /// The X stabilizer of the pair.
        x: StabilizerId,
        /// The Z stabilizer of the pair.
        z: StabilizerId,
        /// First flipped shared qubit.
        qubit_a: usize,
        /// Second flipped shared qubit (distinct from `qubit_a`).
        qubit_b: usize,
    },
    /// Macro move: flip every cross-kind pair involving the stabilizer (on all
    /// of the pair's shared qubits) so the stabilizer acts first; when it
    /// already leads everywhere, flip every pair instead so it acts last —
    /// the move never resolves to a no-op for a stabilizer with cross pairs.
    Promote {
        /// The stabilizer promoted (or, when already leading, demoted).
        stabilizer: StabilizerId,
    },
}

/// One cross-kind stabilizer pair with its parity counter.
#[derive(Debug, Clone)]
struct CrossPair {
    x: StabilizerId,
    z: StabilizerId,
    /// Shared data qubits, in deterministic (relative-entry) order.
    qubits: Vec<usize>,
    /// Number of shared qubits on which the X check acts first.
    x_first: usize,
}

/// The primitive mutations the engine actually journals: a swap is its own
/// inverse, and a reorder is journaled as an index move within the
/// stabilizer's order (`remove(from)` then `insert(to)`), whose inverse is
/// the index move back — both allocation-free.
#[derive(Debug, Clone)]
enum RawOp {
    Swap {
        qubit: usize,
        a: StabilizerId,
        b: StabilizerId,
    },
    MoveWithin {
        stabilizer: StabilizerId,
        from: usize,
        to: usize,
    },
}

/// Everything needed to undo one applied move in O(move size + cone): the
/// inverse primitives (restoring spec, edges and parity counters) plus the
/// layer snapshot the relayer recorded for every node it touched — rollback
/// restores layers directly instead of relayering a second time.
#[derive(Debug, Clone)]
struct UndoFrame {
    inverses: Vec<RawOp>,
    /// `(node, layer before this move)` for every node the relayer changed,
    /// each node at most once.
    layers: Vec<(usize, usize)>,
    max_layer: usize,
}

/// Incremental evaluator over one [`ScheduleSpec`]. See the [module
/// documentation](self) for the design.
///
/// # Invariant
///
/// Between calls, the wrapped schedule is always **valid**: commuting and
/// acyclic. [`ScheduleEval::try_apply`] / [`ScheduleEval::try_ops`] restore
/// the previous state before returning `None`, so an eval can never be
/// observed holding a broken schedule.
#[derive(Debug, Clone)]
pub struct ScheduleEval {
    spec: ScheduleSpec,
    /// `nodes[i]` = the CNOT `(stabilizer, data_qubit)` of DAG node `i`.
    nodes: Vec<(StabilizerId, usize)>,
    /// `stab_nodes[s]` = `(qubit, node)` pairs of stabilizer `s`. Stabilizer
    /// supports are tiny (the code's check weight), so a linear scan beats a
    /// hash lookup on the hot path.
    stab_nodes: Vec<Vec<(usize, usize)>>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Longest-path layer per node (always the exact ASAP layering).
    layer: Vec<usize>,
    /// `layer_counts[l]` = number of nodes currently on layer `l`.
    layer_counts: Vec<usize>,
    max_layer: usize,
    pairs: Vec<CrossPair>,
    pair_of: HashMap<(StabilizerId, StabilizerId), usize>,
    /// Cross-pair indices per stabilizer (empty for stabilizers without
    /// cross-kind neighbors).
    pairs_of_stab: Vec<Vec<usize>>,
    /// Number of cross pairs whose X-first counter is odd; the schedule
    /// commutes iff this is zero.
    odd_pairs: usize,
    /// Journal of applied moves.
    undo: Vec<UndoFrame>,
    /// Reusable scratch flags for the relayer worklist.
    in_queue: Vec<bool>,
    /// Reusable relayer worklist (always drained empty between calls).
    queue: VecDeque<usize>,
    /// Epoch stamp per node marking whether its pre-move layer is already in
    /// the current move's snapshot.
    snap_epoch: Vec<u64>,
    /// Current move epoch (bumped once per [`ScheduleEval::try_ops`]).
    epoch: u64,
    /// Reusable dirty-node scratch (cleared between moves).
    dirty_scratch: Vec<usize>,
    /// Reusable relayer seed scratch (cleared between moves).
    seed_scratch: Vec<usize>,
    /// Spent undo frames recycled for their allocations.
    frame_pool: Vec<UndoFrame>,
}

impl ScheduleEval {
    /// Builds an evaluator for a **valid** schedule, deriving the dependency
    /// DAG, its layers, and the cross-pair parity counters.
    ///
    /// The schedule's relative entries must cover every stabilizer pair
    /// sharing a data qubit (which every trusted constructor and
    /// [`ScheduleSpec::check_covers`]-validated schedule guarantees) — the
    /// parity counters are derived from those entries alone, with no code
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BreaksCommutation`] when some X/Z pair has an
    /// odd X-first count, or [`CircuitError::Unschedulable`] when the
    /// dependency graph has a cycle.
    pub fn new(spec: ScheduleSpec) -> Result<ScheduleEval, CircuitError> {
        let mut node_of: HashMap<(StabilizerId, usize), usize> = HashMap::new();
        let mut nodes = Vec::new();
        let mut stab_nodes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); spec.num_stabilizers()];
        for (s, order) in spec.orders.iter().enumerate() {
            for &q in order {
                node_of.insert((s, q), nodes.len());
                stab_nodes[s].push((q, nodes.len()));
                nodes.push((s, q));
            }
        }
        let n = nodes.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, order) in spec.orders.iter().enumerate() {
            for w in order.windows(2) {
                let a = node_of[&(s, w[0])];
                let b = node_of[&(s, w[1])];
                succs[a].push(b);
                preds[b].push(a);
            }
        }
        for (&(q, a, b), &first) in spec.relative.iter() {
            let second = if first == a { b } else { a };
            if let (Some(&na), Some(&nb)) = (node_of.get(&(first, q)), node_of.get(&(second, q))) {
                succs[na].push(nb);
                preds[nb].push(na);
            }
        }

        let mut pairs: Vec<CrossPair> = Vec::new();
        let mut pair_of: HashMap<(StabilizerId, StabilizerId), usize> = HashMap::new();
        for (&(q, a, b), &first) in spec.relative.iter() {
            if spec.kind_of(a) == spec.kind_of(b) {
                continue;
            }
            // Keys are canonical (a < b), and X ids precede Z ids, so `a` is
            // the X stabilizer of every cross pair.
            let idx = *pair_of.entry((a, b)).or_insert_with(|| {
                pairs.push(CrossPair {
                    x: a,
                    z: b,
                    qubits: Vec::new(),
                    x_first: 0,
                });
                pairs.len() - 1
            });
            pairs[idx].qubits.push(q);
            if first == a {
                pairs[idx].x_first += 1;
            }
        }
        if let Some(odd) = pairs.iter().find(|p| p.x_first % 2 == 1) {
            return Err(CircuitError::BreaksCommutation {
                x_stabilizer: odd.x,
                z_stabilizer: odd.z - spec.num_x,
            });
        }
        let mut pairs_of_stab: Vec<Vec<usize>> = vec![Vec::new(); spec.num_stabilizers()];
        for (i, pair) in pairs.iter().enumerate() {
            pairs_of_stab[pair.x].push(i);
            pairs_of_stab[pair.z].push(i);
        }

        let mut eval = ScheduleEval {
            spec,
            nodes,
            stab_nodes,
            preds,
            succs,
            layer: vec![0; n],
            // Sized for the relayer's transient bound: layers settle below
            // `n` on a DAG but may transiently reach `2n - 2` mid-worklist
            // (a stale predecessor value below `n` plus a path).
            layer_counts: vec![0; (2 * n).max(1)],
            max_layer: 0,
            pairs,
            pair_of,
            pairs_of_stab,
            odd_pairs: 0,
            undo: Vec::new(),
            in_queue: vec![false; n],
            queue: VecDeque::new(),
            snap_epoch: vec![0; n],
            epoch: 0,
            dirty_scratch: Vec::new(),
            seed_scratch: Vec::new(),
            frame_pool: Vec::new(),
        };
        eval.full_relayer()
            .map_err(|()| CircuitError::Unschedulable)?;
        Ok(eval)
    }

    /// The wrapped (always valid) schedule.
    pub fn spec(&self) -> &ScheduleSpec {
        &self.spec
    }

    /// Consumes the evaluator, returning the wrapped schedule.
    pub fn into_spec(self) -> ScheduleSpec {
        self.spec
    }

    /// Current CNOT depth (number of ASAP layers), maintained incrementally.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            0
        } else {
            self.max_layer + 1
        }
    }

    /// Fingerprint of the current schedule ([`ScheduleSpec::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.spec.fingerprint()
    }

    /// Number of cross-kind stabilizer pairs tracked by the parity counters.
    pub fn num_cross_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Resolves a typed [`Move`] into primitive operations against the
    /// *current* schedule state (promotion inspects which pairs the stabilizer
    /// already leads). Resolution is deterministic and read-only.
    pub fn resolve(&self, mv: &Move) -> Vec<EvalOp> {
        match *mv {
            Move::Reorder {
                stabilizer,
                move_qubit,
                anchor_qubit,
            } => vec![EvalOp::Reorder {
                stabilizer,
                move_qubit,
                anchor_qubit,
            }],
            Move::SameKindSwap { qubit, a, b } => vec![EvalOp::Swap { qubit, a, b }],
            Move::PairedCrossSwap {
                x,
                z,
                qubit_a,
                qubit_b,
            } => vec![
                EvalOp::Swap {
                    qubit: qubit_a,
                    a: x,
                    b: z,
                },
                EvalOp::Swap {
                    qubit: qubit_b,
                    a: x,
                    b: z,
                },
            ],
            Move::Promote { stabilizer } => {
                let mut ops = Vec::new();
                let flip_all = |ops: &mut Vec<EvalOp>, lead: bool| {
                    for &pi in &self.pairs_of_stab[stabilizer] {
                        let pair = &self.pairs[pi];
                        let leads = self.spec.first_on_qubit(pair.qubits[0], pair.x, pair.z)
                            == Some(stabilizer);
                        if leads == lead {
                            continue;
                        }
                        for &q in &pair.qubits {
                            ops.push(EvalOp::Swap {
                                qubit: q,
                                a: pair.x,
                                b: pair.z,
                            });
                        }
                    }
                };
                // Promote: flip every pair the stabilizer does not yet lead.
                flip_all(&mut ops, true);
                if ops.is_empty() {
                    // Already leading everywhere: toggle to demotion so the
                    // move never dead-ends on a promotable stabilizer.
                    flip_all(&mut ops, false);
                }
                ops
            }
        }
    }

    /// Applies a typed move. Returns the new depth when the mutated schedule
    /// is still valid; returns `None` — with the previous state fully
    /// restored — when the move breaks commutation or creates a dependency
    /// cycle. Successful moves can be undone with [`ScheduleEval::revert`].
    pub fn try_apply(&mut self, mv: &Move) -> Option<usize> {
        let ops = self.resolve(mv);
        self.try_ops(&ops)
    }

    /// Applies a sequence of primitive operations as one atomic move (the
    /// entry point used for the optimizer's candidate changes). Same contract
    /// as [`ScheduleEval::try_apply`].
    ///
    /// # Panics
    ///
    /// Panics if an operation names a qubit or pair absent from the schedule,
    /// exactly like the underlying [`ScheduleSpec`] mutators.
    pub fn try_ops(&mut self, ops: &[EvalOp]) -> Option<usize> {
        self.epoch += 1;
        // Recycle a spent frame's allocations where possible.
        let mut frame = self.frame_pool.pop().unwrap_or(UndoFrame {
            inverses: Vec::new(),
            layers: Vec::new(),
            max_layer: 0,
        });
        frame.max_layer = self.max_layer;
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        for op in ops {
            let raw = self.raw_of(op);
            let inverse = self.apply_raw(&raw, &mut dirty);
            frame.inverses.push(inverse);
        }
        // Commutation first: an O(1)-per-swap parity check, no relayering
        // needed to reject a non-commuting move. Otherwise relayer the cone,
        // snapshotting the pre-move layer of every node it changes.
        let mut layers = std::mem::take(&mut frame.layers);
        let valid = self.odd_pairs == 0 && self.relayer(&dirty, &mut layers).is_ok();
        frame.layers = layers;
        dirty.clear();
        self.dirty_scratch = dirty;
        if valid {
            self.undo.push(frame);
            Some(self.depth())
        } else {
            self.rollback(frame);
            None
        }
    }

    /// Undoes the last successfully applied move, restoring schedule, parity
    /// counters and layers exactly.
    ///
    /// # Panics
    ///
    /// Panics when there is no applied move to revert.
    pub fn revert(&mut self) {
        let frame = self
            .undo
            .pop()
            .expect("revert called without a matching applied move");
        self.rollback(frame);
    }

    /// Accepts the most recent applied move permanently: its undo frame is
    /// recycled and the move can no longer be reverted. Callers that keep a
    /// move should commit it so a long walk's journal stays bounded (and the
    /// frame allocations get reused).
    ///
    /// # Panics
    ///
    /// Panics when there is no applied move to commit.
    pub fn commit(&mut self) {
        let mut frame = self
            .undo
            .pop()
            .expect("commit called without a matching applied move");
        frame.inverses.clear();
        frame.layers.clear();
        self.frame_pool.push(frame);
    }

    /// Number of applied moves currently on the undo journal.
    pub fn applied_moves(&self) -> usize {
        self.undo.len()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Resolves an [`EvalOp`] into the journaled primitive form.
    fn raw_of(&self, op: &EvalOp) -> RawOp {
        match *op {
            EvalOp::Swap { qubit, a, b } => RawOp::Swap { qubit, a, b },
            EvalOp::Reorder {
                stabilizer,
                move_qubit,
                anchor_qubit,
            } => {
                // Mirror ScheduleSpec::reorder_before in index space: remove
                // at `from`, insert before the anchor's position in the
                // order-without-the-moved-qubit.
                let order = &self.spec.orders[stabilizer];
                let from = order
                    .iter()
                    .position(|&q| q == move_qubit)
                    .expect("move_qubit not in stabilizer order");
                let mut to = order
                    .iter()
                    .position(|&q| q == anchor_qubit)
                    .expect("anchor_qubit not in stabilizer order");
                if to > from {
                    to -= 1;
                }
                RawOp::MoveWithin {
                    stabilizer,
                    from,
                    to,
                }
            }
        }
    }

    /// Node id of the `(stabilizer, qubit)` CNOT, or `None` when the
    /// stabilizer does not act on the qubit. Linear scan over the (tiny)
    /// stabilizer support — measurably faster than a hash lookup here.
    #[inline]
    fn node(&self, s: StabilizerId, q: usize) -> Option<usize> {
        self.stab_nodes[s]
            .iter()
            .find(|&&(qubit, _)| qubit == q)
            .map(|&(_, node)| node)
    }

    /// Applies one primitive, pushing the DAG nodes whose predecessor sets
    /// changed onto `dirty`, and returns the inverse primitive.
    fn apply_raw(&mut self, op: &RawOp, dirty: &mut Vec<usize>) -> RawOp {
        match op {
            RawOp::Swap { qubit, a, b } => {
                let (q, x, z) = (*qubit, (*a).min(*b), (*a).max(*b));
                // One map traversal: read the current leader and flip it in
                // place (this module owns the spec's internals).
                let entry = self
                    .spec
                    .relative
                    .get_mut(&(q, x, z))
                    .expect("swap of a pair with no recorded order");
                let old_first = *entry;
                let new_first = if old_first == x { z } else { x };
                *entry = new_first;
                // Cross pair iff the canonical pair straddles the X/Z id split.
                if x < self.spec.num_x && z >= self.spec.num_x {
                    let pair = &mut self.pairs[self.pair_of[&(x, z)]];
                    let was_odd = pair.x_first % 2 == 1;
                    if old_first == x {
                        pair.x_first -= 1;
                    } else {
                        pair.x_first += 1;
                    }
                    if was_odd {
                        self.odd_pairs -= 1;
                    } else {
                        self.odd_pairs += 1;
                    }
                }
                if let (Some(from), Some(to)) = (self.node(old_first, q), self.node(new_first, q)) {
                    remove_edge(&mut self.succs, &mut self.preds, from, to);
                    add_edge(&mut self.succs, &mut self.preds, to, from);
                    dirty.push(from);
                    dirty.push(to);
                }
                RawOp::Swap {
                    qubit: q,
                    a: x,
                    b: z,
                }
            }
            RawOp::MoveWithin {
                stabilizer,
                from,
                to,
            } => {
                let (s, from, to) = (*stabilizer, *from, *to);
                // Tear down the old chain, move the qubit in index space,
                // rebuild the new chain. Supports are check-weight sized, so
                // this is a handful of edge flips with no allocation.
                for i in 0..self.spec.orders[s].len().saturating_sub(1) {
                    let (qa, qb) = (self.spec.orders[s][i], self.spec.orders[s][i + 1]);
                    let a = self.node(s, qa).expect("order qubits have nodes");
                    let b = self.node(s, qb).expect("order qubits have nodes");
                    remove_edge(&mut self.succs, &mut self.preds, a, b);
                }
                let q = self.spec.orders[s].remove(from);
                self.spec.orders[s].insert(to, q);
                for i in 0..self.spec.orders[s].len().saturating_sub(1) {
                    let (qa, qb) = (self.spec.orders[s][i], self.spec.orders[s][i + 1]);
                    let a = self.node(s, qa).expect("order qubits have nodes");
                    let b = self.node(s, qb).expect("order qubits have nodes");
                    add_edge(&mut self.succs, &mut self.preds, a, b);
                }
                for i in 0..self.stab_nodes[s].len() {
                    dirty.push(self.stab_nodes[s][i].1);
                }
                RawOp::MoveWithin {
                    stabilizer: s,
                    from: to,
                    to: from,
                }
            }
        }
    }

    /// Undoes one move frame: replays the inverse primitives (restoring the
    /// spec, the edges and the parity counters) and writes the snapshotted
    /// layers back — O(move size + touched cone), with no second relayering.
    fn rollback(&mut self, mut frame: UndoFrame) {
        let mut scratch = std::mem::take(&mut self.dirty_scratch);
        for op in frame.inverses.iter().rev() {
            self.apply_raw(op, &mut scratch);
        }
        scratch.clear();
        self.dirty_scratch = scratch;
        for &(v, old) in &frame.layers {
            let current = self.layer[v];
            self.layer_counts[current] -= 1;
            self.layer_counts[old] += 1;
            self.layer[v] = old;
        }
        self.max_layer = frame.max_layer;
        debug_assert_eq!(self.odd_pairs, 0, "rollback must restore commutation");
        frame.inverses.clear();
        frame.layers.clear();
        self.frame_pool.push(frame);
    }

    /// Worklist relayering of the forward cone of `dirty`, maintaining the
    /// exact longest-path layers.
    ///
    /// On success the layers are the unique ASAP fixed point of the current
    /// graph, and `snapshot` holds the pre-move layer of every node that
    /// changed (each node once) — enough to restore the previous layering
    /// without relayering again. Starting from layers below the node count
    /// `n`, transient worklist values are bounded by `2n - 2` on an acyclic
    /// graph (a stale predecessor plus a path), so a node reaching layer
    /// `>= 2n` proves a cycle and the relayer stops with `Err` (the caller
    /// rolls the snapshot back). A cone that blows up past a small multiple
    /// of the node count completes the snapshot and falls back to one full
    /// rebuild instead of chasing the worklist.
    fn relayer(&mut self, dirty: &[usize], snapshot: &mut Vec<(usize, usize)>) -> Result<(), ()> {
        let n = self.nodes.len();
        let bound = 2 * n;
        debug_assert!(self.queue.is_empty());
        // Seed in ascending current-layer order: recomputation then roughly
        // follows topological order, which keeps re-pops rare.
        let mut seeds = std::mem::take(&mut self.seed_scratch);
        for &v in dirty {
            if !self.in_queue[v] {
                self.in_queue[v] = true;
                seeds.push(v);
            }
        }
        seeds.sort_unstable_by_key(|&v| self.layer[v]);
        self.queue.extend(seeds.iter().copied());
        seeds.clear();
        self.seed_scratch = seeds;
        // One Kahn rebuild visits every node exactly once, so a worklist that
        // has popped about `n` nodes is no longer winning: complete the
        // snapshot and rebuild instead of chasing the cone.
        let budget = n + 64;
        let mut pops = 0usize;
        while let Some(v) = self.queue.pop_front() {
            self.in_queue[v] = false;
            pops += 1;
            if pops > budget {
                while let Some(u) = self.queue.pop_front() {
                    self.in_queue[u] = false;
                }
                // Cone blow-up: snapshot every not-yet-recorded node (their
                // current layer is still the pre-move one unless recorded)
                // and rebuild from scratch.
                for v in 0..n {
                    if self.snap_epoch[v] != self.epoch {
                        self.snap_epoch[v] = self.epoch;
                        snapshot.push((v, self.layer[v]));
                    }
                }
                return self.full_relayer();
            }
            let new = self.preds[v]
                .iter()
                .map(|&p| self.layer[p] + 1)
                .max()
                .unwrap_or(0);
            if new == self.layer[v] {
                continue;
            }
            if new >= bound {
                while let Some(u) = self.queue.pop_front() {
                    self.in_queue[u] = false;
                }
                return Err(());
            }
            if self.snap_epoch[v] != self.epoch {
                self.snap_epoch[v] = self.epoch;
                snapshot.push((v, self.layer[v]));
            }
            self.set_layer(v, new);
            for i in 0..self.succs[v].len() {
                let s = self.succs[v][i];
                if !self.in_queue[s] {
                    self.in_queue[s] = true;
                    self.queue.push_back(s);
                }
            }
        }
        Ok(())
    }

    /// Full Kahn rebuild of the layers. Commits only on success; a cycle
    /// leaves the (possibly disturbed) incremental layers in place for the
    /// caller's rollback to fix.
    fn full_relayer(&mut self) -> Result<(), ()> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut layer = vec![0usize; n];
        let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut processed = 0usize;
        while let Some(v) = stack.pop() {
            processed += 1;
            for &s in &self.succs[v] {
                layer[s] = layer[s].max(layer[v] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    stack.push(s);
                }
            }
        }
        if processed != n {
            return Err(());
        }
        self.layer = layer;
        self.layer_counts.iter_mut().for_each(|c| *c = 0);
        self.max_layer = 0;
        for &l in &self.layer {
            self.layer_counts[l] += 1;
            self.max_layer = self.max_layer.max(l);
        }
        Ok(())
    }

    /// Moves node `v` to layer `new`, keeping the per-layer counts and the
    /// running maximum consistent.
    fn set_layer(&mut self, v: usize, new: usize) {
        let old = self.layer[v];
        self.layer[v] = new;
        self.layer_counts[old] -= 1;
        self.layer_counts[new] += 1;
        if new > self.max_layer {
            self.max_layer = new;
        } else if old == self.max_layer && self.layer_counts[old] == 0 {
            while self.max_layer > 0 && self.layer_counts[self.max_layer] == 0 {
                self.max_layer -= 1;
            }
        }
    }
}

fn remove_edge(succs: &mut [Vec<usize>], preds: &mut [Vec<usize>], from: usize, to: usize) {
    let i = succs[from]
        .iter()
        .position(|&v| v == to)
        .expect("removed edge must exist in succs");
    succs[from].swap_remove(i);
    let i = preds[to]
        .iter()
        .position(|&v| v == from)
        .expect("removed edge must exist in preds");
    preds[to].swap_remove(i);
}

fn add_edge(succs: &mut [Vec<usize>], preds: &mut [Vec<usize>], from: usize, to: usize) {
    succs[from].push(to);
    preds[to].push(from);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use prophunt_qec::StabilizerKind;

    #[test]
    fn eval_matches_from_scratch_depth_on_construction() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        for schedule in [
            ScheduleSpec::surface_hand_designed(&code, &layout),
            ScheduleSpec::coloration(&code),
        ] {
            let eval = ScheduleEval::new(schedule.clone()).unwrap();
            assert_eq!(eval.depth(), schedule.depth().unwrap());
            assert_eq!(eval.fingerprint(), schedule.fingerprint());
        }
    }

    #[test]
    fn construction_rejects_non_commuting_and_cyclic_schedules() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let mut broken = ScheduleSpec::surface_hand_designed(&code, &layout);
        let shared = code.shared_qubits(0, 0);
        let z0 = broken.stabilizer_id(StabilizerKind::Z, 0);
        broken.swap_relative_order(shared[0], 0, z0);
        assert!(matches!(
            ScheduleEval::new(broken),
            Err(CircuitError::BreaksCommutation { .. })
        ));
    }

    #[test]
    fn paired_cross_swap_applies_and_reverts_exactly() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let original_fp = schedule.fingerprint();
        let mut eval = ScheduleEval::new(schedule.clone()).unwrap();
        let shared = code.shared_qubits(0, 0);
        let z0 = schedule.stabilizer_id(StabilizerKind::Z, 0);
        let mv = Move::PairedCrossSwap {
            x: 0,
            z: z0,
            qubit_a: shared[0],
            qubit_b: shared[1],
        };
        let depth = eval.try_apply(&mv).expect("paired swap preserves parity");
        assert_eq!(depth, eval.spec().depth().unwrap());
        assert_ne!(eval.fingerprint(), original_fp);
        eval.revert();
        assert_eq!(eval.spec(), &schedule);
        assert_eq!(eval.fingerprint(), original_fp);
        assert_eq!(eval.depth(), schedule.depth().unwrap());
    }

    #[test]
    fn single_cross_swap_is_rejected_and_state_restored() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let mut eval = ScheduleEval::new(schedule.clone()).unwrap();
        let shared = code.shared_qubits(0, 0);
        let z0 = schedule.stabilizer_id(StabilizerKind::Z, 0);
        let rejected = eval.try_ops(&[EvalOp::Swap {
            qubit: shared[0],
            a: 0,
            b: z0,
        }]);
        assert_eq!(rejected, None, "odd parity flip must be rejected");
        assert_eq!(eval.spec(), &schedule);
        assert_eq!(eval.depth(), schedule.depth().unwrap());
        assert_eq!(eval.applied_moves(), 0);
    }

    #[test]
    fn promotion_toggles_instead_of_dead_ending() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        let mut eval = ScheduleEval::new(schedule).unwrap();
        // In a coloration schedule every X check already leads everywhere, so
        // promoting X stabilizer 0 must resolve to a demotion, not a no-op.
        let ops = eval.resolve(&Move::Promote { stabilizer: 0 });
        assert!(!ops.is_empty(), "promotion must never resolve to a no-op");
        if let Some(depth) = eval.try_apply(&Move::Promote { stabilizer: 0 }) {
            assert_eq!(depth, eval.spec().depth().unwrap());
            assert!(eval.spec().check_commutation(&code).is_ok());
        }
    }

    #[test]
    fn fingerprints_distinguish_mutations_and_match_on_equality() {
        let (code, layout) = rotated_surface_code_with_layout(5);
        let a = ScheduleSpec::surface_hand_designed(&code, &layout);
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        let order = c.order(0).to_vec();
        c.reorder_before(0, order[2], order[0]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(
            a.fingerprint(),
            ScheduleSpec::surface_poor(&code, &layout).fingerprint()
        );
    }
}
