// D2 positive: iteration over hash-ordered collections on the deterministic path.
use std::collections::{HashMap, HashSet};

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub fn first_member(members: &HashSet<u64>) -> Option<u64> {
    members.iter().next().copied()
}
