//! D3 negative: the words "thread::spawn" in comments or strings are not a
//! spawn, and scoped helpers that never name thread::spawn are clean.

pub fn describe() -> &'static str {
    // workers are started via thread::spawn inside prophunt-runtime only
    "see prophunt-runtime for the thread::spawn call"
}
