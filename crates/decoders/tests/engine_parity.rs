//! Frame-engine/scalar decode parity on identical error frames.
//!
//! The two estimation engines lay out the per-chunk RNG stream differently, so
//! they sample different shot sequences — but the *decode* stage must be
//! bit-identical: the frame engine's `decode_batch` over transposed frames has
//! to return exactly what the scalar path's per-shot `decode` returns on the
//! same syndromes. These proptests pin that on a matchable surface code (d3 and
//! d5) and on the non-matchable `bb_72_12` bivariate-bicycle code, for both the
//! batch-overriding decoders.

use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{
    decode_shots_cached, BpOsdDecoder, DecodeCache, Decoder, UnionFindDecoder,
};
use prophunt_gf2::{transpose_lane_words, BitVec};
use prophunt_qec::product::{bivariate_bicycle, generalized_bicycle};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use proptest::prelude::*;
use std::sync::OnceLock;

fn surface_dem(d: usize, p: f64) -> DetectorErrorModel {
    let (code, layout) = rotated_surface_code_with_layout(d);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
}

fn bb_72_12_dem(p: f64) -> DetectorErrorModel {
    let code = bivariate_bicycle(
        6,
        6,
        &[(3, 0), (0, 1), (0, 2)],
        &[(0, 3), (1, 0), (2, 0)],
        "bb_72_12",
    );
    let schedule = ScheduleSpec::coloration(&code);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
}

fn gb_18_2_dem(p: f64) -> DetectorErrorModel {
    let code = generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2");
    let schedule = ScheduleSpec::coloration(&code);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
}

/// Samples `shots` error frames into per-shot syndrome BitVecs (the same
/// `sample_frames` → `transpose_lane_words` pipeline the frames engine runs).
fn sample_chunk(dem: &DetectorErrorModel, shots: usize, seed: u64) -> Vec<BitVec> {
    let mut sampler = dem.sampler(seed);
    let mut det_frames = vec![0u64; dem.num_detectors()];
    let mut obs_frames = vec![0u64; dem.num_observables()];
    let mut chunk = Vec::with_capacity(shots);
    let mut remaining = shots;
    while remaining > 0 {
        let lanes = remaining.min(64);
        sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
        chunk.extend(transpose_lane_words(&det_frames, lanes));
        remaining -= lanes;
    }
    chunk
}

/// The test fixtures, built once: `(name, model, decoder)` triples. Error
/// rates are high enough that sampled frames regularly contain multi-error
/// shots (exercising the BP non-convergence → OSD fallback path).
type Fixture = (&'static str, DetectorErrorModel, Box<dyn Decoder>);

fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let d3 = surface_dem(3, 2e-2);
        let d3_uf = surface_dem(3, 2e-2);
        let d5 = surface_dem(5, 8e-3);
        let bb = bb_72_12_dem(3e-3);
        vec![
            (
                "surface_d3/bposd",
                d3.clone(),
                Box::new(BpOsdDecoder::new(&d3)) as Box<dyn Decoder>,
            ),
            (
                "surface_d3/unionfind",
                d3_uf.clone(),
                Box::new(UnionFindDecoder::new(&d3_uf)),
            ),
            (
                "surface_d5/bposd",
                d5.clone(),
                Box::new(BpOsdDecoder::new(&d5)),
            ),
            (
                "bb_72_12/bposd",
                bb.clone(),
                Box::new(BpOsdDecoder::new(&bb)),
            ),
        ]
    })
}

proptest! {
    // Each case decodes up to 64 shots twice across four fixtures; a few cases
    // with random lane counts already cover partial and full words.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed and lane count, the frame pipeline's per-shot predictions
    /// (`sample_frames` → `transpose_lane_words` → `decode_batch`) are exactly
    /// the scalar `decode` of the same transposed syndromes.
    #[test]
    fn frame_pipeline_decodes_equal_the_scalar_path_per_shot(
        seed in any::<u64>(),
        lanes in 1usize..65,
    ) {
        for (name, dem, decoder) in fixtures() {
            let mut sampler = dem.sampler(seed);
            let mut det_frames = vec![0u64; dem.num_detectors()];
            let mut obs_frames = vec![0u64; dem.num_observables()];
            sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
            let det_shots = transpose_lane_words(&det_frames, lanes);
            prop_assert_eq!(det_shots.len(), lanes);
            let batch = decoder.decode_batch(&det_shots);
            prop_assert_eq!(batch.len(), lanes);
            for (lane, shot) in det_shots.iter().enumerate() {
                let scalar = decoder.decode(shot);
                prop_assert_eq!(
                    &batch[lane], &scalar,
                    "{} seed {} lane {}/{} diverged", name, seed, lane, lanes
                );
            }
        }
    }

    /// For any seed and chunk size, the *full* batch stack — the zero-syndrome
    /// fast path and the syndrome-dedup cache in front of `decode_batch` —
    /// returns exactly the scalar `decode` of every shot, with the cache on
    /// and off, on the two LDPC codes whose chunks mix zero, repeated and
    /// OSD-fallback syndromes. The pipeline stats must also balance: every
    /// shot is exactly one of zero / cache hit / distinct decode.
    #[test]
    fn cached_batch_stack_equals_the_scalar_path_per_shot(
        seed in any::<u64>(),
        shots in 1usize..129,
    ) {
        let models = [
            ("gb_18_2", gb_18_2_dem(1e-3)),
            ("bb_72_12", bb_72_12_dem(1e-3)),
        ];
        for (name, dem) in &models {
            let decoder = BpOsdDecoder::new(dem);
            let chunk = sample_chunk(dem, shots, seed);
            let (cached, stats) = decode_shots_cached(&decoder, &chunk, DecodeCache::On);
            let (plain, _) = decode_shots_cached(&decoder, &chunk, DecodeCache::Off);
            prop_assert_eq!(cached.len(), shots);
            prop_assert_eq!(
                stats.zero + stats.cache_hits + stats.cache_misses,
                shots,
                "{}: every shot is zero, a hit, or a distinct decode", name
            );
            prop_assert_eq!(
                stats.bp_converged + stats.osd_calls,
                stats.cache_misses,
                "{}: every distinct syndrome converges in BP or falls to OSD", name
            );
            for (i, shot) in chunk.iter().enumerate() {
                let scalar = decoder.decode(shot);
                prop_assert_eq!(
                    &cached[i], &scalar,
                    "{} seed {} shot {}/{} diverged (cache on)", name, seed, i, shots
                );
                prop_assert_eq!(
                    &plain[i], &scalar,
                    "{} seed {} shot {}/{} diverged (cache off)", name, seed, i, shots
                );
            }
        }
    }
}

/// A crafted chunk pinning the cache's fan-out ordering: duplicates of two
/// distinct non-zero syndromes interleaved with all-zero frames. The cache
/// must decode each distinct syndrome exactly once (in first-occurrence
/// order), fan the prediction back out to every duplicate position, and
/// short-circuit the zero frames — with the stats accounting for every shot.
#[test]
fn crafted_duplicates_and_zero_syndromes_pin_fan_out_ordering() {
    let dem = gb_18_2_dem(1e-3);
    let decoder = BpOsdDecoder::new(&dem);
    // Two distinct non-zero syndromes from the sampled stream (any two
    // distinct ones will do; seeds chosen so the first block contains both).
    let sampled = sample_chunk(&dem, 64, 11);
    let mut nonzero = sampled.iter().filter(|s| !s.is_zero());
    let s1 = nonzero
        .next()
        .expect("seed 11 samples a non-zero syndrome")
        .clone();
    let s2 = nonzero
        .find(|s| *s != &s1)
        .expect("seed 11 samples two distinct non-zero syndromes")
        .clone();
    let zero = BitVec::zeros(dem.num_detectors());
    let chunk = vec![
        zero.clone(),
        s1.clone(),
        s2.clone(),
        s1.clone(),
        zero.clone(),
        s2.clone(),
        s1.clone(),
    ];
    let (predictions, stats) = decode_shots_cached(&decoder, &chunk, DecodeCache::On);
    // Stats: two zero shots, two distinct decodes (s1 then s2), three hits.
    assert_eq!(stats.zero, 2);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_hits, 3);
    // Fan-out: every duplicate position carries the identical prediction.
    assert_eq!(predictions[3], predictions[1]);
    assert_eq!(predictions[6], predictions[1]);
    assert_eq!(predictions[5], predictions[2]);
    assert_eq!(predictions[4], predictions[0]);
    // And each position equals the scalar decode of its own syndrome — the
    // strict batch contract, including the zero fast path.
    for (i, shot) in chunk.iter().enumerate() {
        assert_eq!(predictions[i], decoder.decode(shot), "shot {i}");
    }
    // The cache-off reference path returns the same predictions without
    // using the pipeline (no zero/hit/miss tallies).
    let (plain, off_stats) = decode_shots_cached(&decoder, &chunk, DecodeCache::Off);
    assert_eq!(plain, predictions);
    assert_eq!(off_stats.zero, 0);
    assert_eq!(off_stats.cache_hits, 0);
    assert_eq!(off_stats.cache_misses, 0);
}
