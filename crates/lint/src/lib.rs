//! `prophunt-lint` — repo-specific determinism & discipline static analysis.
//!
//! Every subsystem in this workspace leans on one contract: a fixed
//! `(seed, chunk_size)` is bit-identical at any thread count, on any
//! machine. That contract — plus a handful of engineering disciplines the
//! repository keeps by convention (no panics on user input, no unvendored
//! dependencies, `#![forbid(unsafe_code)]` everywhere) — is what this crate
//! checks statically, at CI time, instead of in a flaky cross-machine
//! reproduction.
//!
//! The analysis is a hand-rolled token-level pass (zero external
//! dependencies, like the rest of the workspace): a comment- and
//! string-aware Rust [`lexer`], a [`rules`] engine with seven rules
//! (`D1`–`D7`), and a [`workspace`] walker that scans every member crate's
//! sources and manifests. Diagnostics render as
//! `file:line:col · RULE-ID · message` and can be silenced — with a written
//! justification — by an inline suppression comment:
//!
//! ```text
//! // lint: allow(no-wall-clock) — timing-only: feeds wall_s, never the counts
//! ```
//!
//! | Rule | Name | Scope | Invariant |
//! |------|------|-------|-----------|
//! | D1 | `no-wall-clock` | deterministic crates | no `Instant::now` / `SystemTime` |
//! | D2 | `no-hash-iter` | deterministic crates + api/runtime | no unordered `HashMap`/`HashSet` iteration |
//! | D3 | `no-thread-spawn` | all but runtime | threads only via `prophunt-runtime` |
//! | D4 | `no-ambient-rng` | all | `SeedStream` only, no `thread_rng`/`OsRng` |
//! | D5 | `forbid-unsafe` | all crate roots | `#![forbid(unsafe_code)]` present |
//! | D6 | `no-panic-on-user-input` | cli, formats | no `unwrap`/`expect`/`panic!` |
//! | D7 | `vendored-deps-only` | all manifests | deps are workspace crates or `vendor/` |
//!
//! The `prophunt lint` CLI subcommand runs [`lint_workspace`] and reports in
//! human or JSON-lines form; `crates/lint/tests/selflint.rs` pins the
//! workspace itself at zero unsuppressed findings.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_source, Finding, Rule, SuppressionSite, ALL_RULES};
pub use workspace::{lint_manifest, lint_workspace, LintReport};
