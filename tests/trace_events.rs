//! The trace layer's determinism contract, end to end through the Session API:
//! attaching a [`Tracer`] never changes results, the deterministic subset of
//! trace records — the `diag` convergence diagnostics — is bit-identical at
//! any thread count, and the timeline span *structure* (which spans exist, how
//! many, under which parents) is a pure function of `(seed, chunk_size)` even
//! though the timestamps are not.

use prophunt_suite::api::{
    DecoderRegistry, Engine, ExperimentSpec, LerJob, SearchJob, Session, ShotBudget,
};
use prophunt_suite::formats::trace_event_to_record;
use prophunt_suite::obs::{Obs, TraceLog, Tracer, DIAG_CATEGORY};
use prophunt_suite::runtime::RuntimeConfig;

fn traced_session(threads: usize, seed: u64) -> (Session, Tracer) {
    let tracer = Tracer::new();
    let obs = Obs::enabled().with_tracer(tracer.clone());
    let session = Session::with_obs(
        RuntimeConfig::new(threads, 64, seed),
        DecoderRegistry::with_defaults(),
        obs,
    );
    (session, tracer)
}

/// The deterministic subset, serialized: every `diag` record as its JSON line,
/// in emission order (drain sorts them ahead of the wall-clock spans because
/// their timestamps are pinned to zero).
fn diag_lines(log: &TraceLog) -> String {
    log.events
        .iter()
        .filter(|e| e.cat == DIAG_CATEGORY)
        .map(|e| trace_event_to_record(e).to_json_line() + "\n")
        .collect()
}

/// The thread-independent shape of the timeline: per (name, cat) span/instant
/// counts, sorted. Timestamps, worker lanes and interleavings vary with the
/// pool; which work spans exist does not. `runtime.call` is excluded: adaptive
/// budgets submit chunks in worker-sized waves, so the number of pool *calls*
/// (unlike the number of tasks) is a legitimate function of the thread count.
fn span_census(log: &TraceLog) -> Vec<(String, String, usize)> {
    let mut keys: Vec<(String, String)> = log
        .events
        .iter()
        .filter(|e| e.name != "runtime.call")
        .map(|e| (e.name.clone(), e.cat.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|(name, cat)| {
            let count = log
                .events
                .iter()
                .filter(|e| e.name == name && e.cat == cat)
                .count();
            (name, cat, count)
        })
        .collect()
}

#[test]
fn traced_ler_matches_untraced_and_its_span_census_is_thread_independent() {
    for engine in [Engine::Scalar, Engine::Frames] {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .noise_str("depolarizing:0.008")
            .unwrap()
            .engine(engine)
            .build()
            .unwrap();
        let job = LerJob::new(spec).with_budget(ShotBudget::fixed(512));

        let mut plain = Session::new(RuntimeConfig::new(4, 64, 9));
        let baseline = plain.run_ler_quiet(&job).unwrap();

        let mut censuses = Vec::new();
        for threads in [1, 2, 8] {
            let (mut session, tracer) = traced_session(threads, 9);
            let outcome = session.run_ler_quiet(&job).unwrap();
            // Tracing is out-of-band: the estimate is bit-identical to the
            // untraced session's at every thread count.
            assert_eq!(
                outcome.combined.failures,
                baseline.combined.failures,
                "engine {} threads {threads}: tracing changed the failure count",
                engine.as_str()
            );
            let log = tracer.drain();
            assert_eq!(log.dropped, 0);
            assert!(log
                .events
                .iter()
                .any(|e| e.name == "job.ler" && e.cat == "job"));
            assert!(log.events.iter().any(|e| e.name == "runtime.task"));
            assert!(log.events.iter().any(|e| e.name == "ler.chunk"));
            censuses.push(span_census(&log));
        }
        // 512 shots in 64-shot chunks: the same spans exist at any thread
        // count, in the same numbers.
        assert_eq!(
            censuses[0],
            censuses[1],
            "engine {}: span census differs between 1 and 2 threads",
            engine.as_str()
        );
        assert_eq!(
            censuses[0],
            censuses[2],
            "engine {}: span census differs between 1 and 8 threads",
            engine.as_str()
        );
        assert!(censuses[0]
            .iter()
            .any(|(name, _, count)| name == "ler.chunk" && *count == 8));
    }
}

#[test]
fn traced_search_diag_records_are_bit_identical_across_thread_counts() {
    let job = {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        SearchJob::new(spec)
            .with_rounds(3)
            .with_proposals(8)
            .with_samples(8)
    };
    let run = |threads: usize| {
        let (mut session, tracer) = traced_session(threads, 11);
        let outcome = session.run_search_quiet(&job).unwrap();
        (outcome.result.best.depth, tracer.drain())
    };
    let (reference_depth, reference_log) = run(1);
    let reference = diag_lines(&reference_log);
    assert!(
        reference.contains("\"name\":\"search.round\"")
            && reference.contains("\"name\":\"search.arm\"")
            && reference.contains("\"name\":\"search.strategy."),
        "diag stream must carry round, arm and strategy records:\n{reference}"
    );
    for threads in [2, 8] {
        let (depth, log) = run(threads);
        assert_eq!(depth, reference_depth, "threads {threads}");
        // The convergence diagnostics are the deterministic subset of the
        // trace: serialized bytes, not just counts, match the single-threaded
        // run. (CI re-checks this through the CLI with --trace.)
        assert_eq!(
            diag_lines(&log),
            reference,
            "threads {threads}: diag records must be bit-identical"
        );
    }
}

#[test]
fn truncating_a_trace_span_mid_run_is_harmless_to_results() {
    // Drain mid-run from another handle: the tracer is lock-free and shared,
    // so a concurrent drain (e.g. a future live exporter) must not perturb
    // the run's deterministic outputs, only steal the events drained so far.
    let spec = ExperimentSpec::builder()
        .code_family("surface:3")
        .unwrap()
        .noise_str("depolarizing:0.008")
        .unwrap()
        .build()
        .unwrap();
    let job = LerJob::new(spec).with_budget(ShotBudget::fixed(256));
    let mut plain = Session::new(RuntimeConfig::new(2, 64, 21));
    let baseline = plain.run_ler_quiet(&job).unwrap();

    let (mut session, tracer) = traced_session(2, 21);
    let mid = tracer.drain();
    assert!(mid.events.is_empty(), "nothing recorded before the job");
    let outcome = session.run_ler_quiet(&job).unwrap();
    assert_eq!(outcome.combined.failures, baseline.combined.failures);
    assert!(!tracer.drain().events.is_empty());
}
