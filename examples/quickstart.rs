//! Quickstart on the unified experiment API: optimize the syndrome-measurement
//! circuit of a d = 3 surface code as an `OptimizeJob`, compare schedules with
//! `LerJob`s (one per schedule, all through one cached `Session`), then export the
//! optimized schedule and its detector error model as files.
//!
//! Run with `cargo run --release --example quickstart`. The exported files use the
//! `prophunt-formats` interchange formats (see `FORMATS.md`) and can be fed back to
//! the `prophunt` CLI, e.g. `prophunt ler --dem quickstart_optimized.dem` or
//! `prophunt optimize --code surface:3 --resume quickstart_optimized.schedule`.

use prophunt_suite::api::{
    BasisSelection, Event, ExperimentSpec, LerJob, OptimizeJob, ScheduleSource, Session, ShotBudget,
};
use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::formats::{parse_dem, parse_schedule, write_dem, write_schedule};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::runtime::RuntimeConfig;

fn main() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    println!("code: {code}");

    // One session for every job below: the runtime (threads/chunk/seed) is shared,
    // and built experiments, detector error models and decoders are cached.
    let mut session = Session::new(RuntimeConfig::new(4, 64, 42));

    // Start from a deliberately poor schedule (hook errors aligned with the logicals).
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let p = 3e-3;
    let spec = ExperimentSpec::builder()
        .code_with_layout(code.clone(), layout)
        .schedule(ScheduleSource::Explicit(poor))
        .noise_str(&format!("depolarizing:{p}"))
        .expect("valid noise spec")
        .decoder("bposd")
        .basis(BasisSelection::Both)
        .build()
        .expect("valid experiment spec");

    // Estimate the poor and hand-designed schedules. Instead of a fixed shot count,
    // stop adaptively once 25 failures accumulate — the counts stay bit-identical
    // at any thread count because stopping is decided at chunk granularity.
    let budget = ShotBudget::MaxFailures {
        max_failures: 25,
        max_shots: 4_000,
    };
    let ler = |session: &mut Session, spec: &ExperimentSpec, label: &str| {
        let outcome = session
            .run_ler_quiet(
                &LerJob::new(spec.clone())
                    .with_budget(budget)
                    .with_label(label),
            )
            .expect("estimation job runs");
        println!(
            "{label:<22} LER = {:.4}  ({} shots, {})",
            outcome.combined.rate(),
            outcome.combined.shots,
            outcome.stop.as_str()
        );
        outcome
    };
    ler(&mut session, &spec, "poor schedule");
    let hand = spec
        .with_schedule(ScheduleSpec::surface_hand_designed(
            spec.code(),
            spec.layout().expect("surface layout"),
        ))
        .expect("hand schedule is valid");
    ler(&mut session, &hand, "hand-designed schedule");

    // Let PropHunt repair the poor schedule automatically, streaming iteration
    // events from the unified observer channel.
    let outcome = session
        .run_optimize(&OptimizeJob::new(spec.clone()), |event| {
            if let Event::Iteration(record) = event {
                println!(
                    "  iteration {:>2} [{:?}-basis]: {} subgraphs, {} changes, depth {}",
                    record.iteration,
                    record.basis,
                    record.subgraphs_found,
                    record.changes_applied,
                    record.depth
                );
            }
        })
        .expect("optimization job runs");
    let result = &outcome.result;
    println!(
        "PropHunt applied {} changes over {} iterations ({}, final CNOT depth {})",
        result.total_changes_applied(),
        result.records.len(),
        outcome.stop.as_str(),
        result.final_depth()
    );
    let optimized = spec
        .with_schedule(result.final_schedule.clone())
        .expect("optimized schedule stays valid");
    ler(&mut session, &optimized, "optimized schedule");

    // Export the optimized circuit through the interchange formats: the schedule as
    // a `prophunt-schedule v1` file and its Z-memory detector error model as a
    // Stim-compatible `.dem` file, both written to the temp directory.
    let out_dir = std::env::temp_dir();
    let schedule_path = out_dir.join("quickstart_optimized.schedule");
    let dem_path = out_dir.join("quickstart_optimized.dem");
    let schedule_text = write_schedule(&result.final_schedule);
    let dem = session
        .dem(&optimized, prophunt_suite::circuit::MemoryBasis::Z)
        .expect("model builds");
    let dem_text = write_dem(&dem);
    std::fs::write(&schedule_path, &schedule_text).expect("write schedule file");
    std::fs::write(&dem_path, &dem_text).expect("write dem file");

    // Both files parse back to exactly what was exported.
    assert_eq!(
        parse_schedule(&schedule_text).expect("schedule file parses"),
        result.final_schedule
    );
    assert!(parse_dem(&dem_text)
        .expect("dem file parses")
        .same_distribution(&dem));
    println!("exported schedule to {}", schedule_path.display());
    println!(
        "exported detector error model ({} mechanisms) to {}",
        dem.num_errors(),
        dem_path.display()
    );
}
