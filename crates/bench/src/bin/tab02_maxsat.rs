//! Table 2: MaxSAT model sizes and wall-clock times, global formulation vs ambiguous
//! subgraph formulation.

use prophunt::ambiguity::{find_ambiguous_subgraph, DecodingGraph};
use prophunt::minweight::{
    global_min_weight_logical_error, global_model_size, min_weight_logical_error,
    subgraph_model_size,
};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::MemoryBasis;
use prophunt_qec::product::generalized_bicycle;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn row(name: &str, code: &CssCode, rounds: usize, global_budget: Duration) {
    let schedule = ScheduleSpec::coloration(code);
    let graph = DecodingGraph::build(code, &schedule, rounds, MemoryBasis::Z, 1e-3).unwrap();
    // Global formulation.
    let (gv, gc, gs) = global_model_size(&graph);
    let start = std::time::Instant::now();
    let (gsol, _) = global_min_weight_logical_error(&graph, global_budget);
    let gtime = start.elapsed();
    let gresult = match gsol {
        Some(s) if s.optimal => format!("{:.2} s (weight {})", gtime.as_secs_f64(), s.weight),
        Some(s) => format!("timeout* (incumbent weight {})", s.weight),
        None => "timeout*".to_string(),
    };
    println!(
        "{:<12} {:<9} {:>9} {:>12} {:>12} {:>28}",
        name, "global", gv, gc, gs, gresult
    );
    // Subgraph formulation.
    let mut rng = StdRng::seed_from_u64(4);
    if let Some(sub) = (0..200).find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 80)) {
        let (sv, sc, ss) = subgraph_model_size(&sub);
        let start = std::time::Instant::now();
        let sol = min_weight_logical_error(&sub, Duration::from_secs(60));
        let stime = start.elapsed();
        let sresult = match sol {
            Some(s) => format!("{:.2} s (weight {})", stime.as_secs_f64(), s.weight),
            None => "timeout".to_string(),
        };
        println!(
            "{:<12} {:<9} {:>9} {:>12} {:>12} {:>28}",
            name, "subgraph", sv, sc, ss, sresult
        );
    }
}

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let global_budget = Duration::from_secs(if full { 360 } else { 20 });
    println!("Table 2: MaxSAT model sizes, global vs ambiguous-subgraph formulation");
    println!(
        "{:<12} {:<9} {:>9} {:>12} {:>12} {:>28}",
        "code", "model", "vars", "hard clauses", "soft clauses", "wall clock"
    );
    row(
        "gb_18_2",
        &generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2"),
        3,
        global_budget,
    );
    let d = if full { 7 } else { 3 };
    let (surface, _) = rotated_surface_code_with_layout(d);
    row(&format!("surface_d{d}"), &surface, d.min(5), global_budget);
    if full {
        row(
            "gb_36_2",
            &generalized_bicycle(18, &[0, 1], &[0, 5], "gb_36_2"),
            4,
            global_budget,
        );
    }
    println!("* the global formulation is expected to time out, as in the paper.");
}
