//! `prophunt lint` — the workspace determinism & discipline static analysis.
//!
//! Runs the `prophunt-lint` rule engine (rules `D1`–`D7`, see that crate's
//! docs) over every workspace crate and manifest. Human output renders one
//! `file:line:col · RULE-ID · message` diagnostic per line; `--format json`
//! emits report-v3 JSON-lines `lint` records instead, so the stream validates
//! under `prophunt check` like every other artifact.
//!
//! The exit code is the CI contract: 0 when every finding is covered by a
//! justified suppression comment, 1 when any unsuppressed finding remains.

use crate::args::{CliError, Flags};
use prophunt_formats::ReportRecord;
use prophunt_lint::lint_workspace;
use std::path::Path;

pub const USAGE: &str = "\
prophunt lint [--root DIR] [--format human|json] [--suppressed true]

  Statically checks every workspace crate against the determinism &
  discipline rules D1-D7 (wall-clock use, hash-order iteration, thread
  spawns, ambient RNG, unsafe code, user-input panics, unvendored deps).

  --root        workspace root to scan (default: current directory)
  --format      human (default) or json (report-v3 `lint` records)
  --suppressed  true to also show findings covered by justified
                suppressions in human output (default false)

  Exits 0 when no unsuppressed finding remains, 1 otherwise, 2 on usage
  errors. A finding is suppressed by an inline comment of the form
  `// lint: allow(<rule>) — <written justification>` on or directly above
  the offending line.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["root", "format", "suppressed"])?;
    let root = flags.get("root").unwrap_or(".").to_string();
    let format = flags.get("format").unwrap_or("human").to_string();
    let show_suppressed: bool = flags.num("suppressed", false)?;
    if format != "human" && format != "json" {
        return Err(CliError::usage(format!(
            "--format must be human or json, got {format:?}"
        )));
    }

    let report = lint_workspace(Path::new(&root))
        .map_err(|e| CliError::failure(format!("cannot scan workspace at {root:?}: {e}")))?;

    let mut unsuppressed = 0usize;
    for finding in &report.findings {
        let suppressed = finding.suppressed_by.is_some();
        if suppressed && !show_suppressed && format == "human" {
            continue;
        }
        if !suppressed {
            unsuppressed += 1;
        }
        if format == "json" {
            let record = ReportRecord::Lint {
                file: finding.file.clone(),
                line: finding.line as u64,
                col: finding.col as u64,
                rule: finding.rule.id(),
                message: finding.message.clone(),
                suppressed_by: finding.suppressed_by.clone().unwrap_or_default(),
            };
            println!("{}", record.to_json_line());
        } else {
            println!("{}", finding.render());
        }
    }
    if format == "human" {
        println!(
            "{} files, {} manifests: {} unsuppressed finding(s), {} suppressed",
            report.files_scanned,
            report.manifests_checked,
            unsuppressed,
            report.suppressed_count()
        );
    }
    if unsuppressed > 0 {
        return Err(CliError::failure(format!(
            "{unsuppressed} unsuppressed lint finding(s)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_format() {
        let args: Vec<String> = vec!["--format".into(), "xml".into()];
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_missing_root() {
        let args: Vec<String> = vec!["--root".into(), "/nonexistent/prophunt".into()];
        assert!(matches!(run(&args), Err(CliError::Failure(_))));
    }
}
