//! Batch-native decode pipeline: zero-syndrome fast path and per-chunk
//! syndrome deduplication in front of [`Decoder::decode_batch`].
//!
//! At the paper's operating points (p ~ 1e-3) most shots carry an all-zero
//! detector frame and many of the rest repeat a handful of low-weight
//! syndromes, so a chunk rarely contains as many *distinct* decoding problems
//! as it contains shots. [`decode_shots_cached`] exploits that in two stacked
//! layers, both decoder-agnostic:
//!
//! 1. **Zero-syndrome fast path** — all-zero frames are word-tested
//!    ([`BitVec::is_zero`], O(words)) and short-circuited to the decoder's
//!    zero correction, computed once per call, before any decoding runs.
//! 2. **Syndrome-dedup cache** — the remaining syndromes are grouped by
//!    content ([`BitVec::hash_words`] buckets, verified by word equality),
//!    each *distinct* syndrome is decoded once, and the prediction is fanned
//!    back out to every shot sharing it.
//!
//! Determinism: distinct syndromes are decoded in first-occurrence order
//! within the call, the hash map is used for *lookup only* (never iterated),
//! and every prediction is a pure function of its syndrome — so the output
//! (and the [`DecodeStats`] tallies) are a pure function of the input shot
//! sequence, bit-identical at any thread count. The strict batch contract
//! (`output[i] == decoder.decode(&shots[i])` for every `i`) is preserved by
//! construction and pinned by the engine-parity tests and the in-bin
//! `frame_bench` parity assert.

use crate::Decoder;
use prophunt_gf2::BitVec;
use std::collections::HashMap;

/// Whether the batch decode pipeline may use the zero-syndrome fast path and
/// the per-chunk syndrome-dedup cache.
///
/// The cache is bit-identity-preserving by construction, so this knob exists
/// to make that claim *checkable* (CI compares failure counts both ways) and
/// to provide a reference timing path; [`DecodeCache::On`] is the default
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodeCache {
    /// Zero fast path + syndrome dedup in front of the decoder (default).
    #[default]
    On,
    /// Plain [`Decoder::decode_batch`] on every shot (the reference path).
    Off,
}

impl DecodeCache {
    /// A stable machine-readable name (used in report records and CLI flags).
    pub fn as_str(&self) -> &'static str {
        match self {
            DecodeCache::On => "on",
            DecodeCache::Off => "off",
        }
    }

    /// Parses the name produced by [`DecodeCache::as_str`].
    pub fn parse(name: &str) -> Option<DecodeCache> {
        match name {
            "on" => Some(DecodeCache::On),
            "off" => Some(DecodeCache::Off),
            _ => None,
        }
    }
}

impl std::str::FromStr for DecodeCache {
    type Err = String;

    fn from_str(s: &str) -> Result<DecodeCache, String> {
        DecodeCache::parse(s).ok_or_else(|| format!("unknown decode-cache '{s}' (expected on|off)"))
    }
}

impl std::fmt::Display for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-call tallies of the batch decode pipeline, the source of the
/// deterministic `ler.decode.*` counters.
///
/// Every field is a pure function of the input shot sequence (never of the
/// thread count or the clock). `zero + cache_hits + cache_misses` equals the
/// shot count when the cache is on; with the cache off only the decoder-side
/// fields (`bp_converged`, `osd_calls`) are populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Shots short-circuited by the zero-syndrome fast path.
    pub zero: usize,
    /// Shots resolved by an earlier identical syndrome in the same call.
    pub cache_hits: usize,
    /// Distinct non-zero syndromes actually decoded.
    pub cache_misses: usize,
    /// Decoded syndromes where BP converged (BP+OSD decoders only).
    pub bp_converged: usize,
    /// Decoded syndromes that fell through to OSD (BP+OSD decoders only).
    pub osd_calls: usize,
}

impl DecodeStats {
    /// Accumulates another call's tallies into `self`.
    pub fn merge(&mut self, other: DecodeStats) {
        self.zero += other.zero;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bp_converged += other.bp_converged;
        self.osd_calls += other.osd_calls;
    }
}

/// Sentinel in the per-shot assignment table for "zero syndrome".
const ZERO_LANE: usize = usize::MAX;

/// Decodes a chunk of shots through the batch pipeline, returning one
/// prediction per shot (in order) plus the pipeline's [`DecodeStats`].
///
/// With [`DecodeCache::On`] the zero-syndrome fast path and the syndrome-dedup
/// cache run in front of [`Decoder::decode_batch_with_stats`]; with
/// [`DecodeCache::Off`] every shot goes straight to the decoder. Both paths
/// satisfy `output[i] == decoder.decode(&shots[i])` bit-for-bit.
pub fn decode_shots_cached(
    decoder: &dyn Decoder,
    shots: &[BitVec],
    cache: DecodeCache,
) -> (Vec<BitVec>, DecodeStats) {
    if cache == DecodeCache::Off {
        let (predictions, batch) = decoder.decode_batch_with_stats(shots);
        let stats = DecodeStats {
            bp_converged: batch.bp_converged,
            osd_calls: batch.osd_calls,
            ..DecodeStats::default()
        };
        return (predictions, stats);
    }
    let mut stats = DecodeStats::default();
    // assign[i]: ZERO_LANE for zero syndromes, else the index (in
    // first-occurrence order) of shot i's distinct syndrome.
    let mut assign = vec![ZERO_LANE; shots.len()];
    let mut distinct: Vec<usize> = Vec::new();
    // Hash buckets hold indices into `distinct` and are chained on word
    // equality; the map is only ever *looked up* by key, never iterated, so
    // its internal order can't leak into results (lint rule no-hash-iter).
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, shot) in shots.iter().enumerate() {
        if shot.is_zero() {
            stats.zero += 1;
            continue;
        }
        let bucket = buckets.entry(shot.hash_words()).or_default();
        match bucket
            .iter()
            .copied()
            .find(|&j| &shots[distinct[j]] == shot)
        {
            Some(j) => {
                stats.cache_hits += 1;
                assign[i] = j;
            }
            None => {
                let j = distinct.len();
                distinct.push(i);
                bucket.push(j);
                stats.cache_misses += 1;
                assign[i] = j;
            }
        }
    }
    let distinct_shots: Vec<BitVec> = distinct.iter().map(|&i| shots[i].clone()).collect();
    let (predictions, batch) = decoder.decode_batch_with_stats(&distinct_shots);
    stats.bp_converged = batch.bp_converged;
    stats.osd_calls = batch.osd_calls;
    // The zero correction is itself a pure function of the decoder, computed
    // once per call (decoders short-circuit all-zero syndromes internally, so
    // this is O(observables)).
    let zero_prediction =
        (stats.zero > 0).then(|| decoder.decode(&BitVec::zeros(decoder.num_detectors())));
    let out = assign
        .iter()
        .map(|&a| {
            if a == ZERO_LANE {
                zero_prediction
                    .clone()
                    .expect("zero prediction computed whenever a zero syndrome was seen")
            } else {
                predictions[a].clone()
            }
        })
        .collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BpOsdDecoder, UnionFindDecoder};
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn surface_dem(d: usize, p: f64) -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, d, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn decode_cache_names_round_trip_and_default_is_on() {
        assert_eq!(DecodeCache::default(), DecodeCache::On);
        for cache in [DecodeCache::On, DecodeCache::Off] {
            assert_eq!(DecodeCache::parse(cache.as_str()), Some(cache));
            assert_eq!(cache.as_str().parse::<DecodeCache>(), Ok(cache));
            assert_eq!(cache.to_string(), cache.as_str());
        }
        assert_eq!(DecodeCache::parse("maybe"), None);
        assert!("maybe".parse::<DecodeCache>().is_err());
    }

    #[test]
    fn cached_and_uncached_predictions_match_per_shot_decode() {
        let dem = surface_dem(3, 1e-2);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(17);
        let shots: Vec<BitVec> = (0..100).map(|_| sampler.sample().0).collect();
        for cache in [DecodeCache::On, DecodeCache::Off] {
            let (predictions, _) = decode_shots_cached(&decoder, &shots, cache);
            assert_eq!(predictions.len(), shots.len());
            for (i, (shot, prediction)) in shots.iter().zip(&predictions).enumerate() {
                assert_eq!(&decoder.decode(shot), prediction, "{cache}: shot {i}");
            }
        }
    }

    #[test]
    fn stats_partition_the_chunk_and_pin_fanout_ordering() {
        // A crafted chunk: zero syndromes interleaved with duplicates, so the
        // first-occurrence dedup order and the fan-out are both exercised.
        let dem = surface_dem(3, 1e-2);
        let decoder = BpOsdDecoder::new(&dem);
        let zero = BitVec::zeros(dem.num_detectors());
        let mut sampler = dem.sampler(23);
        let (a, b) = loop {
            let s1 = sampler.sample().0;
            let s2 = sampler.sample().0;
            if !s1.is_zero() && !s2.is_zero() && s1 != s2 {
                break (s1, s2);
            }
        };
        let shots = vec![
            zero.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            zero.clone(),
            a.clone(),
            b.clone(),
        ];
        let (predictions, stats) = decode_shots_cached(&decoder, &shots, DecodeCache::On);
        assert_eq!(stats.zero, 2);
        assert_eq!(stats.cache_misses, 2, "a and b are the distinct syndromes");
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(
            stats.zero + stats.cache_hits + stats.cache_misses,
            shots.len()
        );
        // Fan-out: duplicates get the first occurrence's prediction object.
        assert_eq!(predictions[1], predictions[3]);
        assert_eq!(predictions[3], predictions[5]);
        assert_eq!(predictions[2], predictions[6]);
        assert_eq!(predictions[0], predictions[4]);
        assert_eq!(predictions[0], decoder.decode(&zero));
        for (shot, prediction) in shots.iter().zip(&predictions) {
            assert_eq!(&decoder.decode(shot), prediction);
        }
    }

    #[test]
    fn cache_works_for_any_decoder_including_union_find() {
        let dem = surface_dem(3, 2e-2);
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(5);
        let shots: Vec<BitVec> = (0..80).map(|_| sampler.sample().0).collect();
        let (on, stats) = decode_shots_cached(&decoder, &shots, DecodeCache::On);
        let (off, _) = decode_shots_cached(&decoder, &shots, DecodeCache::Off);
        assert_eq!(on, off);
        assert_eq!(
            stats.zero + stats.cache_hits + stats.cache_misses,
            shots.len()
        );
        // Union-find reports no BP/OSD stats.
        assert_eq!(stats.bp_converged, 0);
        assert_eq!(stats.osd_calls, 0);
    }

    #[test]
    fn empty_chunk_is_a_no_op() {
        let dem = surface_dem(3, 1e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let (predictions, stats) = decode_shots_cached(&decoder, &[], DecodeCache::On);
        assert!(predictions.is_empty());
        assert_eq!(stats, DecodeStats::default());
    }
}
