//! Bucket-boundary proptests for the log2 histogram layout.
//!
//! The export format and the report analyzer both reconstruct value ranges
//! from bucket indices alone, so the `bucket_of`/`bucket_lower`/`bucket_upper`
//! triple has to be exactly self-consistent: every value lands in a bucket
//! whose `[lower, upper]` range contains it, the ranges tile `u64` without
//! gaps or overlap, and quantile estimates never leave the recorded range.

use prophunt_obs::{bucket_lower, bucket_of, bucket_upper, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every value is inside the `[lower, upper]` range of its own bucket.
    #[test]
    fn value_is_within_its_bucket_bounds(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lower(b) <= v, "lower({b}) > {v}");
        prop_assert!(v <= bucket_upper(b), "{v} > upper({b})");
    }

    /// Bucket assignment is monotone: a larger value never lands in a
    /// smaller bucket.
    #[test]
    fn bucket_assignment_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }

    /// Boundary probes: the upper bound of each bucket maps back into that
    /// bucket, and one past it maps into the next.
    #[test]
    fn bucket_edges_tile_without_gaps(bucket in 0usize..HISTOGRAM_BUCKETS) {
        let upper = bucket_upper(bucket);
        prop_assert_eq!(bucket_of(bucket_lower(bucket)), bucket);
        prop_assert_eq!(bucket_of(upper), bucket);
        if bucket + 1 < HISTOGRAM_BUCKETS {
            prop_assert_eq!(bucket_of(upper + 1), bucket + 1);
            prop_assert_eq!(bucket_lower(bucket + 1), upper + 1);
        }
    }

    /// A recorded histogram's quantiles stay within the log2 envelope of the
    /// recorded values: `quantile(0)` at least the min's bucket lower bound,
    /// `quantile(1)` exactly the max's bucket upper bound.
    #[test]
    fn quantiles_stay_within_the_recorded_envelope(
        values in collection::vec(any::<u64>(), 1..50),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("v");
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("v").unwrap();
        prop_assert_eq!(hs.count, values.len() as u64);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert!(hs.quantile(0.0) >= bucket_lower(bucket_of(min)));
        prop_assert!(hs.quantile(0.0) <= bucket_upper(bucket_of(min)));
        prop_assert_eq!(hs.quantile(1.0), bucket_upper(bucket_of(max)));
        for q in [0.5, 0.9, 0.99] {
            let est = hs.quantile(q);
            prop_assert!(est <= bucket_upper(bucket_of(max)));
            prop_assert!(est >= bucket_lower(bucket_of(min)) || est == 0);
        }
    }
}
