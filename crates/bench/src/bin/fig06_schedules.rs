//! Figure 6: logical performance of a d = 3 surface code under a good (hand-designed)
//! vs poor CNOT schedule, over a sweep of physical error rates.
//!
//! Runs every sweep point as a `LerJob` through one shared `Session`, so the two
//! schedules' memory experiments are each built once and reused across the p sweep.

use prophunt_api::{NoiseSpec, ShotBudget};
use prophunt_bench::{bench_session, run_ler_point, write_bench_report};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_qec::surface::rotated_surface_code_with_layout;

fn main() {
    let quick = std::env::var("PROPHUNT_FULL").is_err();
    let shots = if quick { 1_500 } else { 20_000 };
    let mut session = bench_session();
    let (code, layout) = rotated_surface_code_with_layout(3);
    let good = ScheduleSpec::surface_hand_designed(&code, &layout);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    println!("Figure 6: d = 3 surface code, good vs poor schedule ({shots} shots/point/basis)");
    println!("{:>10} {:>14} {:>14}", "p", "LER(good)", "LER(poor)");
    let ps = [2e-3, 5e-3, 1e-2, 2e-2];
    let mut records = Vec::new();
    for &p in &ps {
        let noise = NoiseSpec::uniform(p);
        let budget = ShotBudget::fixed(shots);
        let g = run_ler_point(&mut session, &code, &good, 3, noise, budget, 11);
        let b = run_ler_point(&mut session, &code, &poor, 3, noise, budget, 11);
        println!(
            "{p:>10.4} {:>14.5} {:>14.5}",
            g.combined.rate(),
            b.combined.rate()
        );
        records.push(g.to_record("good"));
        records.push(b.to_record("poor"));
    }
    let path = write_bench_report("fig06_schedules", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
