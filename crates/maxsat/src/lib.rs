//! SAT and MaxSAT solving for PropHunt's minimum-weight logical-error search.
//!
//! The paper formulates minimum-weight logical-error finding as a MaxSAT problem
//! (Section 5.2): syndrome and logical-observable parities become hard XOR constraints
//! (encoded with auxiliary variables in a Tseitin tree), and each error variable carries
//! a unit soft clause preferring it to be off; the optimum is a minimum-weight
//! undetected logical error. The paper solves these models with Z3 + Loandra; this crate
//! implements the full stack from scratch:
//!
//! * [`CnfBuilder`] — variables, clauses, XOR-tree encoding and totalizer cardinality
//!   encoding ([`encode`]),
//! * [`Solver`] — a CDCL SAT solver with watched literals, first-UIP clause learning,
//!   activity-based branching and restarts ([`solver`]),
//! * [`MaxSatSolver`] — linear-search (LSU) MaxSAT on top of the SAT solver, with
//!   deterministic conflict budgets ([`SolveBudget`]) and model-size statistics
//!   matching the columns of the paper's Table 2 ([`maxsat`]).
//!
//! Termination is deterministic by construction: budgets are measured in SAT-solver
//! conflicts, never wall-clock time, so the same instance with the same budget
//! returns the same outcome on every machine. `Duration`-denominated budgets are
//! converted through the fixed [`maxsat::CONFLICTS_PER_BUDGET_SECOND`] exchange rate.
//!
//! # Example
//!
//! ```
//! use prophunt_maxsat::{CnfBuilder, MaxSatSolver};
//! use std::time::Duration;
//!
//! // Minimise the number of true variables subject to x0 XOR x1 XOR x2 = 1.
//! let mut builder = CnfBuilder::new();
//! let vars: Vec<_> = (0..3).map(|_| builder.new_var()).collect();
//! let lits: Vec<_> = vars.iter().map(|v| v.positive()).collect();
//! builder.add_xor_constraint(&lits, true);
//! let mut solver = MaxSatSolver::new(builder);
//! for v in &vars {
//!     solver.add_soft_false(*v);
//! }
//! let outcome = solver.solve(Duration::from_secs(10));
//! assert_eq!(outcome.cost(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod encode;
pub mod maxsat;
pub mod solver;

pub use cnf::{CnfBuilder, Lit, Var};
pub use maxsat::{duration_to_conflicts, MaxSatOutcome, MaxSatSolver, MaxSatStats};
pub use solver::{SolveBudget, SolveResult, Solver};
