//! The circuit-level decoding graph and ambiguous-subgraph finding (paper Sections 4
//! and 5.1).

use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_gf2::BitMatrix;
use prophunt_qec::CssCode;
use rand::Rng;

/// The bipartite circuit-level decoding graph PropHunt operates on: error mechanisms on
/// one side, detectors (syndrome bits) on the other, plus the observable matrix `L`.
///
/// A `DecodingGraph` owns its detector error model and the experiment it came from, so
/// error mechanisms can be traced back to the circuit gates that cause them.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    experiment: MemoryExperiment,
    dem: DetectorErrorModel,
    /// detector -> error mechanisms flipping it
    detector_errors: Vec<Vec<usize>>,
}

impl DecodingGraph {
    /// Builds the decoding graph of `code` under `schedule` for a memory experiment in
    /// `basis` with `rounds` rounds and uniform depolarizing noise at physical error
    /// rate `p` (shorthand for [`Self::build_with_noise`] with
    /// [`NoiseModel::uniform_depolarizing`]).
    ///
    /// # Errors
    ///
    /// Returns a [`prophunt_circuit::CircuitError`] if the schedule is invalid.
    pub fn build(
        code: &CssCode,
        schedule: &prophunt_circuit::ScheduleSpec,
        rounds: usize,
        basis: MemoryBasis,
        p: f64,
    ) -> Result<Self, prophunt_circuit::CircuitError> {
        Self::build_with_noise(
            code,
            schedule,
            rounds,
            basis,
            &NoiseModel::uniform_depolarizing(p),
        )
    }

    /// Builds the decoding graph under an arbitrary [`NoiseModel`] — the entry point
    /// for optimizing against non-uniform models (SI1000-style, biased).
    ///
    /// # Errors
    ///
    /// Returns a [`prophunt_circuit::CircuitError`] if the schedule is invalid.
    pub fn build_with_noise(
        code: &CssCode,
        schedule: &prophunt_circuit::ScheduleSpec,
        rounds: usize,
        basis: MemoryBasis,
        noise: &NoiseModel,
    ) -> Result<Self, prophunt_circuit::CircuitError> {
        let experiment = MemoryExperiment::build(code, schedule, rounds, basis)?;
        let dem = DetectorErrorModel::from_experiment(&experiment, noise);
        Ok(Self::from_parts(experiment, dem))
    }

    /// Wraps an existing experiment and detector error model.
    pub fn from_parts(experiment: MemoryExperiment, dem: DetectorErrorModel) -> Self {
        let detector_errors = dem.detector_to_errors();
        DecodingGraph {
            experiment,
            dem,
            detector_errors,
        }
    }

    /// Returns the underlying memory experiment.
    pub fn experiment(&self) -> &MemoryExperiment {
        &self.experiment
    }

    /// Returns the underlying detector error model.
    pub fn dem(&self) -> &DetectorErrorModel {
        &self.dem
    }

    /// Returns the number of error nodes.
    pub fn num_errors(&self) -> usize {
        self.dem.num_errors()
    }

    /// Returns the number of syndrome (detector) nodes.
    pub fn num_detectors(&self) -> usize {
        self.dem.num_detectors()
    }

    /// Returns the error mechanisms flipping detector `d`.
    pub fn errors_of_detector(&self, d: usize) -> &[usize] {
        &self.detector_errors[d]
    }

    /// Returns the submatrices `(H', L')` restricted to the given detector set and the
    /// error mechanisms connected *only* to those detectors.
    ///
    /// The returned error list gives the global mechanism index of each column.
    pub fn restricted_matrices(&self, detectors: &[usize]) -> (BitMatrix, BitMatrix, Vec<usize>) {
        let detector_set: std::collections::HashSet<usize> = detectors.iter().copied().collect();
        // Errors fully contained in the detector set.
        let mut contained: Vec<usize> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &d in detectors {
            for &e in &self.detector_errors[d] {
                if seen.insert(e)
                    && self
                        .dem
                        .error(e)
                        .detectors
                        .iter()
                        .all(|x| detector_set.contains(x))
                {
                    contained.push(e);
                }
            }
        }
        contained.sort_unstable();
        let (h, l) = self.matrices_for(detectors, &contained);
        (h, l, contained)
    }

    /// Returns `(H', L')` for an explicit detector set and error set.
    pub fn matrices_for(&self, detectors: &[usize], errors: &[usize]) -> (BitMatrix, BitMatrix) {
        let mut h = BitMatrix::zeros(detectors.len(), errors.len());
        let mut l = BitMatrix::zeros(self.dem.num_observables(), errors.len());
        let det_pos: std::collections::HashMap<usize, usize> =
            detectors.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        for (col, &e) in errors.iter().enumerate() {
            let err = self.dem.error(e);
            for &d in &err.detectors {
                if let Some(&row) = det_pos.get(&d) {
                    h.set(row, col, true);
                }
            }
            for &o in &err.observables {
                l.set(o, col, true);
            }
        }
        (h, l)
    }
}

/// Returns `true` if the pair `(H', L')` contains ambiguity: some logical-observable row
/// is *not* implied by the syndrome rows, i.e. `L' ⊄ rowspace(H')` (paper Section 4.1).
pub fn is_ambiguous(h_sub: &BitMatrix, l_sub: &BitMatrix) -> bool {
    if l_sub.is_zero() {
        return false;
    }
    !h_sub.row_space_contains_all(l_sub)
}

/// An ambiguous subgraph of the decoding graph: a connected set of detectors whose
/// contained error mechanisms admit two explanations of some syndrome assignment with
/// different logical effects.
#[derive(Debug, Clone)]
pub struct AmbiguousSubgraph {
    /// The detector (syndrome-node) indices of the subgraph, sorted.
    pub detectors: Vec<usize>,
    /// The error mechanisms connected only to those detectors (global indices, sorted).
    pub errors: Vec<usize>,
    /// `H'` restricted to the subgraph (rows parallel to `detectors`).
    pub h_sub: BitMatrix,
    /// `L'` restricted to the subgraph.
    pub l_sub: BitMatrix,
}

/// Expands a random connected subgraph of `graph` until it contains ambiguity
/// (paper Section 5.1).
///
/// Starting from a random error node, the subgraph repeatedly adds an error node adjacent
/// to an already-included syndrome node together with that error's syndrome nodes; error
/// nodes connected only to included syndromes join automatically (they are what
/// [`DecodingGraph::restricted_matrices`] collects). Expansion stops as soon as the
/// restricted `(H', L')` pair is ambiguous, or gives up after `max_steps` expansions.
pub fn find_ambiguous_subgraph<R: Rng>(
    graph: &DecodingGraph,
    rng: &mut R,
    max_steps: usize,
) -> Option<AmbiguousSubgraph> {
    if graph.num_errors() == 0 {
        return None;
    }
    let start = rng.gen_range(0..graph.num_errors());
    let mut detector_set: std::collections::BTreeSet<usize> =
        graph.dem().error(start).detectors.iter().copied().collect();
    if detector_set.is_empty() {
        return None;
    }
    for _ in 0..max_steps {
        // lint: allow(no-hash-iter) — false positive: this detector_set is the
        // BTreeSet above (sorted iteration); the rule's file-scope name heuristic
        // matches the unrelated HashSet of the same name in restricted_matrices.
        let detectors: Vec<usize> = detector_set.iter().copied().collect();
        let (h_sub, l_sub, errors) = graph.restricted_matrices(&detectors);
        if is_ambiguous(&h_sub, &l_sub) {
            return Some(AmbiguousSubgraph {
                detectors,
                errors,
                h_sub,
                l_sub,
            });
        }
        // Candidate expansions: error nodes adjacent to the subgraph but not contained.
        let mut frontier: Vec<usize> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &d in &detectors {
            for &e in graph.errors_of_detector(d) {
                if seen.insert(e)
                    && !graph
                        .dem()
                        .error(e)
                        .detectors
                        .iter()
                        .all(|x| detector_set.contains(x))
                {
                    frontier.push(e);
                }
            }
        }
        if frontier.is_empty() {
            return None;
        }
        let chosen = frontier[rng.gen_range(0..frontier.len())];
        detector_set.extend(graph.dem().error(chosen).detectors.iter().copied());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::ScheduleSpec;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_for(d: usize, poor: bool) -> DecodingGraph {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = if poor {
            ScheduleSpec::surface_poor(&code, &layout)
        } else {
            ScheduleSpec::surface_hand_designed(&code, &layout)
        };
        DecodingGraph::build(&code, &schedule, d, MemoryBasis::Z, 1e-3).unwrap()
    }

    #[test]
    fn ambiguity_predicate_matches_rank_definition() {
        // L in rowspace(H): unambiguous.
        let h = BitMatrix::from_rows_u8(&[&[1, 1, 0], &[0, 1, 1]]);
        let l = BitMatrix::from_rows_u8(&[&[1, 0, 1]]);
        assert!(!is_ambiguous(&h, &l));
        // L not in rowspace(H): ambiguous.
        let l2 = BitMatrix::from_rows_u8(&[&[1, 0, 0]]);
        assert!(is_ambiguous(&h, &l2));
        // Zero L can never be ambiguous.
        assert!(!is_ambiguous(&h, &BitMatrix::zeros(1, 3)));
    }

    #[test]
    fn restricted_matrices_collect_contained_errors_only() {
        let graph = graph_for(3, false);
        let all: Vec<usize> = (0..graph.num_detectors()).collect();
        let (h, l, errors) = graph.restricted_matrices(&all);
        // With every detector included, every error is contained.
        assert_eq!(errors.len(), graph.num_errors());
        assert_eq!(h.num_rows(), graph.num_detectors());
        assert_eq!(l.num_rows(), 1);
        // A single detector contains only errors fully local to it.
        let (h1, _, e1) = graph.restricted_matrices(&all[..1]);
        assert!(e1.len() < graph.num_errors());
        assert_eq!(h1.num_rows(), 1);
        for &e in &e1 {
            assert_eq!(graph.dem().error(e).detectors, vec![all[0]]);
        }
    }

    #[test]
    fn full_graph_of_any_schedule_is_ambiguous() {
        // The complete decoding graph always contains ambiguity (the code has logical
        // operators), so expansion must eventually terminate.
        for poor in [false, true] {
            let graph = graph_for(3, poor);
            let all: Vec<usize> = (0..graph.num_detectors()).collect();
            let (h, l, _) = graph.restricted_matrices(&all);
            assert!(is_ambiguous(&h, &l));
        }
    }

    #[test]
    fn subgraph_finder_terminates_and_returns_ambiguous_subgraphs() {
        let graph = graph_for(3, true);
        let mut rng = StdRng::seed_from_u64(7);
        let mut found = 0;
        for _ in 0..20 {
            if let Some(sub) = find_ambiguous_subgraph(&graph, &mut rng, 60) {
                assert!(is_ambiguous(&sub.h_sub, &sub.l_sub));
                assert!(!sub.detectors.is_empty());
                assert_eq!(sub.h_sub.num_rows(), sub.detectors.len());
                assert_eq!(sub.h_sub.num_cols(), sub.errors.len());
                found += 1;
            }
        }
        assert!(
            found > 0,
            "expected at least one ambiguous subgraph in 20 attempts"
        );
    }

    #[test]
    fn poor_schedule_subgraphs_are_smaller_on_average() {
        // The poor schedule has lower effective distance, so ambiguity should typically
        // be found in smaller subgraphs than for the hand-designed schedule.
        let poor = graph_for(3, true);
        let good = graph_for(3, false);
        let mut rng = StdRng::seed_from_u64(11);
        let avg_size = |g: &DecodingGraph, rng: &mut StdRng| -> f64 {
            let mut total = 0usize;
            let mut count = 0usize;
            for _ in 0..15 {
                if let Some(sub) = find_ambiguous_subgraph(g, rng, 80) {
                    total += sub.errors.len();
                    count += 1;
                }
            }
            total as f64 / count.max(1) as f64
        };
        let poor_avg = avg_size(&poor, &mut rng);
        let good_avg = avg_size(&good, &mut rng);
        assert!(
            poor_avg <= good_avg * 1.5,
            "poor-schedule subgraphs unexpectedly large: {poor_avg} vs {good_avg}"
        );
    }
}
