//! Packed bit vectors over GF(2).

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector over GF(2), packed 64 bits per machine word.
///
/// Addition over GF(2) is XOR ([`BitXorAssign`] is implemented), and the inner product is
/// the parity of the bitwise AND ([`BitVec::dot`]).
///
/// # Example
///
/// ```
/// use prophunt_gf2::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// let w = BitVec::from_indices(10, &[3, 4]);
/// assert_eq!((&v ^ &w).ones().collect::<Vec<_>>(), vec![4, 7]);
/// assert!(v.dot(&w));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        BitVec {
            len,
            words: vec![0u64; nwords],
        }
    }

    /// Creates a vector of length `len` with ones at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, ones: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of `0`/`1` bytes (any nonzero byte is treated as one).
    pub fn from_u8(bits: &[u8]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Returns the number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at position `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at position `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        *word ^= mask;
        *word & mask != 0
    }

    /// Returns the Hamming weight (number of one bits).
    pub fn weight(&self) -> usize {
        self.count_ones()
    }

    /// Returns the number of one bits, counting whole words at a time.
    ///
    /// Four independent accumulators keep the per-word popcounts pipelined; this
    /// is the fast path behind [`BitVec::weight`] and the frame kernels of the
    /// bit-parallel decoder engine.
    pub fn count_ones(&self) -> usize {
        let mut acc = [0usize; 4];
        let mut quads = self.words.chunks_exact(4);
        for quad in &mut quads {
            acc[0] += quad[0].count_ones() as usize;
            acc[1] += quad[1].count_ones() as usize;
            acc[2] += quad[2].count_ones() as usize;
            acc[3] += quad[3].count_ones() as usize;
        }
        for (i, w) in quads.remainder().iter().enumerate() {
            acc[i] += w.count_ones() as usize;
        }
        acc[0] + acc[1] + acc[2] + acc[3]
    }

    /// Returns the backing words, 64 bits per word in little-endian bit order.
    ///
    /// Bits at positions `>= self.len()` in the final word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns the GF(2) inner product with `other` (parity of the bitwise AND).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot product length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Adds (XORs) `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Adds (XORs) raw little-endian words into `self`, one full word at a time.
    ///
    /// This is the bulk-XOR kernel of the bit-parallel frame engine: `words[i]`
    /// is XORed into bits `64 * i ..` of the vector. Bits of the final input
    /// word at positions `>= self.len()` are ignored, preserving the invariant
    /// that storage past the logical length stays zero.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the vector's word count
    /// (`self.len().div_ceil(64)`).
    pub fn xor_assign_from_slice(&mut self, words: &[u64]) {
        assert_eq!(
            self.words.len(),
            words.len(),
            "xor_assign_from_slice word count mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(words.iter()) {
            *a ^= b;
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Returns the bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "and length mismatch");
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Returns an iterator over the indices of the set bits, in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            vec: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Collects the vector into a `Vec<u8>` of zeros and ones.
    pub fn to_u8_vec(&self) -> Vec<u8> {
        (0..self.len).map(|i| u8::from(self.get(i))).collect()
    }

    /// Returns a copy extended (with zeros) or truncated to `new_len` bits.
    pub fn resized(&self, new_len: usize) -> BitVec {
        let mut out = BitVec::zeros(new_len);
        for i in self.ones() {
            if i < new_len {
                out.set(i, true);
            }
        }
        out
    }

    /// Concatenates `self` and `other` into a new vector.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in self.ones() {
            out.set(i, true);
        }
        for i in other.ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns a 64-bit content hash folded over the backing words.
    ///
    /// The hash is a pure function of `(len, words)` with no per-process
    /// randomization, so it is stable across runs, threads and platforms —
    /// which is what lets the frame engine's per-chunk syndrome-dedup cache
    /// key syndromes by content while keeping results bit-identical at any
    /// thread count. Equal vectors always hash equal; the converse is only
    /// probabilistic, so hash buckets must still compare contents (`==`).
    pub fn hash_words(&self) -> u64 {
        // splitmix64 finalizer folded over the length and each word.
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = mix(self.len as u64 ^ 0x9e37_79b9_7f4a_7c15);
        for &w in &self.words {
            h = mix(h ^ w).wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
        h
    }

    /// Returns the sub-vector given by the listed positions, in order.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn select(&self, positions: &[usize]) -> BitVec {
        let mut out = BitVec::zeros(positions.len());
        for (j, &p) in positions.iter().enumerate() {
            if self.get(p) {
                out.set(j, true);
            }
        }
        out
    }
}

/// Transposes detector-major frame words into per-lane [`BitVec`]s.
///
/// The bit-parallel frame engine stores one 64-lane word per row (detector or
/// observable): bit `lane` of `rows[r]` is row `r` of shot-lane `lane`. This
/// kernel flips that layout into `lanes` vectors of `rows.len()` bits each, so
/// `out[lane].get(r) == (rows[r] >> lane) & 1`.
///
/// Rows are processed in 64×64 blocks with a word-level butterfly transpose
/// (Hacker's Delight 7-3 adapted to LSB-first bit order), so the cost is
/// `O(rows.len())` word operations rather than one bit test per cell.
///
/// # Panics
///
/// Panics if `lanes > 64`.
pub fn transpose_lane_words(rows: &[u64], lanes: usize) -> Vec<BitVec> {
    assert!(lanes <= WORD_BITS, "at most 64 lanes per word, got {lanes}");
    let mut out: Vec<BitVec> = (0..lanes).map(|_| BitVec::zeros(rows.len())).collect();
    let mut block = [0u64; WORD_BITS];
    for (w, chunk) in rows.chunks(WORD_BITS).enumerate() {
        block[..chunk.len()].copy_from_slice(chunk);
        // Zero-padding keeps the tail bits of every output word zero, so the
        // BitVec invariant (no set bits past the logical length) holds.
        block[chunk.len()..].fill(0);
        transpose_64x64(&mut block);
        for (lane, v) in out.iter_mut().enumerate() {
            v.words[w] = block[lane];
        }
    }
    out
}

/// In-place 64×64 bit-matrix transpose with LSB-first bit order: after the
/// call, bit `j` of `a[i]` is the old bit `i` of `a[j]`.
fn transpose_64x64(a: &mut [u64; WORD_BITS]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_ffff_ffff;
    while j != 0 {
        let mut k = 0;
        while k < WORD_BITS {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign_with(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign_with(rhs);
        out
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

/// Iterator over the indices of set bits of a [`BitVec`], produced by [`BitVec::ones`].
pub struct Ones<'a> {
    vec: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_index * WORD_BITS + bit;
                if idx < self.vec.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_index += 1;
            if self.word_index >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_no_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.weight(), 0);
        assert!(v.is_zero());
        assert_eq!(v.ones().count(), 0);
        assert_eq!(v.first_one(), None);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = BitVec::zeros(200);
        for &i in &[0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.weight(), 8);
        assert_eq!(
            v.ones().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 199]
        );
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 7);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(5);
        assert!(v.flip(2));
        assert!(!v.flip(2));
        assert!(v.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn xor_is_addition_mod_two() {
        let a = BitVec::from_indices(10, &[1, 3, 5]);
        let b = BitVec::from_indices(10, &[3, 4, 5, 9]);
        let c = &a ^ &b;
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn dot_is_parity_of_overlap() {
        let a = BitVec::from_indices(80, &[0, 64, 70]);
        let b = BitVec::from_indices(80, &[64, 70, 79]);
        assert!(!a.dot(&b)); // overlap {64, 70} has even parity
        let c = BitVec::from_indices(80, &[0]);
        assert!(a.dot(&c));
    }

    #[test]
    fn from_u8_and_to_u8_roundtrip() {
        let bits = [1u8, 0, 0, 1, 1, 0, 1];
        let v = BitVec::from_u8(&bits);
        assert_eq!(v.to_u8_vec(), bits.to_vec());
    }

    #[test]
    fn concat_and_select() {
        let a = BitVec::from_indices(3, &[0, 2]);
        let b = BitVec::from_indices(4, &[1]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 7);
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![0, 2, 4]);
        let s = c.select(&[2, 3, 4]);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn resized_truncates_and_extends() {
        let a = BitVec::from_indices(5, &[0, 4]);
        assert_eq!(a.resized(3).ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(a.resized(10).ones().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn words_accessor_masks_nothing_and_tail_stays_zero() {
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(69, true);
        assert_eq!(v.words().len(), 2);
        assert_eq!(v.words()[0], 1);
        assert_eq!(v.words()[1], 1u64 << 5);
        v.xor_assign_from_slice(&[0b10, u64::MAX]);
        // Bits 70..128 of the input are ignored: the tail stays zero.
        assert_eq!(v.words()[1] >> 6, 0);
        assert_eq!(
            v.ones().collect::<Vec<_>>(),
            std::iter::once(0)
                .chain(std::iter::once(1))
                .chain(64..69)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn transpose_lane_words_matches_bit_extraction() {
        // 100 rows, 7 lanes, deterministic pseudo-random content.
        let rows: Vec<u64> = (0..100u64)
            .map(|r| r.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17))
            .collect();
        let lanes = 7;
        let out = transpose_lane_words(&rows, lanes);
        assert_eq!(out.len(), lanes);
        for (lane, v) in out.iter().enumerate() {
            assert_eq!(v.len(), rows.len());
            for (r, &word) in rows.iter().enumerate() {
                assert_eq!(v.get(r), (word >> lane) & 1 == 1, "lane {lane} row {r}");
            }
        }
        assert!(transpose_lane_words(&[], 64).iter().all(|v| v.is_empty()));
        assert!(transpose_lane_words(&rows, 0).is_empty());
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let v = BitVec::from_indices(4, &[1]);
        assert_eq!(format!("{v}"), "0100");
        assert_eq!(format!("{v:?}"), "BitVec[0100]");
        let empty = BitVec::zeros(0);
        assert_eq!(format!("{empty:?}"), "BitVec[]");
    }

    #[test]
    fn hash_words_is_a_pure_content_function() {
        // Same content built two different ways hashes equal.
        let a = BitVec::from_indices(130, &[0, 64, 129]);
        let mut b = BitVec::zeros(130);
        for i in [129, 0, 64] {
            b.set(i, true);
        }
        assert_eq!(a, b);
        assert_eq!(a.hash_words(), b.hash_words());
        // Setting then clearing a bit restores the hash (tail words stay zero).
        let mut c = a.clone();
        c.set(70, true);
        assert_ne!(c.hash_words(), a.hash_words());
        c.set(70, false);
        assert_eq!(c.hash_words(), a.hash_words());
    }

    #[test]
    fn hash_words_distinguishes_length_and_nearby_contents() {
        // Different lengths with identical (empty) words must not collide: a
        // zero syndrome over 64 detectors is not a zero syndrome over 65.
        assert_ne!(
            BitVec::zeros(64).hash_words(),
            BitVec::zeros(65).hash_words()
        );
        // Single-bit differences across the word boundary all hash apart.
        let base = BitVec::zeros(128);
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.hash_words());
        for i in 0..128 {
            let v = BitVec::from_indices(128, &[i]);
            assert!(seen.insert(v.hash_words()), "collision at bit {i}");
        }
    }

    proptest! {
        #[test]
        fn prop_hash_words_matches_on_equal_contents(
            bits in proptest::collection::vec(any::<bool>(), 0..300),
        ) {
            let v = BitVec::from_bools(&bits);
            let w = BitVec::from_bools(&bits);
            prop_assert_eq!(v.hash_words(), w.hash_words());
            // XOR with itself gives the all-zero vector of the same length.
            let z = &v ^ &v;
            prop_assert_eq!(z.hash_words(), BitVec::zeros(bits.len()).hash_words());
        }

        #[test]
        fn prop_xor_self_is_zero(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            let z = &v ^ &v;
            prop_assert!(z.is_zero());
        }

        #[test]
        fn prop_weight_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            prop_assert_eq!(v.weight(), bits.iter().filter(|&&b| b).count());
        }

        #[test]
        fn prop_ones_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            let expected: Vec<usize> = bits
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect();
            prop_assert_eq!(v.ones().collect::<Vec<_>>(), expected);
        }

        #[test]
        fn prop_count_ones_matches_naive_bit_loop(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bools(&bits);
            let naive = (0..v.len()).filter(|&i| v.get(i)).count();
            prop_assert_eq!(v.count_ones(), naive);
            prop_assert_eq!(v.weight(), naive);
        }

        #[test]
        fn prop_xor_assign_from_slice_matches_naive_bit_loop(
            bits in proptest::collection::vec(any::<bool>(), 1..300),
            words in proptest::collection::vec(any::<u64>(), 5),
        ) {
            let mut v = BitVec::from_bools(&bits);
            let nwords = bits.len().div_ceil(64);
            let words = &words[..nwords];
            let mut expected = BitVec::from_bools(&bits);
            for i in 0..bits.len() {
                if (words[i / 64] >> (i % 64)) & 1 == 1 {
                    expected.flip(i);
                }
            }
            v.xor_assign_from_slice(words);
            prop_assert_eq!(&v, &expected);
            prop_assert_eq!(v.count_ones(), expected.weight());
        }

        #[test]
        fn prop_transpose_lane_words_matches_naive_bit_loop(
            rows in proptest::collection::vec(any::<u64>(), 0..150),
            lanes in 0usize..65,
        ) {
            let out = transpose_lane_words(&rows, lanes);
            prop_assert_eq!(out.len(), lanes);
            for (lane, v) in out.iter().enumerate() {
                prop_assert_eq!(v.len(), rows.len());
                for (r, &word) in rows.iter().enumerate() {
                    prop_assert_eq!(v.get(r), (word >> lane) & 1 == 1);
                }
            }
        }

        #[test]
        fn prop_dot_commutes(
            a in proptest::collection::vec(any::<bool>(), 150),
            b in proptest::collection::vec(any::<bool>(), 150),
        ) {
            let va = BitVec::from_bools(&a);
            let vb = BitVec::from_bools(&b);
            prop_assert_eq!(va.dot(&vb), vb.dot(&va));
        }

        #[test]
        fn prop_xor_associative(
            a in proptest::collection::vec(any::<bool>(), 100),
            b in proptest::collection::vec(any::<bool>(), 100),
            c in proptest::collection::vec(any::<bool>(), 100),
        ) {
            let (va, vb, vc) = (BitVec::from_bools(&a), BitVec::from_bools(&b), BitVec::from_bools(&c));
            let left = &(&va ^ &vb) ^ &vc;
            let right = &va ^ &(&vb ^ &vc);
            prop_assert_eq!(left, right);
        }
    }
}
