//! Thread-per-candidate vs pooled candidate verification (the tentpole of the
//! `prophunt-runtime` refactor), measured on the d = 5 rotated surface code.
//!
//! The seed implementation's optimizer spawned **one OS thread per candidate
//! change** during the verify stage. This bench rebuilds that workload — a
//! decoding graph, a batch of ambiguous subgraphs with their minimum-weight
//! solutions, and every enumerated candidate — and times three executions of
//! the identical verification work:
//!
//! * `verify_thread_per_candidate` — the seed's strategy: spawn one scoped OS
//!   thread per candidate.
//! * `verify_pooled_8_threads` — `Runtime::par_map` with 8 bounded workers.
//! * `verify_sequential` — single-threaded reference.
//!
//! Run with `cargo bench --bench runtime`. The measurements are also written
//! to `BENCH_runtime.json` at the repository root so the baseline is recorded
//! alongside the code.

use criterion::Criterion;
use prophunt::ambiguity::{find_ambiguous_subgraph, AmbiguousSubgraph, DecodingGraph};
use prophunt::changes::{enumerate_candidates, verify_candidate};
use prophunt::minweight::{min_weight_logical_error, MinWeightSolution};
use prophunt::CandidateChange;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{MemoryBasis, NoiseModel, ScheduleEval};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;
use prophunt_runtime::{Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const ROUNDS: usize = 5;
const P: f64 = 1e-3;

struct Workload {
    code: CssCode,
    eval: ScheduleEval,
    graph: DecodingGraph,
    tasks: Vec<(AmbiguousSubgraph, MinWeightSolution, Vec<CandidateChange>)>,
    candidates: usize,
}

fn build_workload() -> Workload {
    let (code, layout) = rotated_surface_code_with_layout(5);
    let schedule = ScheduleSpec::surface_poor(&code, &layout);
    let graph =
        DecodingGraph::build(&code, &schedule, ROUNDS, MemoryBasis::Z, P).expect("valid schedule");
    // Reproduce the optimizer's first-iteration workload: sample, dedup, solve,
    // enumerate.
    let mut rng = StdRng::seed_from_u64(2);
    let mut subgraphs: Vec<AmbiguousSubgraph> = (0..120)
        .filter_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 120))
        .collect();
    subgraphs.sort_by_key(|s| (s.errors.len(), s.detectors.clone()));
    subgraphs.dedup_by(|a, b| a.detectors == b.detectors);
    subgraphs.truncate(8);
    let mut tasks = Vec::new();
    let mut candidates = 0;
    for sub in subgraphs {
        let Some(solution) = min_weight_logical_error(&sub, Duration::from_secs(30)) else {
            continue;
        };
        let cands = enumerate_candidates(&graph, &code, &schedule, &solution, &mut rng);
        candidates += cands.len();
        tasks.push((sub, solution, cands));
    }
    assert!(
        candidates >= 8,
        "workload too small: {candidates} candidates"
    );
    let eval = ScheduleEval::new(schedule).expect("valid schedule");
    Workload {
        code,
        eval,
        graph,
        tasks,
        candidates,
    }
}

/// The seed implementation's strategy: one scoped OS thread per candidate.
fn verify_thread_per_candidate(w: &Workload) -> usize {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (sub, solution, candidates) in &w.tasks {
            for candidate in candidates {
                handles.push(scope.spawn(move || {
                    verify_candidate(
                        &w.code,
                        &w.eval,
                        candidate,
                        sub,
                        solution,
                        &w.graph,
                        ROUNDS,
                        MemoryBasis::Z,
                        &NoiseModel::uniform_depolarizing(P),
                    )
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("verification thread"))
            .filter(Option::is_some)
            .count()
    })
}

/// The runtime's strategy: bounded pooled tasks.
fn verify_pooled(w: &Workload, threads: usize) -> usize {
    let runtime = Runtime::new(RuntimeConfig::new(threads, 1, 0));
    let work: Vec<(&AmbiguousSubgraph, &MinWeightSolution, &CandidateChange)> = w
        .tasks
        .iter()
        .flat_map(|(sub, solution, candidates)| candidates.iter().map(move |c| (sub, solution, c)))
        .collect();
    runtime
        .par_map(&work, |&(sub, solution, candidate)| {
            verify_candidate(
                &w.code,
                &w.eval,
                candidate,
                sub,
                solution,
                &w.graph,
                ROUNDS,
                MemoryBasis::Z,
                &NoiseModel::uniform_depolarizing(P),
            )
        })
        .into_iter()
        .filter(Option::is_some)
        .count()
}

fn write_baseline(w: &Workload, criterion: &Criterion) {
    // A filtered run (`cargo bench <filter>`) measures only a subset; don't
    // clobber the committed baseline with partial results.
    if criterion.results().len() < 3 {
        println!(
            "skipping BENCH_runtime.json (only {} of 3 benches ran — filtered?)",
            criterion.results().len()
        );
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let mut entries = Vec::new();
    for (name, sample) in criterion.results() {
        entries.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"min_ns\": {:.0},\n      \"mean_ns\": {:.0},\n      \"max_ns\": {:.0}\n    }}",
            sample.min_ns, sample.mean_ns, sample.max_ns
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"candidate verification: thread-per-candidate vs pooled\",\n  \
         \"workload\": \"d=5 rotated surface code, poor schedule, {} subgraphs, {} candidates\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        w.tasks.len(),
        w.candidates,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_runtime.json");
    println!("baseline written to BENCH_runtime.json");
}

fn main() {
    let workload = build_workload();
    println!(
        "workload: {} subgraphs, {} candidates",
        workload.tasks.len(),
        workload.candidates
    );
    // Correctness cross-check before timing: all strategies agree.
    let expected = verify_pooled(&workload, 1);
    assert_eq!(verify_pooled(&workload, 8), expected);
    assert_eq!(verify_thread_per_candidate(&workload), expected);

    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    criterion.bench_function("verify_thread_per_candidate", |b| {
        b.iter(|| verify_thread_per_candidate(&workload))
    });
    criterion.bench_function("verify_pooled_8_threads", |b| {
        b.iter(|| verify_pooled(&workload, 8))
    });
    criterion.bench_function("verify_sequential", |b| {
        b.iter(|| verify_pooled(&workload, 1))
    });
    write_baseline(&workload, &criterion);
}
