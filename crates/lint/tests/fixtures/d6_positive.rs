// D6 positive: panics reachable from user input in a user-facing crate.
pub fn parse_count(text: &str) -> u64 {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        panic!("empty count");
    }
    trimmed.parse::<u64>().unwrap()
}

pub fn parse_ratio(text: &str) -> f64 {
    text.parse::<f64>().expect("ratio must be a float")
}

pub fn never(text: &str) -> ! {
    let _ = text;
    unreachable!("user input reached an impossible state")
}
