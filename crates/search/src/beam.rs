//! Greedy beam search over schedule orderings.

use crate::moves::MoveSet;
use crate::strategy::{Incumbent, Proposal, SearchContext, Strategy};
use prophunt_circuit::schedule::eval::ScheduleEval;
use prophunt_obs::Counter;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Greedy beam search: a beam of the `beam_width` best ordering assignments
/// found so far, each expanded with seeded random moves every round, with the
/// shallowest `beam_width` survivors (parents included) carried forward.
///
/// Where annealing follows one trajectory and hill climbing restarts, the beam
/// keeps several partially refined orderings alive at once, so a deep
/// reordering that only pays off after several compounding moves is not
/// discarded the moment an alternative looks one layer shallower.
///
/// Expansion drives one [`ScheduleEval`] per parent: each candidate move is
/// applied incrementally, the resulting schedule captured, and the eval
/// reverted back to the parent — duplicates are dropped by canonical
/// fingerprint instead of full schedule comparison.
///
/// Incumbent policy: injects the incumbent into the beam (displacing the
/// deepest slot) when it is shallower than the current beam best, so the whole
/// beam refines the portfolio's best known orderings.
#[derive(Debug)]
pub struct Beam {
    moves: MoveSet,
    /// Beam slots ordered shallow-to-deep, ties kept in insertion order,
    /// each with its schedule fingerprint for dedup.
    beam: Vec<(Proposal, u64)>,
    width: usize,
    proposals_per_round: usize,
    /// Hoisted `search.beam.expansions` counter handle (None when the
    /// context's observability is disabled).
    expansions: Option<Counter>,
}

impl Beam {
    /// Creates an instance whose beam starts as the initial schedule alone.
    pub fn new(ctx: &SearchContext) -> Beam {
        let depth = ctx
            .initial
            .depth()
            .expect("search context schedules are validated");
        let fingerprint = ctx.initial.fingerprint();
        Beam {
            moves: MoveSet::new(&ctx.initial),
            beam: vec![(
                Proposal {
                    schedule: ctx.initial.clone(),
                    depth,
                },
                fingerprint,
            )],
            width: ctx.params.beam_width.max(1),
            proposals_per_round: ctx.params.proposals_per_round,
            expansions: ctx.obs.counter("search.beam.expansions"),
        }
    }

    /// Inserts `candidate` keeping the beam sorted by depth (stable for ties)
    /// and truncated to the width; duplicates of existing slots — detected by
    /// canonical fingerprint — are dropped.
    fn insert(&mut self, candidate: Proposal, fingerprint: u64) {
        if self.beam.iter().any(|(_, fp)| *fp == fingerprint) {
            return;
        }
        let at = self
            .beam
            .iter()
            .position(|(p, _)| p.depth > candidate.depth)
            .unwrap_or(self.beam.len());
        self.beam.insert(at, (candidate, fingerprint));
        self.beam.truncate(self.width);
    }
}

impl Strategy for Beam {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn propose(&mut self, _round: usize, seed: u64) -> Proposal {
        let mut rng = StdRng::seed_from_u64(seed);
        let parents: Vec<Proposal> = self.beam.iter().map(|(p, _)| p.clone()).collect();
        let per_parent = (self.proposals_per_round / parents.len().max(1)).max(1);
        for parent in &parents {
            let mut eval = ScheduleEval::new(parent.schedule.clone())
                .expect("beam slots hold valid schedules");
            for _ in 0..per_parent {
                let Some(mv) = self.moves.draw(eval.spec(), &mut rng) else {
                    continue;
                };
                if let Some(depth) = eval.try_apply(&mv) {
                    if let Some(c) = &self.expansions {
                        c.inc();
                    }
                    let fingerprint = eval.fingerprint();
                    self.insert(
                        Proposal {
                            schedule: eval.spec().clone(),
                            depth,
                        },
                        fingerprint,
                    );
                    eval.revert();
                }
            }
        }
        self.beam[0].0.clone()
    }

    fn observe(&mut self, incumbent: &Incumbent, accepted: bool) {
        if !accepted && incumbent.depth < self.beam[0].0.depth {
            self.insert(
                Proposal {
                    schedule: incumbent.schedule.clone(),
                    depth: incumbent.depth,
                },
                incumbent.schedule.fingerprint(),
            );
        }
    }
}
