//! `prophunt optimize` — run the PropHunt loop as an `OptimizeJob` through the
//! `prophunt-api` Session, streaming iteration records as JSON-lines and writing
//! the final schedule as a file. `--resume` restarts from a previously written
//! schedule file.

use crate::args::{CliError, Flags};
use crate::common::{
    load_code, load_schedule, meta_record, noise_from_flags, runtime_from_flags,
    session_from_flags, write_file, write_metrics_file, write_trace_files,
};
use prophunt_api::{Event, ExperimentSpec, OptimizeJob, ScheduleSource};
use prophunt_formats::report::{iteration_to_record, ReportRecord};
use prophunt_formats::write_schedule;
use std::io::Write as _;

pub const USAGE: &str = "\
prophunt optimize --code <family-or-spec-file> [options]

  --code          code family (surface:3, ...) or path to a prophunt-code spec file
  --schedule      starting schedule: coloration (default), hand, or a schedule file
  --resume        start from a previously exported schedule file
                  (alias for --schedule <file>; the two are mutually exclusive)
  --rounds        syndrome-measurement rounds (default 3)
  --p             physical error rate (default 0.001)
  --noise         full noise spec to optimize against (depolarizing:<p>[:<idle>],
                  si1000:<p>, biased:<p>:<eta>[:<idle>]); conflicts with --p
  --iterations    optimization iterations (default 4)
  --samples       subgraph samples per iteration (default 40)
  --seed          base RNG seed (default 0)
  --threads       worker threads (default 4; wall-clock only)
  --chunk-size    deterministic chunk size (default 64)
  --out-schedule  where to write the final schedule (default optimized.schedule)
  --report        write JSON-lines iteration records to this file
                  (default: stream them to stdout)
  --metrics       write a meta + metrics JSON-lines pair (session registry
                  snapshot) to this file
  --trace         record a span-event trace of the run and write it to this
                  file (JSON-lines `trace` records) plus a Chrome trace-event /
                  Perfetto JSON sibling at <file>.chrome.json

The report stream starts with a `meta` provenance record; parsers treat it as
optional.";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "code",
            "schedule",
            "resume",
            "rounds",
            "p",
            "noise",
            "iterations",
            "samples",
            "seed",
            "threads",
            "chunk-size",
            "out-schedule",
            "report",
            "metrics",
            "trace",
        ],
    )?;
    if flags.get("schedule").is_some() && flags.get("resume").is_some() {
        return Err(CliError::usage(
            "--schedule and --resume are mutually exclusive",
        ));
    }
    let resolved = load_code(flags.require("code")?)?;
    let initial = load_schedule(flags.get("resume").or(flags.get("schedule")), &resolved)?;
    let rounds = flags.num("rounds", 3usize)?;
    if rounds == 0 {
        return Err(CliError::usage("--rounds must be at least 1"));
    }
    let runtime = runtime_from_flags(&flags)?;
    let noise = noise_from_flags(&flags)?;

    let code_name = resolved.code.name().to_string();
    let code_display = resolved.code.to_string();
    let spec = ExperimentSpec::builder()
        .resolved_code(resolved)
        .schedule(ScheduleSource::Explicit(initial.clone()))
        .noise(noise)
        .rounds(rounds)
        .build()
        .map_err(CliError::failure)?;
    let job = OptimizeJob::new(spec)
        .with_iterations(flags.num("iterations", 4usize)?)
        .with_samples(flags.num("samples", 40usize)?);

    // The report sink: a file when --report is given, stdout otherwise. Records are
    // flushed line by line so a long run can be followed (or consumed) live.
    let mut sink: Box<dyn std::io::Write> = match flags.get("report") {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| CliError::failure(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout()),
    };
    let mut emit = |record: &ReportRecord| {
        writeln!(sink, "{}", record.to_json_line())
            .and_then(|()| sink.flush())
            .map_err(|e| CliError::failure(format!("cannot write report record: {e}")))
    };

    let meta = meta_record(&runtime, "");
    emit(&meta)?;
    emit(&ReportRecord::RunStart {
        code: code_name,
        seed: runtime.seed,
        chunk_size: runtime.chunk_size as u64,
        initial_depth: initial
            .depth()
            .map_err(|e| CliError::failure(format!("initial schedule has no layout: {e}")))?
            as u64,
        initial_schedule: write_schedule(&initial),
    })?;

    let (mut session, trace) = session_from_flags(&flags, runtime);
    // The unified event stream replaces the bespoke observer closure: iteration
    // events become `iteration` records as they complete.
    let mut stream_error: Option<CliError> = None;
    let outcome = session
        .run_optimize(&job, |event| {
            if let Event::Iteration(record) = event {
                if stream_error.is_none() {
                    stream_error = emit(&iteration_to_record(record)).err();
                }
            }
        })
        .map_err(|e| CliError::failure(format!("optimization failed: {e}")))?;
    if let Some(err) = stream_error {
        return Err(err);
    }
    let result = &outcome.result;

    emit(&ReportRecord::RunEnd {
        iterations: result.records.len() as u64,
        total_changes: result.total_changes_applied() as u64,
        final_depth: result.final_depth() as u64,
        final_schedule: write_schedule(&result.final_schedule),
    })?;

    let out_schedule = flags.get("out-schedule").unwrap_or("optimized.schedule");
    write_file(out_schedule, &write_schedule(&result.final_schedule))?;
    if let Some(path) = flags.get("metrics") {
        write_metrics_file(path, &meta, &session.metrics())?;
    }
    if let Some(sink) = &trace {
        write_trace_files(sink, &meta)?;
    }
    eprintln!(
        "optimized {}: {} iterations ({}), {} changes, final CNOT depth {}; schedule written to {}",
        code_display,
        result.records.len(),
        outcome.stop.as_str(),
        result.total_changes_applied(),
        result.final_depth(),
        out_schedule
    );
    Ok(())
}
