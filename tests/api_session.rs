//! End-to-end coverage of the unified experiment API: Session caching across
//! jobs, the unified event stream, decoder/noise registries, and the
//! determinism of adaptively budgeted jobs across thread counts.

use prophunt_suite::api::{
    BasisSelection, Event, ExperimentSpec, JobKind, LerJob, OptimizeJob, ScheduleSource, Session,
    ShotBudget, StopReason,
};
use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::formats::report::ReportRecord;
use prophunt_suite::runtime::RuntimeConfig;

fn spec_d3(p: f64) -> ExperimentSpec {
    ExperimentSpec::builder()
        .code_family("surface:3")
        .unwrap()
        .noise_str(&format!("depolarizing:{p}"))
        .unwrap()
        .basis(BasisSelection::Both)
        .build()
        .unwrap()
}

#[test]
fn ler_jobs_are_bit_identical_across_thread_counts_even_with_adaptive_budgets() {
    let budget = ShotBudget::MaxFailures {
        max_failures: 8,
        max_shots: 4_096,
    };
    let run = |threads: usize| {
        let mut session = Session::new(RuntimeConfig::new(threads, 64, 9));
        session
            .run_ler_quiet(&LerJob::new(spec_d3(2e-2)).with_budget(budget))
            .unwrap()
    };
    let reference = run(1);
    assert!(
        reference.stop.stopped_early(),
        "budget should trigger, got {:?}",
        reference.stop
    );
    for threads in [2, 8] {
        let outcome = run(threads);
        assert_eq!(outcome.combined, reference.combined, "threads {threads}");
        assert_eq!(outcome.stop, reference.stop);
        assert_eq!(outcome.per_basis, reference.per_basis);
    }
}

#[test]
fn one_session_caches_models_across_an_optimize_then_estimate_workflow() {
    let mut session = Session::new(RuntimeConfig::new(4, 64, 11));
    let spec = spec_d3(3e-3);
    let job = OptimizeJob::new(spec.clone())
        .with_iterations(2)
        .with_samples(15);
    let outcome = session.run_optimize_quiet(&job).unwrap();
    outcome.result.final_schedule.validate(spec.code()).unwrap();

    // Estimate baseline and optimized schedules plus a second decoder: the
    // baseline DEMs are shared, the optimized schedule gets fresh ones.
    let optimized = spec
        .with_schedule(outcome.result.final_schedule.clone())
        .unwrap();
    for s in [&spec, &optimized] {
        session
            .run_ler_quiet(&LerJob::new(s.clone()).with_budget(ShotBudget::fixed(128)))
            .unwrap();
        session
            .run_ler_quiet(
                &LerJob::new(s.with_decoder("unionfind")).with_budget(ShotBudget::fixed(128)),
            )
            .unwrap();
    }
    let stats = session.stats();
    // 2 schedules x 2 bases experiments/models; decoders: 2 schedules x 2 bases x 2 names.
    assert_eq!(stats.experiments_built, 4);
    assert_eq!(stats.dems_built, 4);
    assert_eq!(stats.decoders_built, 8);
    assert!(stats.dem_hits >= 4, "second decoder must reuse the models");
    assert_eq!(stats.jobs_run, 5);
}

#[test]
fn the_event_stream_is_deterministic_and_well_formed() {
    let events_at = |threads: usize| {
        let mut session = Session::new(RuntimeConfig::new(threads, 64, 5));
        let mut events = Vec::new();
        session
            .run_ler(
                &LerJob::new(spec_d3(8e-3)).with_budget(ShotBudget::fixed(256)),
                |e| events.push(e.clone()),
            )
            .unwrap();
        events
    };
    let reference = events_at(1);
    assert!(matches!(
        reference.first(),
        Some(Event::JobStarted {
            kind: JobKind::Ler,
            ..
        })
    ));
    assert!(matches!(
        reference.last(),
        Some(Event::JobFinished {
            stop: StopReason::ShotsExhausted
        })
    ));
    // 2 bases x 4 chunks + start + finish.
    assert_eq!(reference.len(), 2 + 8);
    for threads in [2, 8] {
        assert_eq!(events_at(threads), reference, "threads {threads}");
    }
}

#[test]
fn outcome_records_round_trip_through_the_report_format() {
    let mut session = Session::new(RuntimeConfig::new(2, 64, 3));
    let spec = spec_d3(1e-2).with_decoder("unionfind");
    let outcome = session
        .run_ler_quiet(&LerJob::new(spec).with_budget(ShotBudget::TargetRse {
            target: 0.4,
            max_shots: 8_192,
        }))
        .unwrap();
    let record = outcome.to_record("grid/point");
    let line = record.to_json_line();
    let parsed = ReportRecord::from_json_line(&line).unwrap();
    assert_eq!(parsed, record);
    let ReportRecord::Ler {
        label,
        decoder,
        noise,
        stop,
        shots,
        failures,
        seed,
        chunk_size,
        ..
    } = parsed
    else {
        panic!("expected a ler record");
    };
    assert_eq!(label, "grid/point");
    assert_eq!(decoder, "unionfind");
    assert_eq!(noise, "depolarizing:0.01");
    assert_eq!(seed, 3);
    assert_eq!(chunk_size, 64);
    assert_eq!(shots, outcome.combined.shots as u64);
    assert_eq!(failures, outcome.combined.failures as u64);
    assert_eq!(stop, outcome.stop.as_str());
}

#[test]
fn optimize_jobs_match_the_legacy_prophunt_surface() {
    // The Session/Job surface is a re-plumbing, not a re-derivation: the same
    // (seed, chunk_size) must reproduce the exact legacy optimizer result.
    use prophunt_suite::core::{PropHunt, PropHuntConfig};
    use prophunt_suite::qec::surface::rotated_surface_code_with_layout;

    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let config = PropHuntConfig::quick(3).with_seed(11);
    let legacy = PropHunt::new(code.clone(), config.clone())
        .try_optimize(poor.clone())
        .unwrap();

    let mut session = Session::new(RuntimeConfig::new(
        config.runtime.threads,
        config.runtime.chunk_size,
        11,
    ));
    let spec = ExperimentSpec::builder()
        .code_with_layout(code, layout)
        .schedule(ScheduleSource::Explicit(poor))
        .build()
        .unwrap();
    let outcome = session.run_optimize_quiet(&OptimizeJob::new(spec)).unwrap();
    assert_eq!(outcome.result, legacy);
}

#[test]
fn search_jobs_emit_provenanced_incumbents_and_beat_single_strategy_maxsat() {
    use prophunt_suite::api::{SearchJob, StrategyKind};
    let spec = ExperimentSpec::builder()
        .code_family("surface:3")
        .unwrap()
        .build()
        .unwrap();
    let mut session = Session::new(RuntimeConfig::new(2, 64, 11));
    let base = SearchJob::new(spec)
        .with_rounds(4)
        .with_proposals(16)
        .with_samples(10)
        .with_label("hunt");

    // Single-strategy baseline: the optimizer alone, same budgets.
    let maxsat = session
        .run_search_quiet(
            &base
                .clone()
                .with_strategies(vec![StrategyKind::MaxSatDescent])
                .with_portfolio_size(1),
        )
        .unwrap();

    // The full portfolio, with the event stream observed.
    let mut events = Vec::new();
    let outcome = session
        .run_search(&base.clone(), |e| events.push(e.clone()))
        .unwrap();

    // The portfolio's answer is never worse than its own MaxSAT arm alone.
    assert!(
        outcome.result.best.depth <= maxsat.result.best.depth,
        "portfolio depth {} must be <= single-strategy depth {}",
        outcome.result.best.depth,
        maxsat.result.best.depth
    );
    outcome
        .result
        .best
        .schedule
        .validate(base.spec.code())
        .unwrap();

    // Event stream shape: JobStarted, one provenanced Incumbent per round,
    // JobFinished with a round_limit stop.
    assert!(
        matches!(&events[0], Event::JobStarted { kind: JobKind::Search, label } if label == "hunt")
    );
    let incumbents: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Incumbent {
                round,
                strategy,
                depth,
                improved,
                ..
            } => Some((*round, strategy.clone(), *depth, *improved)),
            _ => None,
        })
        .collect();
    assert_eq!(incumbents.len(), 4, "one incumbent event per round");
    assert_eq!(incumbents[0].0, 0);
    assert!(
        incumbents.iter().any(|(_, _, _, improved)| *improved),
        "the coloration baseline must be improved on surface:3"
    );
    let Some(Event::JobFinished { stop }) = events.last() else {
        panic!("expected JobFinished last");
    };
    assert_eq!(stop.as_str(), "round_limit");
    assert!(matches!(stop, StopReason::RoundLimit { rounds: 4 }));
    assert_eq!(session.stats().jobs_run, 2);
}
