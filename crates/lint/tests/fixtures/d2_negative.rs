// D2 negative: BTree collections iterate in sorted order, and hash
// collections used for membership/lookup only never iterate.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted_total(counts: &BTreeMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub fn lookup(index: &HashMap<u64, u64>, present: &HashSet<u64>, key: u64) -> Option<u64> {
    if present.contains(&key) {
        index.get(&key).copied()
    } else {
        None
    }
}
