//! CSS stabilizer codes: parity-check matrices, logical operators and validation.

use prophunt_gf2::{BitMatrix, BitVec};
use std::fmt;

/// The two stabilizer types of a CSS code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilizerKind {
    /// An X-type stabilizer (product of Pauli X operators); detects Z errors.
    X,
    /// A Z-type stabilizer (product of Pauli Z operators); detects X errors.
    Z,
}

impl StabilizerKind {
    /// Returns the opposite stabilizer kind.
    pub fn opposite(self) -> StabilizerKind {
        match self {
            StabilizerKind::X => StabilizerKind::Z,
            StabilizerKind::Z => StabilizerKind::X,
        }
    }
}

impl fmt::Display for StabilizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilizerKind::X => write!(f, "X"),
            StabilizerKind::Z => write!(f, "Z"),
        }
    }
}

/// Errors produced when constructing a [`CssCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CssCodeError {
    /// `H_X` and `H_Z` have different numbers of columns (data qubits).
    QubitCountMismatch {
        /// Number of columns of `H_X`.
        hx_cols: usize,
        /// Number of columns of `H_Z`.
        hz_cols: usize,
    },
    /// The CSS commutation condition `H_X · H_Zᵀ = 0` is violated.
    StabilizersDoNotCommute,
    /// The code encodes zero logical qubits.
    NoLogicalQubits,
}

impl fmt::Display for CssCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CssCodeError::QubitCountMismatch { hx_cols, hz_cols } => write!(
                f,
                "H_X has {hx_cols} columns but H_Z has {hz_cols}; both must act on the same data qubits"
            ),
            CssCodeError::StabilizersDoNotCommute => {
                write!(f, "H_X * H_Z^T != 0: X and Z stabilizers do not commute")
            }
            CssCodeError::NoLogicalQubits => write!(f, "code encodes zero logical qubits"),
        }
    }
}

impl std::error::Error for CssCodeError {}

/// A CSS stabilizer code `[[n, k, d]]` described by its X/Z parity-check matrices and a
/// symplectically paired basis of logical operators.
///
/// * `H_X` (rows = X stabilizers) detects Z errors: syndromes are `s_X = H_X · e_Z`.
/// * `H_Z` (rows = Z stabilizers) detects X errors: syndromes are `s_Z = H_Z · e_X`.
/// * `L_X` (rows = X-type logical operators) and `L_Z` (Z-type) satisfy
///   `L_X · L_Zᵀ = I_k` after construction, so logical qubit `i` is acted on by the pair
///   `(L_X[i], L_Z[i])`.
///
/// # Example
///
/// ```
/// use prophunt_gf2::BitMatrix;
/// use prophunt_qec::CssCode;
///
/// // The [[4, 1, 2]] "surface-like" code used in many QEC introductions is not CSS-valid
/// // with arbitrary matrices: commutation is checked at construction time.
/// let hx = BitMatrix::from_rows_u8(&[&[1, 1, 1, 1]]);
/// let hz = BitMatrix::from_rows_u8(&[&[1, 1, 0, 0], &[0, 0, 1, 1]]);
/// let code = CssCode::new("[[4,1,2]]", hx, hz)?;
/// assert_eq!(code.k(), 1);
/// # Ok::<(), prophunt_qec::CssCodeError>(())
/// ```
#[derive(Clone)]
pub struct CssCode {
    name: String,
    hx: BitMatrix,
    hz: BitMatrix,
    lx: BitMatrix,
    lz: BitMatrix,
    /// The designed/known code distance, if the construction knows it.
    known_distance: Option<usize>,
}

impl CssCode {
    /// Builds a CSS code from its parity-check matrices, deriving logical operators.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices act on different numbers of qubits, if the
    /// stabilizers do not commute (`H_X · H_Zᵀ ≠ 0`), or if the code encodes no logical
    /// qubits.
    pub fn new(
        name: impl Into<String>,
        hx: BitMatrix,
        hz: BitMatrix,
    ) -> Result<CssCode, CssCodeError> {
        let name = name.into();
        if hx.num_cols() != hz.num_cols() {
            return Err(CssCodeError::QubitCountMismatch {
                hx_cols: hx.num_cols(),
                hz_cols: hz.num_cols(),
            });
        }
        let commute = hx
            .mul(&hz.transpose())
            .expect("dimension already checked")
            .is_zero();
        if !commute {
            return Err(CssCodeError::StabilizersDoNotCommute);
        }
        let (lx, lz) = derive_logicals(&hx, &hz)?;
        Ok(CssCode {
            name,
            hx,
            hz,
            lx,
            lz,
            known_distance: None,
        })
    }

    /// Builds a CSS code and records its designed distance.
    ///
    /// # Errors
    ///
    /// Same as [`CssCode::new`].
    pub fn with_known_distance(
        name: impl Into<String>,
        hx: BitMatrix,
        hz: BitMatrix,
        distance: usize,
    ) -> Result<CssCode, CssCodeError> {
        let mut code = CssCode::new(name, hx, hz)?;
        code.known_distance = Some(distance);
        Ok(code)
    }

    /// Returns the human-readable code name (e.g. `"surface_d3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of data qubits `n`.
    pub fn n(&self) -> usize {
        self.hx.num_cols()
    }

    /// Returns the number of logical qubits `k`.
    pub fn k(&self) -> usize {
        self.lx.num_rows()
    }

    /// Returns the designed code distance if the construction recorded one.
    pub fn known_distance(&self) -> Option<usize> {
        self.known_distance
    }

    /// Returns the X-type parity-check matrix `H_X`.
    pub fn hx(&self) -> &BitMatrix {
        &self.hx
    }

    /// Returns the Z-type parity-check matrix `H_Z`.
    pub fn hz(&self) -> &BitMatrix {
        &self.hz
    }

    /// Returns the X-type logical operator matrix `L_X` (`k × n`).
    pub fn lx(&self) -> &BitMatrix {
        &self.lx
    }

    /// Returns the Z-type logical operator matrix `L_Z` (`k × n`).
    pub fn lz(&self) -> &BitMatrix {
        &self.lz
    }

    /// Returns the number of X stabilizers (rows of `H_X`).
    pub fn num_x_stabilizers(&self) -> usize {
        self.hx.num_rows()
    }

    /// Returns the number of Z stabilizers (rows of `H_Z`).
    pub fn num_z_stabilizers(&self) -> usize {
        self.hz.num_rows()
    }

    /// Returns the total number of stabilizers.
    pub fn num_stabilizers(&self) -> usize {
        self.num_x_stabilizers() + self.num_z_stabilizers()
    }

    /// Returns the parity-check matrix of the given stabilizer kind.
    pub fn checks(&self, kind: StabilizerKind) -> &BitMatrix {
        match kind {
            StabilizerKind::X => &self.hx,
            StabilizerKind::Z => &self.hz,
        }
    }

    /// Returns the logical-operator matrix of the given kind.
    pub fn logicals(&self, kind: StabilizerKind) -> &BitMatrix {
        match kind {
            StabilizerKind::X => &self.lx,
            StabilizerKind::Z => &self.lz,
        }
    }

    /// Returns the data qubits in the support of stabilizer `index` of the given kind,
    /// in increasing qubit order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the given kind.
    pub fn stabilizer_support(&self, kind: StabilizerKind, index: usize) -> Vec<usize> {
        self.checks(kind).row(index).ones().collect()
    }

    /// Returns the maximum stabilizer weight across both kinds.
    pub fn max_stabilizer_weight(&self) -> usize {
        self.hx
            .rows_iter()
            .chain(self.hz.rows_iter())
            .map(BitVec::weight)
            .max()
            .unwrap_or(0)
    }

    /// Returns, for each data qubit, the list of `(kind, stabilizer index)` pairs acting
    /// on it — the data-qubit side of the Tanner graph.
    pub fn qubit_stabilizers(&self) -> Vec<Vec<(StabilizerKind, usize)>> {
        let mut out = vec![Vec::new(); self.n()];
        for (i, row) in self.hx.rows_iter().enumerate() {
            for q in row.ones() {
                out[q].push((StabilizerKind::X, i));
            }
        }
        for (i, row) in self.hz.rows_iter().enumerate() {
            for q in row.ones() {
                out[q].push((StabilizerKind::Z, i));
            }
        }
        out
    }

    /// Returns the data qubits shared by an X stabilizer and a Z stabilizer.
    pub fn shared_qubits(&self, x_index: usize, z_index: usize) -> Vec<usize> {
        self.hx
            .row(x_index)
            .and(self.hz.row(z_index))
            .ones()
            .collect()
    }

    /// Computes the syndrome of an X-error pattern (`s_Z = H_Z · e_X`).
    ///
    /// # Panics
    ///
    /// Panics if `e_x.len() != self.n()`.
    pub fn syndrome_of_x_errors(&self, e_x: &BitVec) -> BitVec {
        self.hz.mul_vec(e_x)
    }

    /// Computes the syndrome of a Z-error pattern (`s_X = H_X · e_Z`).
    ///
    /// # Panics
    ///
    /// Panics if `e_z.len() != self.n()`.
    pub fn syndrome_of_z_errors(&self, e_z: &BitVec) -> BitVec {
        self.hx.mul_vec(e_z)
    }

    /// Returns `true` if the X-error pattern `e_x` flips any Z-type logical observable.
    pub fn x_errors_flip_logical(&self, e_x: &BitVec) -> bool {
        !self.lz.mul_vec(e_x).is_zero()
    }

    /// Returns `true` if the Z-error pattern `e_z` flips any X-type logical observable.
    pub fn z_errors_flip_logical(&self, e_z: &BitVec) -> bool {
        !self.lx.mul_vec(e_z).is_zero()
    }

    /// Replaces the logical-operator matrices with caller-provided ones.
    ///
    /// Useful when a construction has a conventional choice of logicals (e.g. the
    /// horizontal/vertical string operators of the surface code). The provided operators
    /// are validated: they must commute with the opposite-type stabilizers, be
    /// independent of the stabilizer group, and pair symplectically (`L_X · L_Zᵀ = I`).
    ///
    /// # Errors
    ///
    /// Returns [`CssCodeError::StabilizersDoNotCommute`] if validation fails.
    pub fn with_logicals(mut self, lx: BitMatrix, lz: BitMatrix) -> Result<CssCode, CssCodeError> {
        let k = self.k();
        let valid = lx.num_rows() == k
            && lz.num_rows() == k
            && lx.num_cols() == self.n()
            && lz.num_cols() == self.n()
            && self
                .hz
                .mul(&lx.transpose())
                .map(|m| m.is_zero())
                .unwrap_or(false)
            && self
                .hx
                .mul(&lz.transpose())
                .map(|m| m.is_zero())
                .unwrap_or(false)
            && lx
                .mul(&lz.transpose())
                .map(|m| m == BitMatrix::identity(k))
                .unwrap_or(false)
            && lx.rows_iter().all(|r| !self.hx.row_space_contains(r))
            && lz.rows_iter().all(|r| !self.hz.row_space_contains(r));
        if !valid {
            return Err(CssCodeError::StabilizersDoNotCommute);
        }
        self.lx = lx;
        self.lz = lz;
        Ok(self)
    }
}

impl fmt::Debug for CssCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CssCode {{ name: {:?}, n: {}, k: {}, x_stabs: {}, z_stabs: {}, d: {:?} }}",
            self.name,
            self.n(),
            self.k(),
            self.num_x_stabilizers(),
            self.num_z_stabilizers(),
            self.known_distance
        )
    }
}

impl fmt::Display for CssCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.known_distance {
            Some(d) => write!(f, "{} [[{},{},{}]]", self.name, self.n(), self.k(), d),
            None => write!(f, "{} [[{},{},?]]", self.name, self.n(), self.k()),
        }
    }
}

/// Derives a symplectically paired logical-operator basis from the check matrices.
fn derive_logicals(hx: &BitMatrix, hz: &BitMatrix) -> Result<(BitMatrix, BitMatrix), CssCodeError> {
    let n = hx.num_cols();
    let k = n - hx.rank() - hz.rank();
    if k == 0 {
        return Err(CssCodeError::NoLogicalQubits);
    }

    // X-type logicals: vectors commuting with all Z stabilizers (ker H_Z) that are
    // independent modulo the X-stabilizer group (rowspace H_X).
    let lx = logicals_one_kind(hz, hx, k);
    // Z-type logicals symmetrically.
    let lz = logicals_one_kind(hx, hz, k);

    // Symplectically pair: find change of basis A with L_X · (A·L_Z)ᵀ = I, i.e. M·Aᵀ = I
    // where M = L_X · L_Zᵀ. M is invertible because the pairing between the two logical
    // quotient spaces is non-degenerate.
    let m = lx.mul(&lz.transpose()).expect("shape");
    let mut new_lz_rows = Vec::with_capacity(k);
    let mt = m.transpose();
    for j in 0..k {
        // Column j of A^T = solution of M x = e_j  =>  row j of A solves M^T? We need
        // A such that M A^T = I, so column j of A^T satisfies M * col_j = e_j.
        let mut e = BitVec::zeros(k);
        e.set(j, true);
        let col = m
            .solve(&e)
            .expect("logical pairing matrix must be invertible");
        // Row j of new L_Z is sum_i col[i] * L_Z[i]  (since A[j][i] = A^T[i][j] = col[i]).
        let mut row = BitVec::zeros(n);
        for i in col.ones() {
            row.xor_assign_with(lz.row(i));
        }
        new_lz_rows.push(row);
    }
    let _ = mt; // retained for clarity of derivation; not otherwise needed
    let lz = BitMatrix::from_rows(new_lz_rows, n);
    Ok((lx, lz))
}

/// Returns `k` logical operators of one kind: elements of `ker(opposite_checks)` that are
/// independent modulo `rowspace(same_checks)`.
fn logicals_one_kind(opposite_checks: &BitMatrix, same_checks: &BitMatrix, k: usize) -> BitMatrix {
    let n = opposite_checks.num_cols();
    let kernel = opposite_checks.kernel_basis();
    let mut picked: Vec<BitVec> = Vec::with_capacity(k);
    let mut span = same_checks.clone();
    let mut span_rank = span.rank();
    for row in kernel.rows_iter() {
        if picked.len() == k {
            break;
        }
        let mut candidate_span = span.clone();
        candidate_span.push_row(row.clone());
        let r = candidate_span.rank();
        if r > span_rank {
            picked.push(row.clone());
            span = candidate_span;
            span_rank = r;
        }
    }
    assert_eq!(
        picked.len(),
        k,
        "failed to find a full logical basis; code matrices are inconsistent"
    );
    BitMatrix::from_rows(picked, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_gf2::BitMatrix;

    /// The paper's explicit d=3 rotated surface code matrices (Section 2.2).
    fn paper_d3_matrices() -> (BitMatrix, BitMatrix) {
        let hx = BitMatrix::from_rows_u8(&[
            &[1, 1, 0, 1, 1, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 0, 1, 1],
            &[0, 0, 0, 1, 0, 0, 1, 0, 0],
            &[0, 0, 1, 0, 0, 1, 0, 0, 0],
        ]);
        let hz = BitMatrix::from_rows_u8(&[
            &[0, 1, 1, 0, 1, 1, 0, 0, 0],
            &[0, 0, 0, 1, 1, 0, 1, 1, 0],
            &[1, 1, 0, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0, 1, 1],
        ]);
        (hx, hz)
    }

    #[test]
    fn paper_d3_code_has_expected_parameters() {
        let (hx, hz) = paper_d3_matrices();
        let code = CssCode::new("paper_d3", hx, hz).unwrap();
        assert_eq!(code.n(), 9);
        assert_eq!(code.k(), 1);
        assert_eq!(code.num_stabilizers(), 8);
        assert_eq!(code.max_stabilizer_weight(), 4);
    }

    #[test]
    fn paper_d3_correctable_and_uncorrectable_examples() {
        // Reproduces the worked examples of Section 2.5. The paper's 1-indexed "qubit 5"
        // is our index 4; for the undetected pattern we use the middle row {3, 4, 5},
        // which is a minimum-weight logical X representative for these matrices.
        let (hx, hz) = paper_d3_matrices();
        let lx = BitMatrix::from_rows_u8(&[&[0, 0, 0, 1, 1, 1, 0, 0, 0]]);
        let lz = BitMatrix::from_rows_u8(&[&[0, 1, 0, 0, 1, 0, 0, 1, 0]]);
        let code = CssCode::new("paper_d3", hx, hz)
            .unwrap()
            .with_logicals(lx, lz)
            .unwrap();

        let single = BitVec::from_indices(9, &[4]);
        assert_eq!(
            code.syndrome_of_x_errors(&single)
                .ones()
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert!(code.x_errors_flip_logical(&single));

        let undetected = BitVec::from_indices(9, &[3, 4, 5]);
        assert!(code.syndrome_of_x_errors(&undetected).is_zero());
        assert!(code.x_errors_flip_logical(&undetected));
    }

    #[test]
    fn logical_operators_commute_with_stabilizers_and_pair() {
        let (hx, hz) = paper_d3_matrices();
        let code = CssCode::new("paper_d3", hx, hz).unwrap();
        // L_X commutes with H_Z, L_Z with H_X.
        assert!(code.hz().mul(&code.lx().transpose()).unwrap().is_zero());
        assert!(code.hx().mul(&code.lz().transpose()).unwrap().is_zero());
        // Symplectic pairing is the identity.
        let pairing = code.lx().mul(&code.lz().transpose()).unwrap();
        assert_eq!(pairing, BitMatrix::identity(code.k()));
        // Logicals are not stabilizers.
        for row in code.lx().rows_iter() {
            assert!(!code.hx().row_space_contains(row));
        }
        for row in code.lz().rows_iter() {
            assert!(!code.hz().row_space_contains(row));
        }
    }

    #[test]
    fn rejects_noncommuting_matrices() {
        let hx = BitMatrix::from_rows_u8(&[&[1, 1, 0]]);
        let hz = BitMatrix::from_rows_u8(&[&[1, 0, 0]]);
        assert_eq!(
            CssCode::new("bad", hx, hz).unwrap_err(),
            CssCodeError::StabilizersDoNotCommute
        );
    }

    #[test]
    fn rejects_mismatched_qubit_counts() {
        let hx = BitMatrix::from_rows_u8(&[&[1, 1]]);
        let hz = BitMatrix::from_rows_u8(&[&[1, 1, 0]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz),
            Err(CssCodeError::QubitCountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_logical_qubits() {
        // Two qubits fully constrained by one X and one Z stabilizer leave k = 0.
        let hx = BitMatrix::from_rows_u8(&[&[1, 1]]);
        let hz = BitMatrix::from_rows_u8(&[&[1, 1]]);
        assert_eq!(
            CssCode::new("bad", hx, hz).unwrap_err(),
            CssCodeError::NoLogicalQubits
        );
    }

    #[test]
    fn qubit_stabilizers_is_tanner_adjacency() {
        let (hx, hz) = paper_d3_matrices();
        let code = CssCode::new("paper_d3", hx, hz).unwrap();
        let adj = code.qubit_stabilizers();
        assert_eq!(adj.len(), 9);
        // Central qubit (index 4) touches 2 X and 2 Z stabilizers.
        let central = &adj[4];
        assert_eq!(central.len(), 4);
        assert_eq!(
            central
                .iter()
                .filter(|(k, _)| *k == StabilizerKind::X)
                .count(),
            2
        );
        // Shared qubits between X stabilizer 0 and Z stabilizer 0 are {1, 4}.
        assert_eq!(code.shared_qubits(0, 0), vec![1, 4]);
    }

    #[test]
    fn with_logicals_rejects_invalid_choices() {
        let (hx, hz) = paper_d3_matrices();
        let code = CssCode::new("paper_d3", hx, hz).unwrap();
        // A stabilizer row is not a valid logical operator.
        let bad_lx = BitMatrix::from_rows_u8(&[&[1, 1, 0, 1, 1, 0, 0, 0, 0]]);
        let lz = code.lz().clone();
        assert!(code.clone().with_logicals(bad_lx, lz).is_err());
    }

    #[test]
    fn display_and_debug_mention_parameters() {
        let (hx, hz) = paper_d3_matrices();
        let code = CssCode::with_known_distance("paper_d3", hx, hz, 3).unwrap();
        assert_eq!(format!("{code}"), "paper_d3 [[9,1,3]]");
        assert!(format!("{code:?}").contains("k: 1"));
    }

    #[test]
    fn stabilizer_kind_opposite_and_display() {
        assert_eq!(StabilizerKind::X.opposite(), StabilizerKind::Z);
        assert_eq!(StabilizerKind::Z.opposite(), StabilizerKind::X);
        assert_eq!(format!("{}", StabilizerKind::X), "X");
    }

    use prophunt_gf2::BitVec;
}
