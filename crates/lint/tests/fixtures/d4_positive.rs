// D4 positive: ambient RNG sources.
use rand::thread_rng;
use rand::Rng;

pub fn ambient_coin() -> bool {
    thread_rng().gen_bool(0.5)
}

pub fn ambient_value() -> u64 {
    rand::random()
}
