//! A minimal hand-rolled JSON reader/writer.
//!
//! The vendor tree ships no serde, so the JSON-lines run-report format is built on this
//! small module instead. It supports the full JSON value grammar with two deliberate
//! choices:
//!
//! * Integers that fit `u64` are kept exact ([`Json::UInt`]); everything else becomes
//!   [`Json::Float`]. Report fields that are semantically integral (seeds, shot counts)
//!   therefore survive a round-trip bit-exactly.
//! * Objects preserve key order (stored as a `Vec` of pairs), so writing a parsed
//!   object reproduces the original text byte-for-byte when the values are unchanged.

use crate::error::FormatError;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (written without a decimal point).
    UInt(u64),
    /// Any other finite number. JSON has no NaN/infinity: non-finite values are
    /// serialized as `null` (matching `JSON.stringify`) rather than emitting text
    /// the parser itself would reject.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, with key order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as `u64` (strict: `UInt` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `f64`, coercing exact integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `bool` (strict: `Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) if !v.is_finite() => out.push_str("null"),
            Json::Float(v) => {
                // Rust's Display for f64 is the shortest representation that parses
                // back to the same bits, so numeric round-trips are exact.
                let mut text = String::new();
                let _ = write!(text, "{v}");
                // Keep floats recognizable as floats (2.0 displays as "2").
                if !text.contains(['.', 'e', 'E']) {
                    text.push_str(".0");
                }
                out.push_str(&text);
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (one value plus optional trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] with 1-based line/column of the offending character.
    pub fn parse(input: &str) -> Result<Json, FormatError> {
        let mut lexer = Lexer::new(input);
        let value = lexer.parse_value()?;
        lexer.skip_whitespace();
        if !lexer.at_end() {
            return Err(lexer.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Lexer<'a> {
    input: &'a str,
    /// Byte position.
    pos: usize,
    line: usize,
    /// Byte offset of the current line's start.
    line_start: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> FormatError {
        FormatError::at(self.line, self.pos - self.line_start + 1, message)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), FormatError> {
        self.skip_whitespace();
        match self.peek() {
            Some(got) if got == c => {
                self.bump();
                Ok(())
            }
            Some(got) => Err(self.error(format!("expected {c:?}, found {got:?}"))),
            None => Err(self.error(format!("expected {c:?}, found end of input"))),
        }
    }

    fn parse_value(&mut self) -> Result<Json, FormatError> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Json::Str(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Json::Bool(true)),
            Some('f') => self.parse_keyword("false", Json::Bool(false)),
            Some('n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character {c:?}"))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, FormatError> {
        if self.input[self.pos..].starts_with(word) {
            for _ in 0..word.len() {
                self.bump();
            }
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, FormatError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Float(v)),
            _ => Err(self.error(format!("invalid number {text:?}"))),
        }
    }

    fn parse_string(&mut self) -> Result<String, FormatError> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .bump()
                                .ok_or_else(|| self.error("unterminated \\u escape"))?;
                            let digit = c
                                .to_digit(16)
                                .ok_or_else(|| self.error("invalid \\u escape digit"))?;
                            v = v * 16 + digit;
                        }
                        // Surrogate pairs are not needed for this crate's own output;
                        // reject them rather than silently corrupting text.
                        let c = char::from_u32(v)
                            .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                        out.push(c);
                    }
                    Some(c) => return Err(self.error(format!("invalid escape \\{c}"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, FormatError> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, FormatError> {
        self.expect_char('{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect_char(':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_json(), text, "{text}");
        }
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("0.001").unwrap(), Json::Float(0.001));
        assert_eq!(Json::parse("1e-3").unwrap(), Json::Float(1e-3));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3f50_624d_d2f1_a9fcu64,
            0x3ff0_0000_0000_0001,
            0x0010_0000_0000_0000,
        ] {
            let v = f64::from_bits(bits);
            let text = Json::Float(v).to_json();
            match Json::parse(&text).unwrap() {
                Json::Float(parsed) => assert_eq!(parsed.to_bits(), bits),
                Json::UInt(parsed) => assert_eq!((parsed as f64).to_bits(), bits),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\" \\ path\nwith newline\tand tab \u{1}";
        let text = Json::Str(s.to_string()).to_json();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn objects_preserve_key_order() {
        let text = r#"{"b":1,"a":[1,2.5,"x"],"c":{"nested":null}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("b"), Some(&Json::UInt(1)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = Json::parse("{\"a\": \n  tru }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 0);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[] []").is_err());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).to_json(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::Array(vec![Json::Float(v)]).to_json();
            assert_eq!(text, "[null]");
            assert_eq!(Json::parse(&text).unwrap(), Json::Array(vec![Json::Null]));
        }
    }
}
