//! The error type of the experiment API.

use prophunt_circuit::CircuitError;
use prophunt_formats::FormatError;
use std::fmt;

/// Anything that can go wrong while building an [`crate::ExperimentSpec`] or
/// running a job through a [`crate::Session`].
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// A format-layer failure: unparsable family string, code spec, schedule file.
    Format(FormatError),
    /// A circuit-layer failure: schedule invalid for the code, experiment build.
    Circuit(CircuitError),
    /// The requested decoder name is not in the session's registry.
    UnknownDecoder {
        /// The requested name.
        name: String,
        /// The names the registry knows.
        known: Vec<String>,
    },
    /// A noise spec string failed to parse or carries out-of-range parameters.
    InvalidNoise(String),
    /// The experiment spec itself is inconsistent (missing code, zero rounds,
    /// hand-designed schedule without a layout, ...).
    InvalidSpec(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Format(e) => write!(f, "{e}"),
            ApiError::Circuit(e) => write!(f, "{e}"),
            ApiError::UnknownDecoder { name, known } => write!(
                f,
                "unknown decoder {name:?} (registered: {})",
                known.join(", ")
            ),
            ApiError::InvalidNoise(message) => write!(f, "invalid noise spec: {message}"),
            ApiError::InvalidSpec(message) => write!(f, "invalid experiment spec: {message}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<FormatError> for ApiError {
    fn from(e: FormatError) -> Self {
        ApiError::Format(e)
    }
}

impl From<CircuitError> for ApiError {
    fn from(e: CircuitError) -> Self {
        ApiError::Circuit(e)
    }
}
