//! Reproduces the paper's headline surface-code claim at small scale: starting from a
//! coloration circuit, PropHunt automatically recovers a schedule whose effective
//! distance matches the hand-designed "N/Z" schedule.
//!
//! Run with `cargo run --release --example surface_code_recovery`.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;

fn main() {
    for d in [3usize] {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let coloration = ScheduleSpec::coloration(&code);
        let hand = ScheduleSpec::surface_hand_designed(&code, &layout);

        let prophunt = PropHunt::new(code.clone(), PropHuntConfig::quick(d));
        let d_eff_coloration = prophunt.estimate_effective_distance(&coloration, 15);
        let d_eff_hand = prophunt.estimate_effective_distance(&hand, 15);

        let result = prophunt
            .try_optimize(coloration)
            .expect("coloration schedule is valid");
        let d_eff_optimized = prophunt.estimate_effective_distance(&result.final_schedule, 15);

        println!("=== surface code d = {d} ===");
        println!(
            "coloration circuit:   depth {:>2}, estimated d_eff {:?}",
            result.initial_schedule.depth().unwrap(),
            d_eff_coloration
        );
        println!(
            "hand-designed (N/Z):  depth {:>2}, estimated d_eff {:?}",
            hand.depth().unwrap(),
            d_eff_hand
        );
        println!(
            "PropHunt output:      depth {:>2}, estimated d_eff {:?} ({} changes applied)",
            result.final_depth(),
            d_eff_optimized,
            result.total_changes_applied()
        );
        for record in &result.records {
            println!(
                "  iteration {:>2} [{:?}-basis]: {} subgraphs, weights {:?}, {} changes, depth {}",
                record.iteration,
                record.basis,
                record.subgraphs_found,
                record.solution_weights,
                record.changes_applied,
                record.depth
            );
        }
    }
}
