//! Hook-ZNE and Distance-Scaling ZNE for logical qubits (paper Section 7).
//!
//! Zero-Noise Extrapolation (ZNE) runs a circuit at several amplified noise levels and
//! extrapolates the measured expectation value back to the zero-noise limit. On
//! error-corrected hardware the natural noise knob is the *logical* error rate:
//!
//! * **DS-ZNE** (Distance-Scaling ZNE, the baseline from Wahl et al.) lowers the code
//!   distance `d, d−2, d−4, …`, which scales noise in coarse exponential jumps.
//! * **Hook-ZNE** (the paper's proposal) keeps the code distance fixed and instead runs
//!   the *intermediate* syndrome-measurement circuits produced during PropHunt's
//!   optimization, whose logical error rates interpolate finely between the unoptimized
//!   and optimized circuit — modelled here as fractional effective distances.
//!
//! The module reproduces the paper's Figure 16: the achievable noise-amplification range
//! at fixed distance ([`amplification_range`]) and the estimator bias comparison between
//! the two protocols ([`compare_protocols`]).
//!
//! # Example
//!
//! ```
//! use prophunt_zne::{ZneConfig, ZneMethod, run_zne};
//!
//! let config = ZneConfig {
//!     distances: vec![13.0, 12.5, 12.0, 11.5],
//!     lambda: 2.0,
//!     depth: 50,
//!     shots_total: 20_000,
//!     seed: 7,
//! };
//! let result = run_zne(&config, ZneMethod::Hook);
//! assert!(result.bias < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The logical-noise model of the paper's Section 7.1: `P_L(d) = Λ^{-(d+1)/2}`.
///
/// `Λ = P_th / P` is the error-suppression factor per two steps of code distance
/// (Google's 2024 surface-code experiment reported `Λ = 2.14`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalNoiseModel {
    /// The suppression factor `Λ`.
    pub lambda: f64,
}

impl LogicalNoiseModel {
    /// Creates a model with suppression factor `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 1.0` (the hardware would be above threshold).
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 1.0,
            "suppression factor must exceed 1 (below threshold)"
        );
        LogicalNoiseModel { lambda }
    }

    /// Logical error rate at (possibly fractional) code distance `d`.
    pub fn logical_error_rate(&self, d: f64) -> f64 {
        self.lambda.powf(-(d + 1.0) / 2.0)
    }

    /// Noise amplification of running at effective distance `d_eff` instead of `d`.
    pub fn amplification(&self, d: f64, d_eff: f64) -> f64 {
        self.logical_error_rate(d_eff) / self.logical_error_rate(d)
    }
}

/// The range of noise-amplification factors achievable at fixed code distance `d` when
/// intermediate SM circuits span effective distances from `d` down to `d_eff_min` in
/// steps of `step` (paper Figure 16a).
pub fn amplification_range(lambda: f64, d: f64, d_eff_min: f64, step: f64) -> Vec<f64> {
    let model = LogicalNoiseModel::new(lambda);
    let mut out = Vec::new();
    let mut d_eff = d;
    while d_eff >= d_eff_min - 1e-9 {
        out.push(model.amplification(d, d_eff));
        d_eff -= step;
    }
    out
}

/// The expectation value of the depth-`depth` randomized-benchmarking-style workload at
/// logical error rate `p_l` per layer: each layer flips the observable with probability
/// `p_l`, giving `E = (1 − 2 p_l)^depth` with ideal value 1.
pub fn rb_expectation(p_l: f64, depth: usize) -> f64 {
    (1.0 - 2.0 * p_l).powi(depth as i32)
}

/// Samples a shot-noise-limited estimate of [`rb_expectation`] from `shots` shots.
pub fn sample_rb_expectation<R: Rng>(p_l: f64, depth: usize, shots: usize, rng: &mut R) -> f64 {
    let expectation = rb_expectation(p_l, depth);
    let p_plus = (1.0 + expectation) / 2.0;
    let mut plus = 0usize;
    for _ in 0..shots {
        if rng.gen_bool(p_plus.clamp(0.0, 1.0)) {
            plus += 1;
        }
    }
    2.0 * plus as f64 / shots as f64 - 1.0
}

/// Fits `E(λ) = a · b^λ` to the measured points by least squares on `ln E` and returns
/// the zero-noise estimate `a` (the standard exponential extrapolation).
///
/// Points with non-positive expectation values fall back to a linear fit.
pub fn exponential_extrapolate(points: &[(f64, f64)]) -> f64 {
    if points.iter().any(|&(_, e)| e <= 0.0) {
        return linear_extrapolate(points);
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, e)| e.ln()).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|&(x, e)| x * e.ln()).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return points.first().map_or(0.0, |&(_, e)| e);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    intercept.exp()
}

/// Fits a straight line to the points and returns its value at `λ = 0`.
pub fn linear_extrapolate(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return points.first().map_or(0.0, |&(_, y)| y);
    }
    let slope = (n * sxy - sx * sy) / denom;
    (sy - slope * sx) / n
}

/// Richardson extrapolation through all points (exact polynomial through the data,
/// evaluated at zero). Accurate for few, well-separated noise levels; unstable for many.
pub fn richardson_extrapolate(points: &[(f64, f64)]) -> f64 {
    // Lagrange interpolation evaluated at x = 0.
    let mut estimate = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                weight *= xj / (xj - xi);
            }
        }
        estimate += weight * yi;
    }
    estimate
}

/// Which logical-noise-scaling protocol to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZneMethod {
    /// Distance-Scaling ZNE: the listed distances are run as-is (odd integers in
    /// practice), each at its own logical error rate.
    DistanceScaling,
    /// Hook-ZNE: the listed (fractional) distances model intermediate PropHunt circuits
    /// at fixed code distance with finely spaced logical error rates.
    Hook,
}

/// Configuration of one ZNE experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneConfig {
    /// The (possibly fractional) distances whose logical error rates form the noise
    /// scale points; the first entry is the largest / least noisy.
    pub distances: Vec<f64>,
    /// Suppression factor `Λ`.
    pub lambda: f64,
    /// Two-qubit-depth of the benchmarking workload (the paper uses 50).
    pub depth: usize,
    /// Total shot budget, split evenly across the noise-scale points.
    pub shots_total: usize,
    /// Random seed for shot noise.
    pub seed: u64,
}

/// The outcome of one ZNE experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneResult {
    /// The measured `(noise scale λ, expectation)` points.
    pub points: Vec<(f64, f64)>,
    /// The zero-noise estimate.
    pub estimate: f64,
    /// `L1` distance between the estimate and the ideal expectation value (1.0).
    pub bias: f64,
}

/// Runs one ZNE experiment with the given protocol.
pub fn run_zne(config: &ZneConfig, method: ZneMethod) -> ZneResult {
    assert!(
        !config.distances.is_empty(),
        "ZNE needs at least one noise point"
    );
    let model = LogicalNoiseModel::new(config.lambda);
    let mut rng = StdRng::seed_from_u64(config.seed ^ (method as u64) << 32);
    let reference = model.logical_error_rate(config.distances[0]);
    let shots_each = (config.shots_total / config.distances.len()).max(1);
    let points: Vec<(f64, f64)> = config
        .distances
        .iter()
        .map(|&d| {
            let p_l = model.logical_error_rate(d);
            let scale = p_l / reference;
            let measured = sample_rb_expectation(p_l, config.depth, shots_each, &mut rng);
            (scale, measured)
        })
        .collect();
    let estimate = exponential_extrapolate(&points);
    ZneResult {
        points,
        estimate,
        bias: (estimate - 1.0).abs(),
    }
}

/// One row of the paper's Figure 16b comparison: mean bias of DS-ZNE and Hook-ZNE over
/// repeated experiments for a given distance range.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolComparison {
    /// Label of the distance range (e.g. `"d = 13..7"`).
    pub label: String,
    /// Mean absolute bias of DS-ZNE.
    pub ds_zne_bias: f64,
    /// Mean absolute bias of Hook-ZNE.
    pub hook_zne_bias: f64,
}

/// Compares DS-ZNE against Hook-ZNE for one maximum distance, averaging the bias over
/// `trials` independent shot-noise realisations (paper Figure 16b setup: Λ = 2, depth 50,
/// 20 000 shots).
pub fn compare_protocols(
    d_max: usize,
    lambda: f64,
    depth: usize,
    shots_total: usize,
    trials: usize,
    seed: u64,
) -> ProtocolComparison {
    let ds_distances: Vec<f64> = (0..4).map(|i| (d_max - 2 * i) as f64).collect();
    let hook_distances: Vec<f64> = (0..4).map(|i| d_max as f64 - 0.5 * i as f64).collect();
    let mut ds_total = 0.0;
    let mut hook_total = 0.0;
    for t in 0..trials {
        let ds = run_zne(
            &ZneConfig {
                distances: ds_distances.clone(),
                lambda,
                depth,
                shots_total,
                seed: seed.wrapping_add(t as u64 * 2),
            },
            ZneMethod::DistanceScaling,
        );
        let hook = run_zne(
            &ZneConfig {
                distances: hook_distances.clone(),
                lambda,
                depth,
                shots_total,
                seed: seed.wrapping_add(t as u64 * 2 + 1),
            },
            ZneMethod::Hook,
        );
        ds_total += ds.bias;
        hook_total += hook.bias;
    }
    ProtocolComparison {
        label: format!("d = {}..{}", d_max, d_max - 6),
        ds_zne_bias: ds_total / trials as f64,
        hook_zne_bias: hook_total / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_error_rate_decreases_with_distance() {
        let m = LogicalNoiseModel::new(2.0);
        assert!(m.logical_error_rate(5.0) > m.logical_error_rate(7.0));
        assert!((m.logical_error_rate(3.0) - 2.0f64.powf(-2.0)).abs() < 1e-12);
        assert!((m.amplification(7.0, 5.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "suppression factor")]
    fn above_threshold_lambda_rejected() {
        let _ = LogicalNoiseModel::new(0.9);
    }

    #[test]
    fn amplification_range_is_monotone_and_starts_at_one() {
        let range = amplification_range(2.14, 9.0, 5.0, 0.5);
        assert!((range[0] - 1.0).abs() < 1e-12);
        assert!(range.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(range.len(), 9);
    }

    #[test]
    fn rb_expectation_decays_with_noise_and_depth() {
        assert!((rb_expectation(0.0, 50) - 1.0).abs() < 1e-12);
        assert!(rb_expectation(1e-2, 50) < rb_expectation(1e-3, 50));
        assert!(rb_expectation(1e-3, 100) < rb_expectation(1e-3, 50));
    }

    #[test]
    fn extrapolations_recover_noiseless_limits_exactly_without_shot_noise() {
        // Exact exponential data: extrapolation must recover a.
        let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0]
            .iter()
            .map(|&x| (x, 0.9 * 0.8f64.powf(x)))
            .collect();
        assert!((exponential_extrapolate(&points) - 0.9).abs() < 1e-9);
        // Exact linear data.
        let linear: Vec<(f64, f64)> = [1.0, 2.0, 3.0]
            .iter()
            .map(|&x| (x, 1.0 - 0.1 * x))
            .collect();
        assert!((linear_extrapolate(&linear) - 1.0).abs() < 1e-9);
        assert!((richardson_extrapolate(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hook_zne_has_lower_bias_than_ds_zne_on_average() {
        // The paper reports 3x-6x bias reduction; with the same total shot budget the
        // finer noise scaling of Hook-ZNE must at least not be worse on average.
        let cmp = compare_protocols(9, 2.0, 50, 20_000, 40, 1234);
        assert!(
            cmp.hook_zne_bias < cmp.ds_zne_bias,
            "hook bias {} vs ds bias {}",
            cmp.hook_zne_bias,
            cmp.ds_zne_bias
        );
        assert!(cmp.label.contains("d = 9"));
    }

    #[test]
    fn run_zne_points_track_noise_scale() {
        let config = ZneConfig {
            distances: vec![13.0, 12.5, 12.0, 11.5],
            lambda: 2.0,
            depth: 50,
            shots_total: 40_000,
            seed: 5,
        };
        let result = run_zne(&config, ZneMethod::Hook);
        assert_eq!(result.points.len(), 4);
        assert!((result.points[0].0 - 1.0).abs() < 1e-12);
        // Larger noise scale -> smaller measured expectation (up to shot noise at 10k shots).
        assert!(result.points.last().unwrap().1 <= result.points[0].1 + 0.05);
        assert!(result.bias < 0.3);
    }
}
