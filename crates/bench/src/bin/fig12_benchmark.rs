//! Figure 12: PropHunt vs the coloration-circuit baseline (and the hand-designed circuit
//! where one exists) across the benchmark code suite.

use prophunt::{PropHunt, PropHuntConfig};
use prophunt_bench::{
    benchmark_suite, ler_record, runtime_config_from_env, stage_seed, sweep_logical_error_rates,
    write_bench_report,
};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::Json;

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let shots = if full { 20_000 } else { 1_200 };
    let ps: &[f64] = if full {
        &[1e-3, 2e-3, 5e-3, 1e-2]
    } else {
        &[2e-3, 8e-3]
    };
    let runtime = runtime_config_from_env();
    let mut records = Vec::new();
    println!("Figure 12: logical error rates, coloration start vs PropHunt end vs hand-designed");
    for bench in benchmark_suite(full) {
        let code = &bench.code;
        let rounds = bench.rounds.min(3);
        let baseline = ScheduleSpec::coloration(code);
        let mut config = if full {
            PropHuntConfig::paper_like(rounds)
        } else {
            PropHuntConfig::quick(rounds)
        };
        if !full {
            config.iterations = 3;
            config.samples_per_iteration = 30;
        }
        config.runtime = runtime.with_seed(stage_seed(&runtime, config.seed()));
        let prophunt = PropHunt::new(code.clone(), config);
        let result = prophunt.optimize(baseline.clone());
        println!(
            "== {} (depth {} -> {}, {} changes) ==",
            code,
            baseline.depth().unwrap(),
            result.final_depth(),
            result.total_changes_applied()
        );
        records.push(ReportRecord::Table {
            name: "fig12_optimization".into(),
            fields: vec![
                ("code".into(), Json::Str(code.name().to_string())),
                (
                    "baseline_depth".into(),
                    Json::UInt(baseline.depth().unwrap() as u64),
                ),
                (
                    "final_depth".into(),
                    Json::UInt(result.final_depth() as u64),
                ),
                (
                    "changes".into(),
                    Json::UInt(result.total_changes_applied() as u64),
                ),
            ],
        });
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "p", "coloration", "prophunt", "hand"
        );
        let before = sweep_logical_error_rates(code, &baseline, rounds, ps, shots, 21, &runtime);
        let after = sweep_logical_error_rates(
            code,
            &result.final_schedule,
            rounds,
            ps,
            shots,
            21,
            &runtime,
        );
        let hand = bench
            .hand_designed
            .as_ref()
            .map(|h| sweep_logical_error_rates(code, h, rounds, ps, shots, 21, &runtime));
        for (i, &p) in ps.iter().enumerate() {
            records.push(ler_record(
                format!("{}/coloration", code.name()),
                p,
                0.0,
                &before[i].1,
                21,
                &runtime,
            ));
            records.push(ler_record(
                format!("{}/prophunt", code.name()),
                p,
                0.0,
                &after[i].1,
                21,
                &runtime,
            ));
            if let Some(h) = &hand {
                records.push(ler_record(
                    format!("{}/hand", code.name()),
                    p,
                    0.0,
                    &h[i].1,
                    21,
                    &runtime,
                ));
            }
            let before = before[i].1.rate();
            let after = after[i].1.rate();
            match &hand {
                Some(h) => println!(
                    "{p:>10.4} {before:>14.5} {after:>14.5} {:>14.5}",
                    h[i].1.rate()
                ),
                None => println!("{p:>10.4} {before:>14.5} {after:>14.5} {:>14}", "-"),
            }
        }
    }
    let path = write_bench_report("fig12_benchmark", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
