//! Fixture-driven tests for the `D1`–`D7` rules and the suppression engine:
//! every rule has at least one positive fixture (must fire) and one negative
//! fixture (must stay silent), plus string/comment false-positive and
//! suppression coverage cases.

use prophunt_lint::{lint_manifest, lint_source, Finding};
use std::collections::BTreeMap;

/// Lints a fixture in a deterministic crate (`decoders`) as a non-root file.
fn lint_deterministic(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_source("decoders", rel_path, source, false).0
}

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings
        .iter()
        .filter(|f| f.suppressed_by.is_none())
        .collect()
}

#[test]
fn d1_wall_clock_fires_on_instant_and_system_time() {
    let findings = lint_deterministic("d1_positive.rs", include_str!("fixtures/d1_positive.rs"));
    // One finding per wall-clock token: the SystemTime import, Instant::now()
    // and both SystemTime uses (`now`, `UNIX_EPOCH`).
    assert_eq!(codes(&findings), vec!["D1", "D1", "D1", "D1"]);
    assert!(findings.iter().any(|f| f.message.contains("Instant::now")));
    assert!(findings.iter().any(|f| f.message.contains("SystemTime")));
    assert!(findings.iter().all(|f| f.suppressed_by.is_none()));
}

#[test]
fn d1_ignores_comments_strings_and_test_code() {
    let findings = lint_deterministic("d1_negative.rs", include_str!("fixtures/d1_negative.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn d1_does_not_apply_to_observability_crates() {
    // The same wall-clock-heavy source is fine in `obs`, `bench` and `cli`.
    for crate_key in ["obs", "bench", "cli"] {
        let findings = lint_source(
            crate_key,
            "d1_positive.rs",
            include_str!("fixtures/d1_positive.rs"),
            false,
        )
        .0;
        assert!(
            findings.iter().all(|f| f.rule.code() != "D1"),
            "{crate_key}: {findings:?}"
        );
    }
}

#[test]
fn d2_hash_iteration_fires_on_values_and_iter() {
    let findings = lint_deterministic("d2_positive.rs", include_str!("fixtures/d2_positive.rs"));
    assert_eq!(codes(&findings), vec!["D2", "D2"]);
}

#[test]
fn d2_ignores_btree_iteration_and_hash_lookups() {
    let findings = lint_deterministic("d2_negative.rs", include_str!("fixtures/d2_negative.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn d3_thread_spawn_fires_outside_runtime() {
    let findings = lint_deterministic("d3_positive.rs", include_str!("fixtures/d3_positive.rs"));
    assert_eq!(codes(&findings), vec!["D3"]);
}

#[test]
fn d3_allows_runtime_and_ignores_mentions() {
    let in_runtime = lint_source(
        "runtime",
        "d3_positive.rs",
        include_str!("fixtures/d3_positive.rs"),
        false,
    )
    .0;
    assert!(in_runtime.is_empty(), "unexpected: {in_runtime:?}");
    let mentions = lint_deterministic("d3_negative.rs", include_str!("fixtures/d3_negative.rs"));
    assert!(mentions.is_empty(), "unexpected: {mentions:?}");
}

#[test]
fn d4_ambient_rng_fires_on_thread_rng_and_random() {
    let findings = lint_deterministic("d4_positive.rs", include_str!("fixtures/d4_positive.rs"));
    assert!(!findings.is_empty());
    assert!(
        findings.iter().all(|f| f.rule.code() == "D4"),
        "{findings:?}"
    );
}

#[test]
fn d4_allows_seeded_streams() {
    let findings = lint_deterministic("d4_negative.rs", include_str!("fixtures/d4_negative.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn d5_fires_on_crate_root_missing_forbid_unsafe() {
    let findings = lint_source(
        "decoders",
        "src/lib.rs",
        include_str!("fixtures/d5_positive.rs"),
        true,
    )
    .0;
    assert_eq!(codes(&findings), vec!["D5"]);
}

#[test]
fn d5_satisfied_by_the_attribute_and_skips_non_roots() {
    let with_attr = lint_source(
        "decoders",
        "src/lib.rs",
        include_str!("fixtures/d5_negative.rs"),
        true,
    )
    .0;
    assert!(with_attr.is_empty(), "unexpected: {with_attr:?}");
    // The doc comment in d5_positive mentions the attribute; a non-root file
    // is not required to carry it.
    let non_root = lint_source(
        "decoders",
        "src/util.rs",
        include_str!("fixtures/d5_positive.rs"),
        false,
    )
    .0;
    assert!(non_root.is_empty(), "unexpected: {non_root:?}");
}

#[test]
fn d6_panics_fire_in_user_facing_crates() {
    let findings = lint_source(
        "cli",
        "d6_positive.rs",
        include_str!("fixtures/d6_positive.rs"),
        false,
    )
    .0;
    // unwrap, panic!, expect, unreachable! — one finding each.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule.code() == "D6"));
}

#[test]
fn d6_exempts_tests_and_lookalike_method_names() {
    let findings = lint_source(
        "cli",
        "d6_negative.rs",
        include_str!("fixtures/d6_negative.rs"),
        false,
    )
    .0;
    assert!(findings.is_empty(), "unexpected: {findings:?}");
    // The same panicky source is no finding in a non-user-facing crate.
    let elsewhere = lint_deterministic("d6_positive.rs", include_str!("fixtures/d6_positive.rs"));
    assert!(elsewhere.iter().all(|f| f.rule.code() != "D6"));
}

#[test]
fn d7_flags_registry_and_escaping_dependencies() {
    let deps = workspace_deps();
    let findings = lint_manifest(
        "crates/fixture/Cargo.toml",
        "crates/fixture",
        include_str!("fixtures/d7_positive.toml"),
        &deps,
    );
    // serde, rand (version form), escapee, proptest.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule.code() == "D7"));
}

#[test]
fn d7_accepts_workspace_and_vendored_dependencies() {
    let deps = workspace_deps();
    let findings = lint_manifest(
        "crates/fixture/Cargo.toml",
        "crates/fixture",
        include_str!("fixtures/d7_negative.toml"),
        &deps,
    );
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

fn workspace_deps() -> BTreeMap<String, String> {
    [
        ("prophunt-gf2", "crates/gf2"),
        ("prophunt-qec", "crates/qec"),
        ("rand", "vendor/rand"),
        ("proptest", "vendor/proptest"),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect()
}

#[test]
fn justified_suppressions_cover_same_line_next_line_and_blocks() {
    let findings = lint_deterministic(
        "suppression_justified.rs",
        include_str!("fixtures/suppression_justified.rs"),
    );
    // All three Instant::now() findings exist but every one is suppressed.
    assert_eq!(codes(&findings), vec!["D1", "D1", "D1"]);
    assert!(unsuppressed(&findings).is_empty(), "{findings:?}");
    // The multi-line justification is captured in full.
    let multiline = &findings[1];
    let reason = multiline.suppressed_by.as_deref().unwrap_or("");
    assert!(
        reason.contains("second comment line"),
        "continuation lost: {reason:?}"
    );
}

#[test]
fn malformed_suppressions_are_s0_and_do_not_suppress() {
    let findings = lint_deterministic(
        "suppression_malformed.rs",
        include_str!("fixtures/suppression_malformed.rs"),
    );
    let s0: Vec<_> = findings.iter().filter(|f| f.rule.code() == "S0").collect();
    let d1: Vec<_> = findings.iter().filter(|f| f.rule.code() == "D1").collect();
    assert_eq!(s0.len(), 3, "{findings:?}");
    assert_eq!(d1.len(), 3, "{findings:?}");
    // None of the malformed comments shields its finding, and the S0
    // diagnostics themselves are unsuppressible.
    assert!(findings.iter().all(|f| f.suppressed_by.is_none()));
}
