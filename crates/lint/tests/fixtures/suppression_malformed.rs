// Malformed suppressions: each produces an unsuppressible S0 diagnostic and
// leaves the underlying finding unsuppressed.
use std::time::Instant;

pub fn bare_reason() -> Instant {
    // lint: allow(no-wall-clock)
    Instant::now()
}

pub fn unknown_rule() -> Instant {
    // lint: allow(no-flux-capacitor) — not a rule this engine knows
    Instant::now()
}

pub fn missing_rule_list() -> Instant {
    // lint: allow — forgot the parenthesised rule list
    Instant::now()
}
