//! `prophunt code` — emit a code spec from a family, or validate a spec file.

use crate::args::{CliError, Flags};
use crate::common::{read_file, write_output};
use prophunt_formats::{parse_code_spec, resolve_family, write_code_spec, CodeSpec};

pub const USAGE: &str = "\
prophunt code --family <family> [-o <file>]
prophunt code --validate <spec-file>

  --family    code family to emit as a spec: surface:<d>, steane, repetition:<n>,
              generalized_bicycle:<l>:<a exps>:<b exps>,
              bivariate_bicycle:<l>:<m>:<a terms>:<b terms>
  --validate  parse a spec file, rebuild the code and print its parameters
  -o, --out   write the spec to a file instead of stdout";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["family", "validate", "out"])?;
    match (flags.get("family"), flags.get("validate")) {
        (Some(family), None) => {
            let resolved = resolve_family(family).map_err(CliError::failure)?;
            let spec = CodeSpec::from_code(&resolved.code);
            write_output(flags.get("out"), &write_code_spec(&spec))
        }
        (None, Some(path)) => {
            let spec = parse_code_spec(&read_file(path)?)
                .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
            let code = spec
                .to_code()
                .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
            println!(
                "{code}: {} X stabilizers, {} Z stabilizers, max weight {}",
                code.num_x_stabilizers(),
                code.num_z_stabilizers(),
                code.max_stabilizer_weight()
            );
            Ok(())
        }
        _ => Err(CliError::usage(
            "code needs exactly one of --family or --validate",
        )),
    }
}
